"""Prometheus text-format exposition of the serving metrics.

Renders a :class:`~repro.serving.metrics.MetricsRegistry` in the
`text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_:
counters as ``repro_<name>_total`` and latency histograms as the
standard cumulative ``_bucket{le=...}`` / ``_sum`` / ``_count``
triple, so a stock Prometheus scrape of ``GET
/metrics?format=prometheus`` needs no adapter.  Metric names are
sanitised (dots become underscores: ``phase_seconds.ED`` →
``repro_phase_seconds_ED``); each histogram is read atomically so a
scrape never sees ``_count`` disagree with its ``+Inf`` bucket.
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.serving.metrics import MetricsRegistry

_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_metric_name(name: str) -> str:
    """Fold a dotted registry name into a valid Prometheus metric name."""
    cleaned = _INVALID.sub("_", name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value)) if isinstance(value, float) else str(value)


def render_prometheus(
    metrics: MetricsRegistry,
    namespace: str = "repro",
    gauges: Optional[Mapping[str, float]] = None,
    labeled: Optional[Sequence[Mapping[str, Any]]] = None,
) -> str:
    """The registry's current state in Prometheus text format.

    ``gauges`` carries point-in-time values that are not registry
    counters (readiness, uptime, cache sizes); they render with
    ``# TYPE ... gauge``.  ``labeled`` carries metric families with
    label sets (one ``{"name", "type", "samples": [(labels, value)]}``
    mapping per family) — the per-worker series use a ``worker`` label
    instead of minting one metric name per worker id.
    """
    counters, histograms = metrics.collect()
    lines: List[str] = []
    for name in sorted(counters):
        metric = f"{namespace}_{sanitize_metric_name(name)}"
        if not metric.endswith("_total"):
            metric += "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {counters[name].value}")
    for name, value in sorted((gauges or {}).items()):
        metric = f"{namespace}_{sanitize_metric_name(name)}"
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(float(value))}")
    for family in labeled or ():
        kind = family.get("type", "gauge")
        metric = f"{namespace}_{sanitize_metric_name(family['name'])}"
        if kind == "counter" and not metric.endswith("_total"):
            metric += "_total"
        lines.append(f"# TYPE {metric} {kind}")
        for labels, value in family["samples"]:
            rendered = ",".join(
                f'{key}="{labels[key]}"' for key in sorted(labels)
            )
            lines.append(
                f"{metric}{{{rendered}}} {_format_value(float(value))}"
            )
    for name in sorted(histograms):
        histogram = histograms[name]
        metric = f"{namespace}_{sanitize_metric_name(name)}"
        buckets, total_sum, count = histogram.buckets()
        lines.append(f"# TYPE {metric} histogram")
        for bound, cumulative in buckets:
            le = "+Inf" if math.isinf(bound) else _format_value(bound)
            lines.append(f'{metric}_bucket{{le="{le}"}} {cumulative}')
        lines.append(f"{metric}_sum {_format_value(total_sum)}")
        lines.append(f"{metric}_count {count}")
    return "\n".join(lines) + "\n"


def snapshot_gauges(snapshot: Dict[str, Any]) -> Dict[str, float]:
    """Extract gauge-worthy scalars from a service snapshot dict.

    Pulls readiness/uptime plus per-cache and batcher numbers out of
    the JSON ``/metrics`` payload shape, so the Prometheus view covers
    the same surface without new bookkeeping.
    """
    gauges: Dict[str, float] = {}
    if "ready" in snapshot:
        gauges["ready"] = 1.0 if snapshot["ready"] else 0.0
    if "healthy" in snapshot:
        gauges["healthy"] = 1.0 if snapshot["healthy"] else 0.0
    if "uptime_seconds" in snapshot:
        gauges["uptime_seconds"] = float(snapshot["uptime_seconds"])
    for cache_name, stats in (snapshot.get("caches") or {}).items():
        for key in ("size", "hits", "misses", "evictions"):
            if key in stats:
                gauges[f"cache.{cache_name}.{key}"] = float(stats[key])
    for key, value in (snapshot.get("batcher") or {}).items():
        if isinstance(value, (int, float)):
            gauges[f"batcher.{key}"] = float(value)
    for key, value in (snapshot.get("traces") or {}).items():
        if isinstance(value, (int, float)):
            gauges[f"traces.{key}"] = float(value)
    # Lifecycle status nests (pool stats, swap state, shadow report);
    # every numeric leaf becomes a dotted gauge.  Strings (state names,
    # fingerprints, reason codes) stay JSON-only — Prometheus gauges
    # are numbers, and encoding enums here would invent a contract.
    lifecycle = snapshot.get("lifecycle")
    if isinstance(lifecycle, Mapping):
        _flatten_numeric(lifecycle, "lifecycle", gauges)
    # Rolling SLO window: availability, burn rate, p99 vs deadline.
    # None leaves (p99_vs_deadline with no deadline) are non-numeric
    # and stay JSON-only.
    slo = snapshot.get("slo")
    if isinstance(slo, Mapping):
        _flatten_numeric(slo, "slo", gauges)
    # Multi-process front-end: queue depth, shed/death/redispatch
    # counters, and sticky-readiness flags.  Per-worker numbers render
    # as labeled series instead (:func:`worker_series`).
    frontend = snapshot.get("frontend")
    if isinstance(frontend, Mapping):
        scalars = {
            key: value
            for key, value in frontend.items()
            if not isinstance(value, (list, tuple, Mapping, str))
        }
        _flatten_numeric(scalars, "frontend", gauges)
    return gauges


#: Cumulative per-worker counts → ``repro_worker_<name>_total{worker=}``.
_WORKER_COUNTERS = ("jobs", "queries", "errors", "respawns", "degraded")

#: Point-in-time per-worker state → ``repro_worker_<name>{worker=}``.
_WORKER_GAUGES = (("alive", "alive"), ("ready", "ready"),
                  ("busy_s", "busy_seconds"))


def worker_series(snapshot: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Per-worker labeled metric families from a service snapshot.

    One family per exported field, each with a ``worker`` label per
    slot, so dashboards can aggregate or fan out (``sum by (worker)``)
    without name-mangled per-worker metric names.  Empty when the
    snapshot has no multi-process front-end.
    """
    frontend = snapshot.get("frontend")
    workers = (
        frontend.get("workers") if isinstance(frontend, Mapping) else None
    )
    if not isinstance(workers, (list, tuple)):
        return []
    entries = [
        entry
        for entry in workers
        if isinstance(entry, Mapping) and entry.get("worker_id") is not None
    ]
    if not entries:
        return []

    def samples(key):
        return [
            (
                {"worker": str(entry["worker_id"])},
                float(entry.get(key, 0) or 0),
            )
            for entry in entries
        ]

    families: List[Dict[str, Any]] = [
        {
            "name": f"worker_{key}",
            "type": "counter",
            "samples": samples(key),
        }
        for key in _WORKER_COUNTERS
    ]
    families.extend(
        {
            "name": f"worker_{rename}",
            "type": "gauge",
            "samples": samples(key),
        }
        for key, rename in _WORKER_GAUGES
    )
    return families


#: Cumulative per-tenant counts → ``repro_tenant_<name>_total{tenant=}``.
_TENANT_COUNTERS = ("loads", "evictions", "requests")


def tenant_series(snapshot: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Per-tenant labeled metric families from a service snapshot.

    Mirrors :func:`worker_series` for the multi-tenant tier: one family
    per exported field with a ``tenant`` label, covering load/evict
    churn, request volume, quota pressure, accounted memory, and (for
    loaded tenants) the rolling SLO availability.  Empty when the
    snapshot carries no tenant registry.
    """
    registry = snapshot.get("tenants")
    tenants = (
        registry.get("tenants") if isinstance(registry, Mapping) else None
    )
    if not isinstance(tenants, Mapping) or not tenants:
        return []
    entries = sorted(
        (name, entry)
        for name, entry in tenants.items()
        if isinstance(entry, Mapping)
    )
    if not entries:
        return []

    def family(name, kind, value_of):
        samples = []
        for tenant, entry in entries:
            value = value_of(entry)
            if value is None:
                continue
            samples.append(({"tenant": tenant}, float(value)))
        return {"name": name, "type": kind, "samples": samples}

    families: List[Dict[str, Any]] = [
        family(f"tenant_{key}", "counter", lambda e, k=key: e.get(k, 0) or 0)
        for key in _TENANT_COUNTERS
    ]
    families.append(
        family("tenant_loaded", "gauge", lambda e: 1 if e.get("loaded") else 0)
    )
    families.append(
        family(
            "tenant_cost_bytes", "gauge", lambda e: e.get("cost_bytes", 0) or 0
        )
    )
    families.append(
        family(
            "tenant_quota_limit",
            "gauge",
            lambda e: (e.get("quota") or {}).get("limit", 0),
        )
    )
    families.append(
        family(
            "tenant_quota_used",
            "gauge",
            lambda e: (e.get("quota") or {}).get("used", 0),
        )
    )
    families.append(
        family(
            "tenant_availability",
            "gauge",
            lambda e: (e.get("slo") or {}).get("availability"),
        )
    )
    return [fam for fam in families if fam["samples"]]


def _flatten_numeric(
    tree: Mapping[str, Any], prefix: str, gauges: Dict[str, float]
) -> None:
    """Recursively hoist numeric (and bool) leaves into dotted gauges."""
    for key, value in tree.items():
        name = f"{prefix}.{key}"
        if isinstance(value, bool):
            gauges[name] = 1.0 if value else 0.0
        elif isinstance(value, (int, float)):
            gauges[name] = float(value)
        elif isinstance(value, Mapping):
            _flatten_numeric(value, name, gauges)
