"""SLO tracking: rolling availability and p99-vs-deadline burn rate.

Counters and histograms (:mod:`repro.serving.metrics`) are cumulative
since process start — useful for rates over a scrape interval, useless
for the question an operator actually asks during an incident: *how is
the service doing right now, against what we promised?*  This module
keeps a rolling window of request outcomes and answers exactly that:

* **availability** — the served fraction of requests in the window
  (sheds, timeouts, and errors all count against it), compared to the
  configured objective as an error-budget **burn rate**: burn 1.0
  means the deployment is spending its budget exactly as fast as the
  objective allows, burn 10 means a page;
* **latency vs deadline** — the window's p99 latency next to the
  serving deadline, plus the fraction of served requests that came
  back later than the deadline (late answers are goodput loss even
  when technically "served").

Implementation: a ring of per-second buckets, each holding outcome
counts and a small log-spaced latency histogram.  Recording is O(1)
and lock-cheap; a snapshot merges the live buckets.  The clock is
injectable (``now=``) so every edge is deterministic under test.
Stdlib-only, no imports from ``repro`` — same layering rule as
:mod:`repro.obs.trace`.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Any, Dict, List, Optional

#: Latency bucket bounds: 100 µs .. ~105 s, two buckets per octave —
#: the same resolution the serving histograms use, enough for a p99
#: estimate against a millisecond-scale deadline.
def _latency_bounds() -> List[float]:
    bounds = []
    value = 100e-6
    while value < 120.0:
        bounds.append(value)
        value *= math.sqrt(2.0)
    return bounds


class _SecondBucket:
    """Outcome and latency counts for one wall-clock second."""

    __slots__ = ("epoch", "ok", "errors", "shed", "over_deadline", "latency")

    def __init__(self, n_bounds: int) -> None:
        self.epoch = -1
        self.ok = 0
        self.errors = 0
        self.shed = 0
        self.over_deadline = 0
        self.latency = [0] * (n_bounds + 1)

    def reset(self, epoch: int) -> None:
        self.epoch = epoch
        self.ok = 0
        self.errors = 0
        self.shed = 0
        self.over_deadline = 0
        for index in range(len(self.latency)):
            self.latency[index] = 0


class SloTracker:
    """Rolling-window availability and latency-SLO accounting.

    Parameters
    ----------
    window_s:
        How many seconds of history the rolling window holds (one
        bucket per second).
    availability_objective:
        The availability SLO, e.g. ``0.999``; the burn rate is the
        window's failure fraction divided by the objective's allowance
        ``1 - objective``.
    deadline_ms:
        The serving latency deadline the p99 is judged against; 0
        disables deadline accounting (``deadline_hit_ratio`` stays 0
        and ``p99_vs_deadline`` is reported as ``None``).
    """

    def __init__(
        self,
        window_s: float = 60.0,
        availability_objective: float = 0.999,
        deadline_ms: float = 0.0,
    ) -> None:
        if window_s < 1.0:
            raise ValueError(f"window_s must be >= 1, got {window_s}")
        if not 0.0 < availability_objective <= 1.0:
            raise ValueError(
                "availability_objective must be in (0, 1], got "
                f"{availability_objective}"
            )
        if deadline_ms < 0.0:
            raise ValueError(f"deadline_ms must be >= 0, got {deadline_ms}")
        self.window_s = float(window_s)
        self.availability_objective = availability_objective
        self.deadline_ms = deadline_ms
        self._bounds = _latency_bounds()
        self._n = int(math.ceil(window_s))
        self._buckets = [_SecondBucket(len(self._bounds)) for _ in range(self._n)]
        self._lock = threading.Lock()

    # -- recording -----------------------------------------------------------

    def _bucket(self, now: float) -> _SecondBucket:
        epoch = int(now)
        bucket = self._buckets[epoch % self._n]
        if bucket.epoch != epoch:
            bucket.reset(epoch)
        return bucket

    def _latency_index(self, seconds: float) -> int:
        low, high = 0, len(self._bounds)
        while low < high:
            mid = (low + high) // 2
            if seconds <= self._bounds[mid]:
                high = mid
            else:
                low = mid + 1
        return low

    def record(
        self,
        latency_s: float,
        outcome: str = "ok",
        now: Optional[float] = None,
    ) -> None:
        """Book one request: ``outcome`` is ``ok``, ``shed``, or ``error``.

        Only served (``ok``) requests contribute latency samples —
        shed and failed requests have no meaningful service time, and
        folding their (short) latencies in would *flatter* the p99.
        """
        clock = now if now is not None else time.monotonic()
        with self._lock:
            bucket = self._bucket(clock)
            if outcome == "ok":
                bucket.ok += 1
                bucket.latency[self._latency_index(latency_s)] += 1
                if self.deadline_ms > 0 and latency_s * 1000.0 > self.deadline_ms:
                    bucket.over_deadline += 1
            elif outcome == "shed":
                bucket.shed += 1
            else:
                bucket.errors += 1

    # -- reporting -----------------------------------------------------------

    def _live(self, now: float) -> List[_SecondBucket]:
        floor = int(now) - self._n + 1
        return [b for b in self._buckets if b.epoch >= floor]

    def _p99(self, counts: List[int], total: int) -> float:
        if total == 0:
            return 0.0
        rank = 0.99 * total
        cumulative = 0
        for index, count in enumerate(counts):
            cumulative += count
            if cumulative >= rank:
                if index >= len(self._bounds):
                    return self._bounds[-1]
                return self._bounds[index]
        return self._bounds[-1]

    def snapshot(self, now: Optional[float] = None) -> Dict[str, Any]:
        """JSON-ready window report (all numbers, prom-flattenable)."""
        clock = now if now is not None else time.monotonic()
        with self._lock:
            live = self._live(clock)
            ok = sum(b.ok for b in live)
            errors = sum(b.errors for b in live)
            shed = sum(b.shed for b in live)
            over = sum(b.over_deadline for b in live)
            merged = [0] * (len(self._bounds) + 1)
            for bucket in live:
                for index, count in enumerate(bucket.latency):
                    merged[index] += count
        total = ok + errors + shed
        availability = ok / total if total else 1.0
        allowance = 1.0 - self.availability_objective
        burn = ((1.0 - availability) / allowance) if allowance > 0 else 0.0
        p99 = self._p99(merged, ok)
        report: Dict[str, Any] = {
            "window_s": self.window_s,
            "availability_objective": self.availability_objective,
            "requests": total,
            "ok": ok,
            "errors": errors,
            "shed": shed,
            "availability": availability,
            "error_budget_burn_rate": burn,
            "p99_s": p99,
            "deadline_ms": self.deadline_ms,
            "over_deadline": over,
            "deadline_hit_ratio": (over / ok) if (ok and self.deadline_ms) else 0.0,
            "p99_vs_deadline": (
                p99 * 1000.0 / self.deadline_ms if self.deadline_ms else None
            ),
        }
        return report
