"""Observability: span tracing, training telemetry, structured logs.

The paper's online-cost analysis (Section 5, Figure 11) decomposes
linking time into OR/CR/ED/RT; :mod:`repro.obs` is the layer that lets
a running deployment *see* that decomposition per request rather than
only in aggregate:

* :mod:`repro.obs.trace` — a zero-dependency span tracer with
  context-propagated request IDs, nested spans over the full online
  path, and a bounded ring buffer of sampled traces (``GET /traces``,
  ``repro trace``);
* :mod:`repro.obs.runlog` — per-epoch JSONL training telemetry and
  run comparison (``repro runs``);
* :mod:`repro.obs.logjson` — structured JSON logging correlated with
  the active trace's request ID;
* :mod:`repro.obs.prom` — Prometheus text-format exposition of the
  serving metrics (``GET /metrics?format=prometheus``).

Everything here is stdlib-only and safe to import from any layer:
:mod:`repro.obs.trace` in particular imports nothing from ``repro``,
so core modules (linker, trainer, faults) can call its no-op-when-idle
``span()``/``span_event()`` hooks without layering cycles.
"""
