"""Concept knowledge base: aliases and labeled training pairs.

Paper Section 4.2 (refinement phase): the training data are
``⟨d^c, d^c_j⟩`` pairs, where ``d^c`` is the canonical description and
``d^c_j`` an alias — from the knowledge base or from collected expert
feedback.  Footnote 9 notes the canonical descriptions themselves are
excluded from the alias lists because a self-pair
``⟨acute abdomen, acute abdomen⟩`` contributes nothing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.ontology.ontology import Ontology
from repro.text.tokenize import normalize_text
from repro.utils.errors import DataError

PathLike = Union[str, Path]


@dataclass(frozen=True)
class TrainingPair:
    """One labeled example: decode ``alias`` from ``canonical`` of ``cid``."""

    cid: str
    canonical: str
    alias: str


class KnowledgeBase:
    """Aliases per concept, validated against an :class:`Ontology`.

    The knowledge base rejects aliases for unknown concepts, normalises
    alias text the same way queries are normalised, drops duplicates,
    and silently skips aliases identical to the canonical description
    (per the paper's footnote 9).
    """

    def __init__(self, ontology: Ontology) -> None:
        self._ontology = ontology
        self._aliases: Dict[str, List[str]] = {}

    @property
    def ontology(self) -> Ontology:
        return self._ontology

    # -- alias management ----------------------------------------------

    def add_alias(self, cid: str, alias: str) -> bool:
        """Register ``alias`` for ``cid``; returns True if stored.

        Returns False (without storing) when the alias normalises to the
        canonical description or duplicates an existing alias.
        """
        concept = self._ontology.get(cid)  # raises KeyError for unknown cid
        normalized = normalize_text(alias)
        if not normalized:
            raise DataError(f"alias for {cid!r} normalised to an empty string")
        if normalized == normalize_text(concept.description):
            return False
        existing = self._aliases.setdefault(cid, [])
        if normalized in existing:
            return False
        existing.append(normalized)
        return True

    def add_aliases(self, cid: str, aliases: Iterable[str]) -> int:
        """Register many aliases; returns the number actually stored."""
        return sum(int(self.add_alias(cid, alias)) for alias in aliases)

    def aliases_of(self, cid: str) -> Tuple[str, ...]:
        """Stored aliases of ``cid`` (empty tuple when none)."""
        self._ontology.get(cid)
        return tuple(self._aliases.get(cid, ()))

    def concepts_with_aliases(self) -> Tuple[str, ...]:
        """Cids that currently have at least one alias."""
        return tuple(cid for cid, aliases in self._aliases.items() if aliases)

    def alias_count(self) -> int:
        """Total number of stored aliases."""
        return sum(len(aliases) for aliases in self._aliases.values())

    # -- training-data views ---------------------------------------------

    def training_pairs(
        self, cids: Optional[Sequence[str]] = None
    ) -> List[TrainingPair]:
        """Labeled ⟨canonical, alias⟩ pairs, optionally restricted to ``cids``."""
        selected = self._aliases.keys() if cids is None else cids
        pairs: List[TrainingPair] = []
        for cid in selected:
            concept = self._ontology.get(cid)
            canonical = normalize_text(concept.description)
            for alias in self._aliases.get(cid, ()):
                pairs.append(TrainingPair(cid=cid, canonical=canonical, alias=alias))
        return pairs

    def labeled_snippets(self) -> Iterator[Tuple[str, str]]:
        """All ``(cid, alias)`` pairs — the labeled snippet view of Fig 3(a)."""
        for cid, aliases in self._aliases.items():
            for alias in aliases:
                yield cid, alias

    # -- persistence ------------------------------------------------------

    def to_dict(self) -> Dict[str, List[str]]:
        """``{cid: [aliases]}`` snapshot (for persistence)."""
        return {cid: list(aliases) for cid, aliases in self._aliases.items()}

    def save_json(self, path: PathLike) -> None:
        """Write :meth:`to_dict` to ``path`` as JSON."""
        Path(path).write_text(json.dumps(self.to_dict(), indent=2), encoding="utf-8")

    @classmethod
    def load_json(cls, ontology: Ontology, path: PathLike) -> "KnowledgeBase":
        try:
            payload = json.loads(Path(path).read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise DataError(f"knowledge base file {path} is not valid JSON: {exc}") from exc
        kb = cls(ontology)
        for cid, aliases in payload.items():
            kb.add_aliases(str(cid), [str(alias) for alias in aliases])
        return kb
