"""Unlabeled snippet corpus for embedding pre-training.

Paper Section 3 and 4.2: unlabeled data come from two sources —
real-world queries (e.g. accumulated physician notes) and the labeled
snippets with their concept information incorporated.  A
:class:`TaggedSnippet` carries the optional ``cid`` so that the
concept-injection alteration (Section 4.2) can interleave it into the
word context; genuinely unlabeled snippets have ``cid=None`` and "remain
unchanged".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.text.tokenize import tokenize
from repro.utils.errors import DataError
from repro.utils.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class TaggedSnippet:
    """A text snippet with an optional concept tag.

    ``words`` is the tokenised snippet; snippets that tokenise to
    nothing are rejected at construction.
    """

    text: str
    cid: Optional[str] = None

    @property
    def words(self) -> Tuple[str, ...]:
        return tuple(tokenize(self.text))

    def __post_init__(self) -> None:
        if not tokenize(self.text):
            raise DataError(f"snippet {self.text!r} tokenised to nothing")


class SnippetCorpus:
    """A deduplicated collection of :class:`TaggedSnippet`.

    Duplicates are detected on (normalised word sequence, cid) so the
    same surface string can legitimately appear both untagged (a hospital
    query) and tagged (a KB alias), mirroring footnote 8 of the paper.
    """

    def __init__(self) -> None:
        self._snippets: List[TaggedSnippet] = []
        self._seen: set = set()

    def add(self, text: str, cid: Optional[str] = None) -> bool:
        """Add one snippet; returns False when it was a duplicate."""
        snippet = TaggedSnippet(text=text, cid=cid)
        key = (snippet.words, cid)
        if key in self._seen:
            return False
        self._seen.add(key)
        self._snippets.append(snippet)
        return True

    def add_all(self, texts: Iterable[str], cid: Optional[str] = None) -> int:
        """Add many snippets under one tag; returns how many stored."""
        return sum(int(self.add(text, cid)) for text in texts)

    def extend(self, other: "SnippetCorpus") -> int:
        """Merge another corpus in; returns how many were new."""
        return sum(
            int(self.add(snippet.text, snippet.cid)) for snippet in other
        )

    def __len__(self) -> int:
        return len(self._snippets)

    def __iter__(self) -> Iterator[TaggedSnippet]:
        return iter(self._snippets)

    def __getitem__(self, index: int) -> TaggedSnippet:
        return self._snippets[index]

    def tagged(self) -> List[TaggedSnippet]:
        """Snippets carrying a concept tag (KB-derived)."""
        return [snippet for snippet in self._snippets if snippet.cid is not None]

    def untagged(self) -> List[TaggedSnippet]:
        """Snippets without a concept tag (query-like notes)."""
        return [snippet for snippet in self._snippets if snippet.cid is None]

    def token_sequences(self) -> List[Tuple[str, ...]]:
        """All snippets as token tuples (CBOW input view)."""
        return [snippet.words for snippet in self._snippets]

    def subsample(self, fraction: float, rng: RngLike = None) -> "SnippetCorpus":
        """A random fraction of the corpus (robustness study, Fig 13b)."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        generator = ensure_rng(rng)
        count = max(1, round(fraction * len(self._snippets)))
        indices = generator.choice(len(self._snippets), size=count, replace=False)
        sampled = SnippetCorpus()
        for index in sorted(int(i) for i in indices):
            snippet = self._snippets[index]
            sampled.add(snippet.text, snippet.cid)
        return sampled

    def vocabulary_words(self) -> List[str]:
        """All distinct words in the corpus, sorted."""
        words = set()
        for snippet in self._snippets:
            words.update(snippet.words)
        return sorted(words)
