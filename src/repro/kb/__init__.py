"""Knowledge-base substrate (UMLS stand-in).

Stores, per concept, the canonical description plus alternative
descriptions (aliases) in the role UMLS plays in the paper: aliases are
the labeled ⟨canonical, alias⟩ training pairs for COM-AID (Section 4.2),
and together with real-world snippets they form the unlabeled
pre-training corpus.
"""

from repro.kb.corpus import SnippetCorpus, TaggedSnippet
from repro.kb.knowledge_base import KnowledgeBase, TrainingPair

__all__ = [
    "KnowledgeBase",
    "SnippetCorpus",
    "TaggedSnippet",
    "TrainingPair",
]
