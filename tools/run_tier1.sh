#!/usr/bin/env bash
# Tier-1 gate: the no-print lint plus the fast suite exactly as CI runs
# it, then the opt-in fault-injection drills (crash/resume end-to-end;
# excluded from the default run by the `-m 'not faults'` addopts in
# pyproject.toml) and the opt-in benchmarks (each refreshes its BENCH
# json at the repo root).
#
#   tools/run_tier1.sh                 # lints + fast suite only
#   tools/run_tier1.sh --faults        # ... + fault drills
#   tools/run_tier1.sh --bench-phase2  # ... + batching benchmark
#   tools/run_tier1.sh --bench-obs     # ... + tracing-overhead benchmark
#   tools/run_tier1.sh --bench-obs-mp  # ... + cross-process tracing overhead
#   tools/run_tier1.sh --bench-shard   # ... + shard-engine benchmark
#   tools/run_tier1.sh --bench-retrieval  # ... + 100k retrieval benchmark
#   tools/run_tier1.sh --bench-lifecycle  # ... + hot-swap lifecycle benchmark
#   tools/run_tier1.sh --bench-mp      # ... + multi-process serving benchmark
#   tools/run_tier1.sh --bench-tenant  # ... + multi-tenant serving benchmark
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH=src

python tools/check_no_print.py
python tools/check_api.py
python -m pytest -x -q

for arg in "$@"; do
    case "$arg" in
        --faults)
            echo "== fault-injection drills =="
            python -m pytest -q -m faults
            ;;
        --bench-phase2)
            echo "== Phase-II batching benchmark (writes BENCH_phase2.json) =="
            python -m pytest -q benchmarks/test_phase2_batching.py
            ;;
        --bench-obs)
            echo "== tracing overhead benchmark (writes BENCH_obs.json) =="
            python -m pytest -q benchmarks/test_obs_overhead.py
            ;;
        --bench-obs-mp)
            echo "== cross-process tracing overhead (merges into BENCH_obs.json) =="
            python -m pytest -q benchmarks/test_obs_mp_overhead.py
            ;;
        --bench-shard)
            echo "== shard engine benchmark (writes BENCH_shard.json) =="
            python -m pytest -q benchmarks/test_shard_engine.py
            ;;
        --bench-retrieval)
            echo "== retrieval-at-scale benchmark (writes BENCH_retrieval.json) =="
            python -m pytest -q benchmarks/test_retrieval.py
            ;;
        --bench-lifecycle)
            echo "== lifecycle hot-swap benchmark (writes BENCH_lifecycle.json) =="
            python -m pytest -q benchmarks/test_lifecycle.py
            ;;
        --bench-mp)
            echo "== multi-process serving benchmark (writes BENCH_mp.json) =="
            python -m pytest -q benchmarks/test_mp_serving.py
            ;;
        --bench-tenant)
            echo "== multi-tenant serving benchmark (writes BENCH_tenant.json) =="
            python -m pytest -q benchmarks/test_tenant_serving.py
            ;;
        *)
            echo "unknown flag: $arg (expected --faults, --bench-phase2, --bench-obs, --bench-obs-mp, --bench-shard, --bench-retrieval, --bench-lifecycle, --bench-mp and/or --bench-tenant)" >&2
            exit 2
            ;;
    esac
done
