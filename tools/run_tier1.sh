#!/usr/bin/env bash
# Tier-1 gate: the fast suite exactly as CI runs it, then the opt-in
# fault-injection drills (crash/resume end-to-end; excluded from the
# default run by the `-m 'not faults'` addopts in pyproject.toml) and
# the opt-in Phase-II batching benchmark (refreshes BENCH_phase2.json).
#
#   tools/run_tier1.sh                 # fast suite only
#   tools/run_tier1.sh --faults        # fast suite + fault drills
#   tools/run_tier1.sh --bench-phase2  # fast suite + batching benchmark
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH=src

python -m pytest -x -q

for arg in "$@"; do
    case "$arg" in
        --faults)
            echo "== fault-injection drills =="
            python -m pytest -q -m faults
            ;;
        --bench-phase2)
            echo "== Phase-II batching benchmark (writes BENCH_phase2.json) =="
            python -m pytest -q benchmarks/test_phase2_batching.py
            ;;
        *)
            echo "unknown flag: $arg (expected --faults and/or --bench-phase2)" >&2
            exit 2
            ;;
    esac
done
