#!/usr/bin/env bash
# Tier-1 gate: the fast suite exactly as CI runs it, then the opt-in
# fault-injection drills (crash/resume end-to-end; excluded from the
# default run by the `-m 'not faults'` addopts in pyproject.toml).
#
#   tools/run_tier1.sh            # fast suite only
#   tools/run_tier1.sh --faults   # fast suite + fault drills
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH=src

python -m pytest -x -q

if [[ "${1:-}" == "--faults" ]]; then
    echo "== fault-injection drills =="
    python -m pytest -q -m faults
fi
