#!/usr/bin/env python3
"""Diff the public API surface (``repro.api``) against its snapshot.

The facade is versioned (``API_VERSION``), so its surface must only
change deliberately: this tool describes every exported name — kind,
call signature, dataclass fields — and compares the result against the
committed snapshot at ``tools/api_surface.json``.  Any drift (a name
added, removed, or re-signatured) fails the tier-1 gate with a diff;
an intentional change is recorded by re-running with ``--update`` and
committing the new snapshot alongside the code.

Usage (from the repo root)::

    python tools/check_api.py            # verify against the snapshot
    python tools/check_api.py --update   # regenerate the snapshot
"""

from __future__ import annotations

import argparse
import dataclasses
import inspect
import json
import sys
from pathlib import Path
from typing import Any, Dict

REPO_ROOT = Path(__file__).resolve().parent.parent
SNAPSHOT = REPO_ROOT / "tools" / "api_surface.json"


def describe(name: str, obj: Any) -> Dict[str, Any]:
    """A JSON-ready structural description of one exported name."""
    entry: Dict[str, Any] = {}
    if inspect.isclass(obj):
        entry["kind"] = "class"
        if dataclasses.is_dataclass(obj):
            entry["fields"] = [
                field.name for field in dataclasses.fields(obj)
            ]
        else:
            try:
                entry["signature"] = str(inspect.signature(obj))
            except (TypeError, ValueError):
                entry["signature"] = None
    elif inspect.isfunction(obj):
        entry["kind"] = "function"
        entry["signature"] = str(inspect.signature(obj))
    elif isinstance(obj, (str, int, float, bool)):
        entry["kind"] = "constant"
        entry["value"] = obj
    elif isinstance(obj, dict):
        entry["kind"] = "constant"
        entry["value"] = obj
    else:
        entry["kind"] = type(obj).__name__
    return entry


def current_surface() -> Dict[str, Any]:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    import repro.api as api

    return {
        "api_version": api.API_VERSION,
        "exports": {
            name: describe(name, getattr(api, name))
            for name in sorted(api.__all__)
        },
    }


def diff(snapshot: Dict[str, Any], current: Dict[str, Any]) -> list:
    problems = []
    if snapshot.get("api_version") != current["api_version"]:
        problems.append(
            f"API_VERSION changed: {snapshot.get('api_version')!r} -> "
            f"{current['api_version']!r}"
        )
    old = snapshot.get("exports", {})
    new = current["exports"]
    for name in sorted(set(old) - set(new)):
        problems.append(f"removed: {name}")
    for name in sorted(set(new) - set(old)):
        problems.append(f"added: {name}")
    for name in sorted(set(old) & set(new)):
        if old[name] != new[name]:
            problems.append(
                f"changed: {name}: {json.dumps(old[name], sort_keys=True)} "
                f"-> {json.dumps(new[name], sort_keys=True)}"
            )
    return problems


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite tools/api_surface.json from the live surface",
    )
    args = parser.parse_args()
    current = current_surface()
    if args.update:
        SNAPSHOT.write_text(
            json.dumps(current, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(
            f"wrote {SNAPSHOT.relative_to(REPO_ROOT)}: "
            f"{len(current['exports'])} exports, "
            f"API {current['api_version']}"
        )
        return 0
    if not SNAPSHOT.exists():
        print(
            f"missing snapshot {SNAPSHOT.relative_to(REPO_ROOT)}; run "
            "`python tools/check_api.py --update` and commit it",
            file=sys.stderr,
        )
        return 1
    snapshot = json.loads(SNAPSHOT.read_text(encoding="utf-8"))
    problems = diff(snapshot, current)
    if not problems:
        print(
            f"API surface OK: {len(current['exports'])} exports, "
            f"API {current['api_version']}"
        )
        return 0
    print(
        f"{len(problems)} API surface change(s) vs "
        f"{SNAPSHOT.relative_to(REPO_ROOT)} (intentional? re-run with "
        "--update and commit the snapshot):",
        file=sys.stderr,
    )
    for problem in problems:
        print(f"  {problem}", file=sys.stderr)
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
