#!/usr/bin/env python3
"""Fail on bare ``print(`` calls in the library (``src/repro/``).

Library code must log through ``repro.utils.logging`` (operational
messages), emit experiment output through ``repro.eval.reporting.emit``
(the single stdout seam), or — with JSON logging enabled — land in the
structured stream.  A bare ``print`` bypasses all three: it cannot be
silenced, carries no request-ID correlation, and corrupts parseable
stdout (e.g. the Prometheus exposition).

The scan is token-based (``tokenize``), so ``print(`` inside strings,
comments, or docstrings never false-positives, and ``pprint(`` /
``my_print(`` never match.  The CLI is the process's user interface and
is allowed to print.

Usage: ``python tools/check_no_print.py`` (from the repo root).
Exit code 1 lists every offending ``file:line``.
"""

from __future__ import annotations

import sys
import tokenize
from pathlib import Path
from typing import Iterator, List, Tuple

#: Files (relative to the repo root) where ``print`` is the interface.
ALLOWLIST = frozenset({"src/repro/cli.py"})

SCAN_ROOT = "src/repro"


def find_print_calls(path: Path) -> Iterator[int]:
    """Line numbers of ``print`` NAME tokens followed by ``(``."""
    with open(path, "rb") as handle:
        tokens = list(tokenize.tokenize(handle.readline))
    for index, token in enumerate(tokens):
        if token.type != tokenize.NAME or token.string != "print":
            continue
        # An attribute access (``console.print(...)``) is not the
        # builtin; a bare NAME preceded by ``.`` is skipped.
        if index > 0 and tokens[index - 1].string == ".":
            continue
        if index + 1 < len(tokens) and tokens[index + 1].string == "(":
            yield token.start[0]


def scan(root: Path) -> List[Tuple[Path, int]]:
    offenders: List[Tuple[Path, int]] = []
    for path in sorted((root / SCAN_ROOT).rglob("*.py")):
        if str(path.relative_to(root)) in ALLOWLIST:
            continue
        for line in find_print_calls(path):
            offenders.append((path.relative_to(root), line))
    return offenders


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    offenders = scan(root)
    if not offenders:
        print(f"no bare print() calls under {SCAN_ROOT}/")
        return 0
    print(
        f"{len(offenders)} bare print() call(s) in library code "
        "(use repro.utils.logging or repro.eval.reporting.emit):",
        file=sys.stderr,
    )
    for path, line in offenders:
        print(f"  {path}:{line}", file=sys.stderr)
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
