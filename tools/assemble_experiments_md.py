#!/usr/bin/env python
"""Assemble EXPERIMENTS.md from a benchmark transcript.

Usage::

    python tools/assemble_experiments_md.py bench_output.txt EXPERIMENTS.md

Reads the ``pytest benchmarks/ --benchmark-only -s`` transcript, slices
out each figure's printed table/series, and wraps them with the
paper-shape commentary.  Keeping the assembly mechanical ensures the
document always reflects an actual run.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Dict, List

HEADER = """# EXPERIMENTS — paper vs. measured

Generated from a real benchmark transcript by
``python tools/assemble_experiments_md.py bench_output.txt EXPERIMENTS.md``.

Every table and figure of the paper's evaluation section is regenerated
by one benchmark under ``benchmarks/`` and asserted for qualitative
*shape*.  **Absolute numbers are not comparable to the paper's**: the
paper evaluates proprietary NUH data and credential-gated MIMIC-III
over 14k-71k fine-grained ICD concepts on a 40-thread C++ server; this
reproduction runs synthetic substitute corpora (DESIGN.md §2) with
~100-360 fine-grained concepts on one CPU.

| Exp | Paper shape | Reproduced? |
|---|---|---|
| Table 1 | defaults k=20, β=2, d=150 | yes (k, β verbatim; d scaled) |
| Fig 5a | Cov grows with k; Acc saturates near default k | yes |
| Fig 5b | Acc peaks at small β, declines beyond | yes |
| Fig 6 | COM-AID above ⁻c/⁻w/⁻wc; removing both attentions hurts most | yes at DEFAULT scale (SMALL scale ties within noise) |
| Fig 7 | NCL best Acc & MRR on both datasets; pkduck 2nd, better as θ↓; NC/Doc2Vec trail | mostly: NCL clearly first on mimic-iii-like and ties best MRR on hospital-x-like, where WMD/pkduck(0.1) reach the same accuracy band (±0.01) — synthetic noise is more word-alignable than ward language; NC/LR+/Doc2Vec trail as in the paper |
| Fig 8 | pre-training gap > 0.1 at every d | yes (gap larger here: with a small corpus, pre-training carries more signal) |
| Fig 10 | representations shift per feedback; fed pair absorbed | yes (nonzero PCA shifts every step; the fed pair's loss falls in 2 of 3 steps — single-pair incremental updates are noisy at this scale) |
| Fig 11 | time grows with k and query length; ED dominates; hospital-x slower | yes (ED ≈ 95% of online time) |
| Fig 12 | training time ~linear in data; refinement costlier than pre-training | yes per item (absolute gap is a corpus/pair-ratio artifact at bench scale; see section note) |
| Fig 13 | Acc mildly falls with more concepts; falls with less unlabeled data but stays usable | yes |
| extra ablations | — | Phase II ≈ keyword matcher at bench scale (honest finding), rewriting clearly helps, GRU ≈ LSTM, sampled softmax quality-neutral, RRF fusion ≥ weaker member |

---
"""

SECTIONS = [
    ("Table 1: parameter settings", "## Table 1 — parameter settings",
     "Paper: grids k ∈ {10..50}, β ∈ {1..4}, d ∈ {50..200} with bold "
     "defaults 20 / 2 / 150."),
    ("Fig5a", "## Figure 5(a) — vary k",
     "Paper shape: Cov monotonically non-decreasing in k; Acc saturates "
     "near the default k."),
    ("Fig5b", "## Figure 5(b) — vary β",
     "Paper shape: accuracy peaks at a small β and declines beyond "
     "(shallow ontologies; padding duplicates top-level concepts)."),
    ("Fig6", "## Figure 6 — architecture study",
     "Paper shape: COM-AID above every ablated variant; average drops "
     "≈0.08 (−SC) / ≈0.1 (−TC) / ≳0.2 (−both).  Scoring is pure "
     "translation ranking (see fig6 module docstring)."),
    ("Fig7", "## Figure 7 — overall linking quality",
     "Paper shape: NCL highest on both metrics and datasets; pkduck "
     "second, improving as θ decreases; NC and Doc2Vec trail."),
    ("Fig8", "## Figure 8 — effect of pre-training",
     "Paper shape: pre-trained COM-AID above COM-AID⁻o1 at every d with "
     "gap > 0.1; our extra plain-CBOW series isolates the injection "
     "contribution."),
    ("Fig10", "## Figure 10 — effect of expert feedback (Appendix A.2)",
     "Paper shape: PCA-projected concept/word representations shift "
     "after each fed feedback; the fed pair's loss falls (the expert's "
     "implication is absorbed)."),
    ("Fig11", "## Figure 11 — online linking time (Appendix B.1)",
     "Paper shape: time grows with k and with query length; the "
     "encode-decode part dominates; hospital-x slower than MIMIC "
     "(longer canonical descriptions).  Milliseconds per query."),
    ("Fig12", "## Figure 12 — offline training time (Appendix B.2)",
     "Paper shape: both phases grow with their data (refinement "
     "≈ linearly in pairs).  Note: the paper's absolute "
     "pre-training ≪ refinement gap reflects its ~10:1 corpus:pair "
     "ratio and C++ CBOW; the transferable claim — per-item cost of a "
     "COM-AID pair far exceeds a CBOW snippet — is asserted instead."),
    ("Fig13", "## Figure 13 — robustness (Appendix C)",
     "Paper shape: 13(a) accuracy mildly decreases as the considered "
     "concepts grow; 13(b) accuracy drops as the unlabeled corpus "
     "shrinks yet remains usable."),
    ("Ablation", "## Design-choice ablations (beyond the paper)",
     "Phase-II value vs the keyword matcher, query-rewriting value, "
     "LSTM vs GRU, exact vs sampled softmax, NCL+pkduck fusion.  Note "
     "the honest finding: at bench scale the alias-aware keyword "
     "matcher with NCL's own rewriting already matches full NCL; "
     "Phase II's margin belongs to larger ontologies."),
]


def slice_blocks(transcript: str) -> Dict[str, List[str]]:
    """Collect printed lines grouped by figure keyword."""
    blocks: Dict[str, List[str]] = {key: [] for key, _, _ in SECTIONS}
    current = None
    for raw in transcript.splitlines():
        # pytest progress glyphs (".", "s", "F", "E") are glued to the
        # front of printed output; locate a section keyword near the
        # line start rather than stripping characters (stripping would
        # eat the F of "Fig...").
        matched = None
        line = raw
        for key, _, _ in SECTIONS:
            position = raw.find(key)
            if 0 <= position <= 8:
                matched = key
                line = raw[position:]
                break
        if matched:
            current = matched
            blocks[current].append(line)
            continue
        if current is None:
            continue
        # Stop a block at pytest chrome; keep table/series lines.
        if (
            not line.strip()
            or line.startswith(("=", "-- ", "benchmarks/", "tests/"))
            or re.match(r"^-+ benchmark", line)
        ):
            if not line.strip():
                continue
            current = None
            continue
        blocks[current].append(raw)
    return blocks


def main(argv: List[str]) -> int:
    """CLI entry point."""
    if len(argv) != 3:
        print(__doc__)
        return 2
    transcript = Path(argv[1]).read_text(encoding="utf-8")
    blocks = slice_blocks(transcript)
    parts = [HEADER]
    for key, title, commentary in SECTIONS:
        parts.append(f"{title}\n\n{commentary}\n")
        body = "\n".join(blocks.get(key, []))
        if body.strip():
            parts.append("```\n" + body + "\n```\n")
        else:
            parts.append("_(no output captured for this section)_\n")
    Path(argv[2]).write_text("\n".join(parts), encoding="utf-8")
    print(f"wrote {argv[2]}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
