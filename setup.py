"""Legacy setup shim.

The environment has no ``wheel`` package, so PEP 517 editable installs
(which build a wheel) fail; this shim lets ``pip install -e .
--no-use-pep517 --no-build-isolation`` perform a classic setuptools
develop install. All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
