"""Engine retrieval modes: exact bit-identity, compiled indexes, back-compat."""

import json
import shutil

import pytest

from repro.core.config import RetrievalConfig
from repro.core.persistence import write_manifest
from repro.engine.compile import (
    ARTIFACT_FILE,
    DENSE_INDEX_FILE,
    SPARSE_INDEX_FILE,
    compile_artifact,
    load_artifact,
)
from repro.engine.shards import ShardedConceptEngine
from repro.text.tokenize import tokenize
from repro.utils.errors import ConfigurationError, DataError

from tests.engine.conftest import ENGINE_QUERIES, write_legacy_artifact


@pytest.fixture(scope="module")
def indexed_stack(engine_stack, tmp_path_factory):
    """The engine fixture's model compiled *with* both retrieval indexes."""
    ontology, kb, model, _ = engine_stack
    directory = tmp_path_factory.mktemp("retrieval") / "artifact"
    compile_artifact(
        directory, model, ontology, kb=kb, index="both", index_seed=3
    )
    artifact = load_artifact(directory, model=model)
    return ontology, kb, model, directory, artifact


def make_engine(stack, mode, **knobs):
    ontology, _, model, _, artifact = stack
    return ShardedConceptEngine(
        model,
        ontology,
        artifact,
        retrieval=RetrievalConfig(mode=mode, **knobs),
    )


class TestCompiledIndexes:
    def test_format_3_header_and_checksums(self, indexed_stack):
        _, _, _, directory, artifact = indexed_stack
        assert artifact.format == 3
        assert artifact.sparse_index is not None
        assert artifact.dense_index is not None
        assert set(artifact.retrieval_meta) == {"sparse", "dense"}
        for entry in artifact.retrieval_meta.values():
            assert len(entry["sha256"]) == 64
            assert (directory / entry["file"]).exists()

    def test_sparse_index_covers_artifact_order(self, indexed_stack):
        _, _, _, _, artifact = indexed_stack
        assert artifact.sparse_index.keys == list(artifact.cids)
        assert len(artifact.dense_index) == len(artifact.cids)

    def test_unindexed_artifact_has_no_indexes(self, artifact):
        assert artifact.sparse_index is None
        assert artifact.dense_index is None
        assert artifact.retrieval_meta == {}

    def test_swapped_index_file_is_rejected(self, indexed_stack, tmp_path):
        """The header's per-index sha256 catches an index swapped in
        even when the manifest has been regenerated to match."""
        _, _, model, directory, _ = indexed_stack
        clone = tmp_path / "tampered"
        shutil.copytree(directory, clone)
        payload = (clone / SPARSE_INDEX_FILE).read_bytes()
        (clone / SPARSE_INDEX_FILE).write_bytes(payload + b"\0")
        (clone / "manifest.json").unlink()  # regenerate, don't self-checksum
        write_manifest(clone, 3)
        with pytest.raises(DataError, match="sha256"):
            load_artifact(clone, model=model)


class TestEngineModes:
    def test_sparse_mode_is_bit_identical_to_exact(self, indexed_stack):
        exact = make_engine(indexed_stack, "exact")
        sparse = make_engine(indexed_stack, "sparse")
        for query in ENGINE_QUERIES:
            tokens = tokenize(query)
            assert sparse.retrieve(tokens, 5) == exact.retrieve(tokens, 5)

    def test_dense_and_hybrid_return_indexed_cids(self, indexed_stack):
        _, _, _, _, artifact = indexed_stack
        for mode in ("dense", "hybrid"):
            engine = make_engine(indexed_stack, mode)
            hits = engine.retrieve(tokenize("anemia blood loss"), 5)
            assert hits
            assert all(cid in artifact for cid, _ in hits)
            scores = [score for _, score in hits]
            assert scores == sorted(scores, reverse=True)

    def test_mode_counters(self, indexed_stack):
        engine = make_engine(indexed_stack, "hybrid")
        engine.retrieve(tokenize("anemia"), 3)
        engine.retrieve(tokenize("ckd stage 5"), 3)
        stats = engine.stats()
        assert stats["retrieval_mode"] == "hybrid"
        assert stats["retrievals_by_mode"]["hybrid"] == 2
        assert stats["retrievals_by_mode"]["exact"] == 0

    def test_sparse_falls_back_without_compiled_index(
        self, engine_stack, artifact
    ):
        """A format-3 artifact compiled with --index none still serves
        sparse mode (the engine freezes the index at start)."""
        ontology, _, model, _ = engine_stack
        exact = ShardedConceptEngine(model, ontology, artifact)
        sparse = ShardedConceptEngine(
            model,
            ontology,
            artifact,
            retrieval=RetrievalConfig(mode="sparse"),
        )
        for query in ENGINE_QUERIES:
            tokens = tokenize(query)
            assert sparse.retrieve(tokens, 5) == exact.retrieve(tokens, 5)

    def test_dense_without_compiled_index_refuses(self, engine_stack, artifact):
        ontology, _, model, _ = engine_stack
        for mode in ("dense", "hybrid"):
            with pytest.raises(ConfigurationError, match="repro compile"):
                ShardedConceptEngine(
                    model,
                    ontology,
                    artifact,
                    retrieval=RetrievalConfig(mode=mode),
                )


class TestFormat1BackCompat:
    @pytest.fixture()
    def format1_dir(self, engine_stack, tmp_path):
        """A pre-retrieval (format-1) artifact, as an old build wrote it."""
        _, _, _, artifact_dir = engine_stack
        clone = write_legacy_artifact(artifact_dir, tmp_path / "format1", 1)
        assert not (clone / SPARSE_INDEX_FILE).exists()
        assert not (clone / DENSE_INDEX_FILE).exists()
        return clone

    def test_format_1_artifact_loads_verified(self, engine_stack, format1_dir):
        _, _, model, _ = engine_stack
        artifact = load_artifact(format1_dir, model=model, verify=True)
        assert artifact.format == 1
        assert artifact.sparse_index is None
        assert artifact.dense_index is None

    def test_format_1_serves_exact_and_sparse(self, engine_stack, format1_dir):
        ontology, _, model, artifact_dir = engine_stack
        old = load_artifact(format1_dir, model=model)
        new = load_artifact(artifact_dir, model=model)
        old_engine = ShardedConceptEngine(model, ontology, old)
        new_engine = ShardedConceptEngine(model, ontology, new)
        sparse_engine = ShardedConceptEngine(
            model, ontology, old, retrieval=RetrievalConfig(mode="sparse")
        )
        for query in ENGINE_QUERIES:
            tokens = tokenize(query)
            expected = new_engine.retrieve(tokens, 5)
            assert old_engine.retrieve(tokens, 5) == expected
            assert sparse_engine.retrieve(tokens, 5) == expected

    def test_unknown_format_rejected(self, engine_stack, format1_dir):
        _, _, model, _ = engine_stack
        header_path = format1_dir / ARTIFACT_FILE
        header = json.loads(header_path.read_text(encoding="utf-8"))
        header["format"] = 99
        header_path.write_text(json.dumps(header), encoding="utf-8")
        (format1_dir / "manifest.json").unlink()
        write_manifest(format1_dir, 99)
        with pytest.raises(DataError, match="format"):
            load_artifact(format1_dir, model=model)
