"""Scatter-gather sharding: provable equivalence and failure behaviour."""

import math

import numpy as np
import pytest

from repro.core.candidates import CandidateGenerator
from repro.core.config import LinkerConfig
from repro.core.linker import NeuralConceptLinker
from repro.engine.shards import ShardFailure, ShardedConceptEngine
from repro.utils.errors import ConfigurationError, DataError
from repro.utils.faults import FaultSpec, InjectedFault, fault_injection

from tests.engine.conftest import ENGINE_QUERIES

SHARD_COUNTS = (1, 2, 4)


@pytest.fixture(scope="package")
def baseline_linker(engine_stack):
    """The runtime-encoding reference the engine must reproduce."""
    ontology, kb, model, _ = engine_stack
    return NeuralConceptLinker(model, ontology, LinkerConfig(k=5), kb=kb)


def make_engine_linker(engine_stack, shards):
    ontology, kb, model, artifact_dir = engine_stack
    return NeuralConceptLinker(
        model,
        ontology,
        LinkerConfig(k=5, artifact_dir=str(artifact_dir), shards=shards),
        kb=kb,
    )


class TestShardEquivalence:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_retrieve_matches_monolithic_generator(self, engine_stack,
                                                   artifact, shards):
        ontology, _, model, _ = engine_stack
        monolithic = CandidateGenerator.from_documents(
            ontology, artifact.documents
        )
        with ShardedConceptEngine(
            model, ontology, artifact, shards=shards
        ) as engine:
            for query in ENGINE_QUERIES:
                tokens = query.split()
                expected = monolithic.generate(tokens, 5)
                got = engine.retrieve(tokens, 5)
                assert [cid for cid, _ in got] == [cid for cid, _ in expected]
                for (_, score), (_, reference) in zip(got, expected):
                    assert score == pytest.approx(reference, abs=1e-9)

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_score_batch_matches_whole_batch_scoring(self, engine_stack,
                                                     artifact, shards):
        ontology, _, model, _ = engine_stack
        cids = list(artifact.cids)[:6]
        query_ids = model.words_to_ids("ckd stage 5".split())
        batch = [
            (artifact.encoding_of(cid), artifact.structure_memory_of(cid))
            for cid in cids
        ]
        expected = model.score_batch([query_ids] * len(cids), batch)
        with ShardedConceptEngine(
            model, ontology, artifact, shards=shards
        ) as engine:
            got = engine.score_batch([query_ids] * len(cids), cids)
        np.testing.assert_allclose(got, expected, atol=1e-9)

    @pytest.mark.parametrize("shards", (2, 4))
    def test_forced_scatter_matches_whole_batch_scoring(self, engine_stack,
                                                        artifact, shards):
        """min_scatter_candidates=0 forces the pool path even for tiny
        batches; the scattered per-shard decodes must still reproduce
        the whole-batch scores."""
        ontology, _, model, _ = engine_stack
        cids = list(artifact.cids)[:6]
        query_ids = model.words_to_ids("ckd stage 5".split())
        batch = [
            (artifact.encoding_of(cid), artifact.structure_memory_of(cid))
            for cid in cids
        ]
        expected = model.score_batch([query_ids] * len(cids), batch)
        with ShardedConceptEngine(
            model, ontology, artifact, shards=shards,
            min_scatter_candidates=0,
        ) as engine:
            got = engine.score_batch([query_ids] * len(cids), cids)
        np.testing.assert_allclose(got, expected, atol=1e-9)

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_linker_rankings_identical_to_runtime_encoding(
        self, engine_stack, baseline_linker, shards
    ):
        linker = make_engine_linker(engine_stack, shards)
        try:
            for query in ENGINE_QUERIES:
                expected = baseline_linker.link(query)
                got = linker.link(query)
                assert [c.cid for c in got.ranked] == [
                    c.cid for c in expected.ranked
                ]
                for mine, reference in zip(got.ranked, expected.ranked):
                    assert mine.log_prob == pytest.approx(
                        reference.log_prob, abs=1e-9
                    )
                    assert mine.keyword_score == pytest.approx(
                        reference.keyword_score, abs=1e-12
                    )
        finally:
            engine = linker.engine
            if engine is not None:
                engine.close()

    def test_closed_pool_still_answers_inline(self, engine_stack, artifact):
        ontology, _, model, _ = engine_stack
        query_ids = model.words_to_ids("ckd stage 5".split())
        cids = list(artifact.cids)[:4]
        engine = ShardedConceptEngine(model, ontology, artifact, shards=4)
        before = engine.retrieve("ckd stage 5".split(), 5)
        scores_before = engine.score_batch([query_ids] * len(cids), cids)
        engine.close()
        after = engine.retrieve("ckd stage 5".split(), 5)
        scores_after = engine.score_batch([query_ids] * len(cids), cids)
        assert after == before
        np.testing.assert_array_equal(scores_after, scores_before)


class TestShardTopology:
    def test_round_robin_covers_every_concept(self, engine_stack, artifact):
        ontology, _, model, _ = engine_stack
        with ShardedConceptEngine(
            model, ontology, artifact, shards=4
        ) as engine:
            stats = engine.stats()
            assert stats["shards"] == 4
            assert sum(stats["shard_sizes"]) == len(artifact)
            assert max(stats["shard_sizes"]) - min(stats["shard_sizes"]) <= 1
            for cid in artifact.cids:
                assert cid in engine
                assert 0 <= engine.shard_of(cid) < 4
            with pytest.raises(DataError):
                engine.shard_of("Z99.99")

    def test_more_shards_than_concepts_is_rejected(self, engine_stack,
                                                   artifact):
        ontology, _, model, _ = engine_stack
        with pytest.raises(ConfigurationError):
            ShardedConceptEngine(
                model, ontology, artifact, shards=len(artifact) + 1
            )

    def test_config_requires_artifact_for_sharding(self):
        with pytest.raises(ConfigurationError):
            LinkerConfig(shards=2)

    def test_negative_scatter_threshold_is_rejected(self, engine_stack,
                                                    artifact):
        ontology, _, model, _ = engine_stack
        with pytest.raises(ConfigurationError):
            ShardedConceptEngine(
                model, ontology, artifact, shards=2,
                min_scatter_candidates=-1,
            )


class TestShardFailures:
    def test_one_dead_shard_degrades_retrieval_not_results(
        self, engine_stack, artifact
    ):
        ontology, _, model, _ = engine_stack
        with ShardedConceptEngine(
            model, ontology, artifact, shards=4
        ) as engine:
            with fault_injection(
                {"engine.shard.retrieve": FaultSpec(times=1)}
            ):
                hits = engine.retrieve("ckd stage 5".split(), 5)
            assert hits, "three healthy shards must still answer"
            assert engine.stats()["retrieve_shard_failures"] == 1

    def test_all_shards_dead_raises_shard_failure(self, engine_stack,
                                                  artifact):
        ontology, _, model, _ = engine_stack
        with ShardedConceptEngine(
            model, ontology, artifact, shards=2
        ) as engine:
            with fault_injection(
                {"engine.shard.retrieve": FaultSpec(times=-1)}
            ):
                with pytest.raises(ShardFailure):
                    engine.retrieve("ckd stage 5".split(), 5)

    def test_scoring_failure_propagates_the_original_error(
        self, engine_stack, artifact
    ):
        ontology, _, model, _ = engine_stack
        query_ids = model.words_to_ids("ckd stage 5".split())
        with ShardedConceptEngine(
            model, ontology, artifact, shards=2
        ) as engine:
            with fault_injection({"engine.shard.score": FaultSpec(times=-1)}):
                with pytest.raises(InjectedFault):
                    engine.score_batch([query_ids], [artifact.cids[0]])

    def test_scoring_failure_propagates_through_the_pool(
        self, engine_stack, artifact
    ):
        """With the scatter forced, future.result() must re-raise the
        worker's original exception type, not wrap it."""
        ontology, _, model, _ = engine_stack
        query_ids = model.words_to_ids("ckd stage 5".split())
        cids = list(artifact.cids)[:4]
        with ShardedConceptEngine(
            model, ontology, artifact, shards=2,
            min_scatter_candidates=0,
        ) as engine:
            with fault_injection({"engine.shard.score": FaultSpec(times=-1)}):
                with pytest.raises(InjectedFault):
                    engine.score_batch([query_ids] * len(cids), cids)

    def test_worker_death_mid_request_degrades_the_linker(self, engine_stack):
        """A shard worker dying during Phase II must not fail the query:
        ``degrade_on_error`` serves the Phase-I keyword ranking."""
        linker = make_engine_linker(engine_stack, shards=4)
        try:
            clean = linker.link("ckd stage 5")
            assert not clean.degraded
            with fault_injection({"engine.shard.score": FaultSpec(times=-1)}):
                result = linker.link("ckd stage 5")
            assert result.degraded
            assert result.degraded_reason.startswith("error:")
            assert {c.cid for c in result.ranked} == {
                c.cid for c in clean.ranked
            }
            keyword_scores = [c.keyword_score for c in result.ranked]
            assert keyword_scores == sorted(keyword_scores, reverse=True)
            assert all(c.log_prob == -math.inf for c in result.ranked)
        finally:
            if linker.engine is not None:
                linker.engine.close()
