"""Engine-test fixtures: one trained model and one compiled artifact.

Training and compilation are the expensive parts, so both are
package-scoped; tests that need to mutate an artifact copy it first.
"""

import json
import shutil
from pathlib import Path

import numpy as np
import pytest

from repro.core.config import ComAidConfig, TrainingConfig
from repro.core.persistence import write_manifest
from repro.core.trainer import ComAidTrainer
from repro.engine.compile import compile_artifact, load_artifact

from tests.serving.conftest import build_figure1_ontology, build_figure3_kb

#: Query mix covering exact aliases, shared-word families, and typos.
ENGINE_QUERIES = [
    "ckd stage 5",
    "anemia blood loss",
    "vitamin c deficiency anemia",
    "protein deficiency anemia",
    "acute abdomen pain",
    "chronic kidney disease",
    "scorbutic anemia",
    "end stage renal disease",
    "anemia",
    "qqqqq zzzzz",
]


@pytest.fixture(scope="package")
def engine_stack(tmp_path_factory):
    """``(ontology, kb, model, artifact_dir)`` shared by the engine tests."""
    ontology = build_figure1_ontology()
    kb = build_figure3_kb(ontology)
    trainer = ComAidTrainer(
        ComAidConfig(dim=10, beta=2),
        TrainingConfig(
            epochs=8, batch_size=4, optimizer="adagrad", learning_rate=0.2
        ),
        rng=7,
    )
    model = trainer.fit(kb)
    artifact_dir = tmp_path_factory.mktemp("engine") / "artifact"
    compile_artifact(artifact_dir, model, ontology, kb=kb)
    return ontology, kb, model, artifact_dir


@pytest.fixture(scope="package")
def artifact(engine_stack):
    """The compiled artifact, loaded once with the model check on."""
    _, _, model, artifact_dir = engine_stack
    return load_artifact(artifact_dir, model=model)


def write_legacy_artifact(src: Path, dest: Path, fmt: int) -> Path:
    """Down-convert a compiled artifact to the pre-slab on-disk layout.

    Writes ``dest`` exactly as a format-``fmt`` (1 or 2) build would
    have: compressed ``encodings.npz``/``structure.npz`` instead of
    ``slab.bin``, no ``slab`` header section, and a matching manifest.
    Back-compat tests need real old-layout directories, not a format
    number edited onto a new-layout copy.
    """
    assert fmt in (1, 2)
    loaded = load_artifact(src, verify=False)
    shutil.copytree(src, dest)
    (dest / "slab.bin").unlink()
    np.savez_compressed(
        dest / "encodings.npz",
        final_h=np.asarray(loaded.final_h),
        final_c=np.asarray(loaded.final_c),
        states=np.asarray(loaded.states),
        state_offsets=np.asarray(loaded.state_offsets),
        word_ids=np.asarray(loaded.word_ids),
        word_offsets=np.asarray(loaded.word_offsets),
    )
    if loaded.structure is not None:
        np.savez_compressed(
            dest / "structure.npz", structure=np.asarray(loaded.structure)
        )
    header_path = dest / "artifact.json"
    header = json.loads(header_path.read_text(encoding="utf-8"))
    header["format"] = fmt
    header.pop("slab", None)
    if fmt < 2:
        header.pop("retrieval", None)
        for name in ("index_sparse.npz", "index_dense.npz"):
            (dest / name).unlink(missing_ok=True)
    header_path.write_text(
        json.dumps(header, indent=2, sort_keys=True), encoding="utf-8"
    )
    (dest / "manifest.json").unlink()
    write_manifest(dest, fmt)
    return dest
