"""Engine-test fixtures: one trained model and one compiled artifact.

Training and compilation are the expensive parts, so both are
package-scoped; tests that need to mutate an artifact copy it first.
"""

import pytest

from repro.core.config import ComAidConfig, TrainingConfig
from repro.core.trainer import ComAidTrainer
from repro.engine.compile import compile_artifact, load_artifact

from tests.serving.conftest import build_figure1_ontology, build_figure3_kb

#: Query mix covering exact aliases, shared-word families, and typos.
ENGINE_QUERIES = [
    "ckd stage 5",
    "anemia blood loss",
    "vitamin c deficiency anemia",
    "protein deficiency anemia",
    "acute abdomen pain",
    "chronic kidney disease",
    "scorbutic anemia",
    "end stage renal disease",
    "anemia",
    "qqqqq zzzzz",
]


@pytest.fixture(scope="package")
def engine_stack(tmp_path_factory):
    """``(ontology, kb, model, artifact_dir)`` shared by the engine tests."""
    ontology = build_figure1_ontology()
    kb = build_figure3_kb(ontology)
    trainer = ComAidTrainer(
        ComAidConfig(dim=10, beta=2),
        TrainingConfig(
            epochs=8, batch_size=4, optimizer="adagrad", learning_rate=0.2
        ),
        rng=7,
    )
    model = trainer.fit(kb)
    artifact_dir = tmp_path_factory.mktemp("engine") / "artifact"
    compile_artifact(artifact_dir, model, ontology, kb=kb)
    return ontology, kb, model, artifact_dir


@pytest.fixture(scope="package")
def artifact(engine_stack):
    """The compiled artifact, loaded once with the model check on."""
    _, _, model, artifact_dir = engine_stack
    return load_artifact(artifact_dir, model=model)
