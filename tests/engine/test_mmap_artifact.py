"""The format-3 slab: mmap loads, back-compat, and corruption detection.

The slab replaced the compressed ``.npz`` pair so artifacts can be
*mapped* instead of copied: ``load_artifact(..., mmap=True)`` returns
read-only views over one ``np.memmap``, byte-identical to the copy
path.  Formats 1–2 keep loading through the legacy npz path (mmap
falls back to a copy), and any torn or flipped slab byte is a
:class:`DataError` naming ``slab.bin`` before a single query runs.
"""

import json
import shutil

import numpy as np
import pytest

from repro.core.persistence import write_manifest
from repro.engine.compile import load_artifact, verify_artifact
from repro.utils.errors import DataError

from tests.engine.conftest import write_legacy_artifact

SLAB_ARRAYS = (
    "final_h",
    "final_c",
    "states",
    "state_offsets",
    "word_ids",
    "word_offsets",
)


class TestMmapLoad:
    def test_mmap_equals_copy_byte_for_byte(self, engine_stack):
        _, _, model, artifact_dir = engine_stack
        mapped = load_artifact(artifact_dir, model=model, mmap=True)
        copied = load_artifact(artifact_dir, model=model, mmap=False)
        assert mapped.mmap and not copied.mmap
        for name in SLAB_ARRAYS:
            left, right = getattr(mapped, name), getattr(copied, name)
            assert left.dtype == right.dtype
            np.testing.assert_array_equal(left, right)
        if copied.structure is not None:
            np.testing.assert_array_equal(mapped.structure, copied.structure)

    def test_mapped_arrays_are_read_only_memmap_views(self, engine_stack):
        _, _, _, artifact_dir = engine_stack
        mapped = load_artifact(artifact_dir, mmap=True)
        for name in SLAB_ARRAYS:
            array = getattr(mapped, name)
            assert not array.flags.writeable
            with pytest.raises(ValueError):
                array[..., 0] = 0
            base = array
            while isinstance(base, np.ndarray) and base.base is not None:
                if isinstance(base, np.memmap):
                    break
                base = base.base
            assert isinstance(base, np.memmap)

    def test_copy_path_arrays_are_private_and_writable(self, engine_stack):
        _, _, _, artifact_dir = engine_stack
        copied = load_artifact(artifact_dir, mmap=False)
        for name in SLAB_ARRAYS:
            array = getattr(copied, name)
            assert array.flags.writeable
            assert array.flags.owndata or not isinstance(
                array.base, np.memmap
            )


class TestLegacyFormats:
    @pytest.mark.parametrize("fmt", [1, 2])
    def test_old_layout_loads_with_mmap_falling_back_to_copy(
        self, fmt, engine_stack, tmp_path
    ):
        _, _, model, artifact_dir = engine_stack
        legacy = write_legacy_artifact(
            artifact_dir, tmp_path / f"format{fmt}", fmt
        )
        new = load_artifact(artifact_dir, model=model)
        # mmap requested but unavailable pre-slab: the loader serves
        # the npz copy path instead of failing the deployment.
        old = load_artifact(legacy, model=model, mmap=True)
        assert old.format == fmt
        assert not old.mmap
        for name in SLAB_ARRAYS:
            np.testing.assert_array_equal(
                getattr(old, name), getattr(new, name)
            )

    def test_legacy_artifact_still_verifies(self, engine_stack, tmp_path):
        _, _, _, artifact_dir = engine_stack
        legacy = write_legacy_artifact(artifact_dir, tmp_path / "fmt2", 2)
        header = verify_artifact(legacy)
        assert header["format"] == 2
        assert "slab" not in header


class TestSlabCorruption:
    def _clone(self, artifact_dir, tmp_path, name):
        clone = tmp_path / name
        shutil.copytree(artifact_dir, clone)
        return clone

    def test_truncated_slab_raises_naming_file(self, engine_stack, tmp_path):
        _, _, _, artifact_dir = engine_stack
        clone = self._clone(artifact_dir, tmp_path, "truncated")
        slab = clone / "slab.bin"
        with open(slab, "r+b") as handle:
            handle.truncate(slab.stat().st_size - 1)
        with pytest.raises(DataError, match="slab.bin"):
            verify_artifact(clone)
        with pytest.raises(DataError, match="slab.bin"):
            load_artifact(clone)
        # Even with verification off, the size check is unconditional:
        # a torn slab can never be mapped.
        with pytest.raises(DataError, match="slab.bin"):
            load_artifact(clone, verify=False, mmap=True)

    def test_bit_flip_detected_before_serving(self, engine_stack, tmp_path):
        _, _, _, artifact_dir = engine_stack
        clone = self._clone(artifact_dir, tmp_path, "flipped")
        slab = clone / "slab.bin"
        data = bytearray(slab.read_bytes())
        data[len(data) // 2] ^= 0x01
        slab.write_bytes(bytes(data))
        with pytest.raises(DataError, match="slab.bin"):
            verify_artifact(clone)
        with pytest.raises(DataError, match="slab.bin"):
            load_artifact(clone, mmap=True)

    def test_bit_flip_caught_by_header_even_with_manifest_rewritten(
        self, engine_stack, tmp_path
    ):
        # An attacker (or a buggy sync) that rewrites the manifest to
        # match the corrupt bytes still fails: the header's slab sha
        # pins the content independently of the manifest.
        _, _, _, artifact_dir = engine_stack
        clone = self._clone(artifact_dir, tmp_path, "flipped-manifest")
        slab = clone / "slab.bin"
        data = bytearray(slab.read_bytes())
        data[len(data) // 3] ^= 0x80
        slab.write_bytes(bytes(data))
        header = json.loads(
            (clone / "artifact.json").read_text(encoding="utf-8")
        )
        (clone / "manifest.json").unlink()
        write_manifest(clone, header["format"])
        with pytest.raises(DataError, match="slab.bin"):
            verify_artifact(clone)

    def test_header_slab_entry_out_of_bounds(self, engine_stack, tmp_path):
        _, _, _, artifact_dir = engine_stack
        clone = self._clone(artifact_dir, tmp_path, "bad-offset")
        header_path = clone / "artifact.json"
        header = json.loads(header_path.read_text(encoding="utf-8"))
        header["slab"]["arrays"]["final_h"]["offset"] = (
            header["slab"]["nbytes"]
        )
        header_path.write_text(
            json.dumps(header, indent=2, sort_keys=True), encoding="utf-8"
        )
        (clone / "manifest.json").unlink()
        write_manifest(clone, header["format"])
        with pytest.raises(DataError, match="slab"):
            load_artifact(clone, verify=False, mmap=True)
