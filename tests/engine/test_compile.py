"""The compiled concept artifact: round-trip, integrity, fingerprinting."""

import json
import shutil

import numpy as np
import pytest

from repro.core.comaid import ComAid
from repro.engine.compile import (
    ARTIFACT_FORMAT,
    compile_artifact,
    load_artifact,
    model_fingerprint,
    verify_artifact,
)
from repro.ontology.paths import structural_context
from repro.utils.errors import DataError


class TestRoundTrip:
    def test_reload_is_byte_identical(self, engine_stack):
        _, _, model, artifact_dir = engine_stack
        first = load_artifact(artifact_dir, model=model)
        second = load_artifact(artifact_dir, model=model)
        assert first.cids == second.cids
        for name in ("final_h", "final_c", "states", "state_offsets",
                     "word_ids", "word_offsets"):
            np.testing.assert_array_equal(
                getattr(first, name), getattr(second, name), err_msg=name
            )
        np.testing.assert_array_equal(first.structure, second.structure)
        assert first.documents == second.documents
        assert first.fingerprint == second.fingerprint

    def test_header_describes_the_model(self, engine_stack, artifact):
        _, _, model, _ = engine_stack
        assert artifact.format == ARTIFACT_FORMAT
        assert artifact.fingerprint == model_fingerprint(model)
        assert len(artifact) == len(artifact.cids) == artifact.final_h.shape[0]
        assert artifact.final_h.shape[1] == model.config.dim
        assert artifact.structure.shape[1:] == (
            model.config.beta, model.config.dim
        )

    def test_encodings_match_a_live_encoder(self, engine_stack, artifact):
        ontology, _, model, _ = engine_stack
        for cid in list(artifact.cids)[:4]:
            concept = ontology.get(cid)
            word_ids = model.words_to_ids(list(concept.words))
            live = model.encode_concept(word_ids, keep_caches=False)
            frozen = artifact.encoding_of(cid)
            assert tuple(frozen.word_ids) == tuple(word_ids)
            np.testing.assert_array_equal(frozen.final_h, live.final_h)
            np.testing.assert_array_equal(frozen.final_c, live.final_c)
            np.testing.assert_array_equal(frozen.states, live.states)

    def test_structure_memories_match_ancestor_encoders(
        self, engine_stack, artifact
    ):
        ontology, _, model, _ = engine_stack
        beta = model.config.beta
        for cid in list(artifact.cids)[:4]:
            path = structural_context(ontology, cid, beta)
            expected = np.vstack([
                model.encode_concept(
                    model.words_to_ids(list(ancestor.words)), keep_caches=False
                ).final_h
                for ancestor in path[1:]
            ])
            np.testing.assert_array_equal(
                artifact.structure_memory_of(cid), expected
            )

    def test_unknown_cid_raises(self, artifact):
        with pytest.raises(DataError):
            artifact.position_of("Z99.99")
        assert "Z99.99" not in artifact


class TestIntegrity:
    @pytest.fixture
    def artifact_copy(self, engine_stack, tmp_path):
        _, _, _, artifact_dir = engine_stack
        copy = tmp_path / "artifact"
        shutil.copytree(artifact_dir, copy)
        return copy

    def test_verify_passes_on_pristine_artifact(self, artifact_copy):
        manifest = verify_artifact(artifact_copy)
        assert "slab.bin" in manifest["files"]

    def test_checksum_tamper_is_detected(self, engine_stack, artifact_copy):
        _, _, model, _ = engine_stack
        target = artifact_copy / "slab.bin"
        corrupted = bytearray(target.read_bytes())
        corrupted[len(corrupted) // 2] ^= 0xFF
        target.write_bytes(bytes(corrupted))
        with pytest.raises(DataError):
            verify_artifact(artifact_copy)
        with pytest.raises(DataError):
            load_artifact(artifact_copy, model=model)

    def test_truncated_header_is_detected(self, engine_stack, artifact_copy):
        _, _, model, _ = engine_stack
        target = artifact_copy / "artifact.json"
        target.write_bytes(target.read_bytes()[:-8])
        with pytest.raises(DataError):
            load_artifact(artifact_copy, model=model)

    def test_missing_file_is_detected(self, artifact_copy):
        (artifact_copy / "slab.bin").unlink()
        with pytest.raises(DataError):
            verify_artifact(artifact_copy)

    def test_format_version_mismatch_is_rejected(
        self, engine_stack, artifact_copy
    ):
        _, _, model, _ = engine_stack
        header_path = artifact_copy / "artifact.json"
        header = json.loads(header_path.read_text(encoding="utf-8"))
        header["format"] = ARTIFACT_FORMAT + 1
        header_path.write_text(json.dumps(header), encoding="utf-8")
        with pytest.raises(DataError):
            load_artifact(artifact_copy, model=model, verify=False)


class TestFingerprint:
    def test_different_weights_are_refused(self, engine_stack):
        _, _, model, artifact_dir = engine_stack
        stranger = ComAid(model.config, model.vocab, rng=999)
        assert model_fingerprint(stranger) != model_fingerprint(model)
        with pytest.raises(DataError):
            load_artifact(artifact_dir, model=stranger)

    def test_loading_without_a_model_skips_the_check(self, engine_stack):
        _, _, _, artifact_dir = engine_stack
        assert len(load_artifact(artifact_dir)) > 0


class TestCompileInputs:
    def test_restricted_compile_covers_only_requested_cids(
        self, engine_stack, tmp_path
    ):
        ontology, kb, model, _ = engine_stack
        out = tmp_path / "restricted"
        compile_artifact(
            out, model, ontology, kb=kb, restrict_to=["N18.5", "D53.2"]
        )
        restricted = load_artifact(out, model=model)
        assert sorted(restricted.cids) == ["D53.2", "N18.5"]

    def test_compile_with_no_concepts_fails_loudly(
        self, engine_stack, tmp_path
    ):
        ontology, kb, model, _ = engine_stack
        with pytest.raises(DataError):
            compile_artifact(
                tmp_path / "empty", model, ontology, kb=kb,
                restrict_to=["ZZZ"],
            )
