"""verify_artifact per-index checksum coverage (beyond the manifest).

The manifest checks catch ordinary corruption; these tests prove the
*header* checks catch the attack the manifest cannot: a swapped index
file whose manifest entry was consistently regenerated.
"""

import json
import shutil

import numpy as np
import pytest

from repro.core.persistence import _sha256_of, write_manifest
from repro.engine.compile import (
    ARTIFACT_FILE,
    SPARSE_INDEX_FILE,
    compile_artifact,
    load_artifact,
    verify_artifact,
)
from repro.utils.errors import DataError


@pytest.fixture(scope="module")
def indexed_artifact(engine_stack, tmp_path_factory):
    """A format-2 artifact with both retrieval indexes compiled."""
    ontology, kb, model, _ = engine_stack
    directory = tmp_path_factory.mktemp("verify") / "artifact"
    compile_artifact(
        directory, model, ontology, kb=kb, index="both", index_seed=3
    )
    return directory


def _restamp_manifest(directory):
    """Regenerate manifest.json so its checksums match the tampered files.

    This is exactly what a consistent-but-wrong artifact looks like:
    the manifest passes, only the header's per-index pins can object.
    """
    manifest = json.loads(
        (directory / "manifest.json").read_text(encoding="utf-8")
    )
    (directory / "manifest.json").unlink()
    write_manifest(directory, manifest["format"], manifest.get("metadata"))


def _corrupt_copy(source, tmp_path):
    target = tmp_path / "tampered"
    shutil.copytree(source, target)
    return target


class TestIndexChecksums:
    def test_clean_artifact_verifies(self, indexed_artifact):
        manifest = verify_artifact(indexed_artifact)
        assert SPARSE_INDEX_FILE in manifest["files"]

    def test_swapped_index_with_consistent_manifest_is_caught(
        self, indexed_artifact, tmp_path
    ):
        tampered = _corrupt_copy(indexed_artifact, tmp_path)
        path = tampered / SPARSE_INDEX_FILE
        with np.load(path) as archive:
            arrays = {name: archive[name] for name in archive.files}
        first = sorted(arrays)[0]
        flat = arrays[first].reshape(-1)
        if flat.size:
            flat[0] = flat[0] + 1
        np.savez(path, **arrays)
        _restamp_manifest(tampered)
        # The manifest itself is now internally consistent...
        from repro.core.persistence import verify_manifest_dir
        from repro.engine.compile import REQUIRED_FILES

        verify_manifest_dir(tampered, REQUIRED_FILES, kind="artifact")
        # ...but the header's per-index pin is not.
        with pytest.raises(DataError, match="sha256"):
            verify_artifact(tampered)
        with pytest.raises(DataError, match="sha256"):
            load_artifact(tampered)

    def test_malformed_retrieval_entry_is_rejected(
        self, indexed_artifact, tmp_path
    ):
        tampered = _corrupt_copy(indexed_artifact, tmp_path)
        header_path = tampered / ARTIFACT_FILE
        header = json.loads(header_path.read_text(encoding="utf-8"))
        del header["retrieval"]["sparse"]["sha256"]
        header_path.write_text(json.dumps(header), encoding="utf-8")
        _restamp_manifest(tampered)
        with pytest.raises(DataError, match="malformed retrieval entry"):
            verify_artifact(tampered)

    def test_header_declared_index_must_exist(
        self, indexed_artifact, tmp_path
    ):
        tampered = _corrupt_copy(indexed_artifact, tmp_path)
        header_path = tampered / ARTIFACT_FILE
        header = json.loads(header_path.read_text(encoding="utf-8"))
        header["retrieval"]["sparse"]["file"] = "index_ghost.npz"
        header_path.write_text(json.dumps(header), encoding="utf-8")
        _restamp_manifest(tampered)
        with pytest.raises(DataError, match="missing"):
            verify_artifact(tampered)

    def test_verify_false_still_loads_tampered_index(
        self, indexed_artifact, tmp_path, engine_stack
    ):
        """verify=False is the explicit escape hatch and stays one."""
        _, _, model, _ = engine_stack
        tampered = _corrupt_copy(indexed_artifact, tmp_path)
        path = tampered / SPARSE_INDEX_FILE
        with np.load(path) as archive:
            arrays = {name: archive[name] for name in archive.files}
        first = sorted(arrays)[0]
        flat = arrays[first].reshape(-1)
        if flat.size:
            flat[0] = flat[0] + 1
        np.savez(path, **arrays)
        _restamp_manifest(tampered)
        artifact = load_artifact(tampered, verify=False)
        assert artifact.sparse_index is not None

    def test_cli_verify_artifact(self, indexed_artifact, capsys):
        from repro.cli import main

        assert main(["verify-pipeline", "--artifact", str(indexed_artifact)]) == 0
        out = capsys.readouterr().out
        assert "per-index checksums match" in out
        assert "sparse" in out

    def test_cli_verify_requires_a_target(self, capsys):
        from repro.cli import main

        assert main(["verify-pipeline"]) == 2
        assert "provide --model and/or --artifact" in capsys.readouterr().err
