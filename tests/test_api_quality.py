"""API-quality meta-tests: every public item is documented.

"Documentation: doc comments on every public item" is a deliverable —
this test makes it an enforced invariant rather than a hope.
"""

import importlib
import inspect
import pkgutil

import repro

EXEMPT_MODULES = set()


def iter_public_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name in EXEMPT_MODULES:
            continue
        yield importlib.import_module(info.name)


def is_public(name):
    return not name.startswith("_")


def test_every_module_has_a_docstring():
    missing = [
        module.__name__
        for module in iter_public_modules()
        if not (module.__doc__ or "").strip()
    ]
    assert missing == []


def test_every_public_class_and_function_is_documented():
    missing = []
    for module in iter_public_modules():
        for name, obj in vars(module).items():
            if not is_public(name):
                continue
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if getattr(obj, "__module__", None) != module.__name__:
                    continue  # re-export; documented at definition site
                if not (obj.__doc__ or "").strip():
                    missing.append(f"{module.__name__}.{name}")
                if inspect.isclass(obj):
                    for method_name, method in vars(obj).items():
                        if not is_public(method_name):
                            continue
                        if not callable(method) or isinstance(method, type):
                            continue
                        if isinstance(method, property):
                            continue
                        doc = inspect.getdoc(method)
                        if not (doc or "").strip():
                            missing.append(
                                f"{module.__name__}.{name}.{method_name}"
                            )
    assert missing == [], f"undocumented public items: {missing}"


def test_public_api_reexports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name
