"""Tests for the clinical lexicon's structural invariants."""

from repro.datasets import lexicon


class TestAbbreviations:
    def test_paper_shorthands_present(self):
        # The paper's own examples: chr (chronic), def (deficiency),
        # 2' (secondary) appear in Figures 1 and 3.
        assert "chr" in lexicon.WORD_ABBREVIATIONS["chronic"]
        assert "def" in lexicon.WORD_ABBREVIATIONS["deficiency"]
        assert "2'" in lexicon.WORD_ABBREVIATIONS["secondary"]

    def test_abbreviations_are_shorter(self):
        for word, shorthands in lexicon.WORD_ABBREVIATIONS.items():
            for shorthand in shorthands:
                assert len(shorthand) <= len(word), (word, shorthand)

    def test_values_nonempty(self):
        for word, shorthands in lexicon.WORD_ABBREVIATIONS.items():
            assert shorthands, word


class TestAcronyms:
    def test_ckd_and_dm(self):
        assert lexicon.PHRASE_ACRONYMS["chronic kidney disease"] == "ckd"
        assert lexicon.PHRASE_ACRONYMS["diabetes mellitus"] == "dm"

    def test_phrases_are_multiword_or_long(self):
        for phrase in lexicon.PHRASE_ACRONYMS:
            assert " " in phrase or len(phrase) > 8

    def test_inverse_mapping(self):
        inverted = lexicon.invert_acronyms()
        assert inverted["ckd"] == "chronic kidney disease"
        assert all(acronym for acronym in inverted)


class TestSynonymRegisters:
    def test_registers_mostly_disjoint_values(self):
        """Colloquial replacements must mostly NOT appear as formal
        replacements — the register split is what separates alias
        language from query language."""
        formal_values = {
            value
            for values in lexicon.FORMAL_WORD_SYNONYMS.values()
            for value in values
        }
        colloquial_values = {
            value
            for values in lexicon.COLLOQUIAL_WORD_SYNONYMS.values()
            for value in values
        }
        overlap = formal_values & colloquial_values
        assert len(overlap) <= 2, overlap

    def test_polysemy_exists_in_colloquial_register(self):
        """Ward shorthand is ambiguous by design ('attack', 'blockage',
        'growth' each map from several formal words)."""
        from collections import Counter

        value_counts = Counter(
            value
            for values in lexicon.COLLOQUIAL_WORD_SYNONYMS.values()
            for value in values
        )
        polysemous = [value for value, count in value_counts.items() if count > 1]
        assert len(polysemous) >= 3

    def test_combined_view_contains_both(self):
        for word in lexicon.FORMAL_WORD_SYNONYMS:
            assert word in lexicon.WORD_SYNONYMS
        for word in lexicon.COLLOQUIAL_WORD_SYNONYMS:
            assert word in lexicon.WORD_SYNONYMS

    def test_no_self_synonyms(self):
        for table in (
            lexicon.FORMAL_WORD_SYNONYMS,
            lexicon.COLLOQUIAL_WORD_SYNONYMS,
        ):
            for word, values in table.items():
                assert word not in values, word


class TestDanglingPhrases:
    def test_nonempty_and_lowercase(self):
        assert lexicon.DANGLING_PHRASES
        for phrase in lexicon.DANGLING_PHRASES:
            assert phrase == phrase.lower()
