"""Tests for the noise channels and noise model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import lexicon
from repro.datasets.noise import (
    AbbreviationChannel,
    AcronymChannel,
    DanglingChannel,
    NoiseModel,
    NumericStyleChannel,
    ReorderChannel,
    SimplificationChannel,
    SynonymChannel,
    TypoChannel,
    alias_noise_model,
    channel_catalogue,
    query_noise_model,
)
from repro.text.edit_distance import damerau_levenshtein
from repro.utils.errors import ConfigurationError


def rng(seed=0):
    return np.random.default_rng(seed)


class TestAbbreviationChannel:
    def test_known_word_abbreviated(self):
        result = AbbreviationChannel(max_replacements=1).apply(
            ["chronic", "pain"], rng()
        )
        assert result is not None
        assert result[0] in lexicon.WORD_ABBREVIATIONS["chronic"]
        assert result[1] == "pain"

    def test_no_candidates_returns_none(self):
        assert AbbreviationChannel().apply(["zzz"], rng()) is None

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            AbbreviationChannel(max_replacements=0)


class TestAcronymChannel:
    def test_ckd_collapse(self):
        result = AcronymChannel().apply(
            ["chronic", "kidney", "disease", "stage", "5"], rng()
        )
        assert result == ["ckd", "stage", "5"]

    def test_longest_phrase_wins(self):
        result = AcronymChannel().apply(
            ["type", "2", "diabetes", "mellitus"], rng()
        )
        assert result == ["t2dm"]

    def test_no_phrase_returns_none(self):
        assert AcronymChannel().apply(["anemia"], rng()) is None


class TestSynonymChannel:
    def test_formal_register(self):
        channel = SynonymChannel(
            word_synonyms=lexicon.FORMAL_WORD_SYNONYMS,
            phrase_synonyms={},
        )
        result = channel.apply(["kidney", "failure"], rng())
        assert result is not None and result != ["kidney", "failure"]

    def test_multiword_synonym_splices(self):
        channel = SynonymChannel(
            word_synonyms={"pneumonia": ("chest infection",)},
            phrase_synonyms={},
        )
        result = channel.apply(["pneumonia", "severe"], rng())
        assert result == ["chest", "infection", "severe"]

    def test_no_match_returns_none(self):
        channel = SynonymChannel(word_synonyms={}, phrase_synonyms={})
        assert channel.apply(["anything"], rng()) is None

    def test_invalid_max_replacements(self):
        with pytest.raises(ConfigurationError):
            SynonymChannel(max_replacements=0)


class TestSimplificationChannel:
    def test_drops_droppable(self):
        result = SimplificationChannel(max_drops=2).apply(
            ["anemia", "unspecified", "of", "the"], rng()
        )
        assert result is not None
        assert len(result) < 4
        assert "anemia" in result

    def test_preserves_min_remaining(self):
        channel = SimplificationChannel(max_drops=5, min_remaining=1)
        result = channel.apply(["of"], rng())
        assert result is None  # would drop below min_remaining

    def test_invalid_min_remaining(self):
        with pytest.raises(ConfigurationError):
            SimplificationChannel(min_remaining=0)


class TestTypoChannel:
    def test_single_edit(self):
        channel = TypoChannel(min_word_length=5)
        for seed in range(10):
            result = channel.apply(["neuropathy"], rng(seed))
            assert result is not None
            assert damerau_levenshtein(result[0], "neuropathy") == 1

    def test_short_words_skipped(self):
        assert TypoChannel(min_word_length=5).apply(["ckd", "5"], rng()) is None


class TestNumericStyleChannel:
    def test_stage_number(self):
        result = NumericStyleChannel().apply(["ckd", "stage", "5"], rng())
        assert result == ["ckd", "5"]

    def test_no_number_returns_none(self):
        assert NumericStyleChannel().apply(["stage", "five"], rng()) is None


class TestDanglingChannel:
    def test_appends_or_prepends_phrase(self):
        result = DanglingChannel().apply(["anemia"], rng())
        assert result is not None
        assert "anemia" in result
        assert len(result) > 1


class TestReorderChannel:
    def test_rotation(self):
        result = ReorderChannel().apply(["a", "b", "c"], rng())
        assert result is not None
        assert sorted(result) == ["a", "b", "c"]
        assert result != ["a", "b", "c"]

    def test_too_short_returns_none(self):
        assert ReorderChannel(min_length=3).apply(["a", "b"], rng()) is None


class TestNoiseModel:
    def test_records_fired_channels(self):
        model = NoiseModel([(AcronymChannel(), 1.0)])
        result = model.corrupt(["chronic", "kidney", "disease"], rng())
        assert result.channels == ("acronym",)

    def test_zero_probability_never_fires(self):
        model = NoiseModel([(AcronymChannel(), 0.0)])
        result = model.corrupt(["chronic", "kidney", "disease"], rng())
        assert result.channels == ()
        assert result.tokens == ("chronic", "kidney", "disease")

    def test_min_channels_forces_applicable(self):
        model = NoiseModel([(AcronymChannel(), 0.0)], min_channels=1)
        result = model.corrupt(["chronic", "kidney", "disease"], rng())
        assert result.channels == ("acronym",)

    def test_invalid_probability(self):
        with pytest.raises(ConfigurationError):
            NoiseModel([(AcronymChannel(), 1.5)])

    def test_invalid_min_channels(self):
        with pytest.raises(ConfigurationError):
            NoiseModel([], min_channels=-1)

    def test_deterministic_with_seed(self):
        model = query_noise_model()
        words = ["iron", "deficiency", "anemia", "secondary", "to", "blood", "loss"]
        a = model.corrupt(words, rng(5))
        b = model.corrupt(words, rng(5))
        assert a == b

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_query_model_always_yields_tokens(self, seed):
        model = query_noise_model()
        result = model.corrupt(
            ["chronic", "kidney", "disease", "stage", "5"], rng(seed)
        )
        assert len(result.tokens) >= 1
        assert all(token for token in result.tokens)


class TestPresets:
    def test_catalogue_covers_all_channel_names(self):
        names = set(channel_catalogue())
        assert names == {
            "abbreviation", "acronym", "synonym", "simplification",
            "dangling", "typo", "numeric_style", "reorder",
        }

    def test_alias_model_is_formal_register(self):
        # Colloquial-only words must never appear in aliases.
        model = alias_noise_model()
        generator = rng(1)
        for _ in range(50):
            result = model.corrupt(
                ["cholelithiasis", "with", "obstruction"], generator
            )
            assert "gallstones" not in result.tokens
