"""Tests for dataset bundle generation."""

import pytest

from repro.datasets.generator import (
    build_corpus,
    generate_dataset,
    generate_queries,
    hospital_x_like,
    mimic_iii_like,
    populate_aliases,
)
from repro.kb.knowledge_base import KnowledgeBase
from repro.ontology.icd import build_icd10_like_ontology
from repro.utils.errors import ConfigurationError


@pytest.fixture(scope="module")
def small_ontology():
    return build_icd10_like_ontology(
        rng=9, categories_per_family=2, leaves_per_category=2
    )


class TestPopulateAliases:
    def test_every_leaf_gets_aliases(self, small_ontology):
        kb = KnowledgeBase(small_ontology)
        stored = populate_aliases(kb, aliases_per_concept=3, rng=1)
        assert stored == kb.alias_count()
        for leaf in small_ontology.fine_grained():
            assert len(kb.aliases_of(leaf.cid)) >= 1

    def test_parent_blend_included(self, small_ontology):
        kb = KnowledgeBase(small_ontology)
        populate_aliases(kb, aliases_per_concept=1, rng=1, include_parent_blend=True)
        blended_found = False
        for leaf in small_ontology.fine_grained():
            parent = small_ontology.parent_of(leaf.cid)
            for alias in kb.aliases_of(leaf.cid):
                if alias.startswith(" ".join(parent.words)):
                    blended_found = True
        assert blended_found

    def test_invalid_count(self, small_ontology):
        with pytest.raises(ConfigurationError):
            populate_aliases(KnowledgeBase(small_ontology), 0)


class TestGenerateQueries:
    def test_count_and_ground_truth(self, small_ontology):
        queries = generate_queries(small_ontology, 25, rng=2)
        assert len(queries) == 25
        leaves = {leaf.cid for leaf in small_ontology.fine_grained()}
        assert all(query.cid in leaves for query in queries)
        assert all(query.text for query in queries)

    def test_every_query_is_noisy(self, small_ontology):
        queries = generate_queries(small_ontology, 25, rng=2)
        assert all(query.channels for query in queries)

    def test_restricted_cids(self, small_ontology):
        target = small_ontology.fine_grained()[0].cid
        queries = generate_queries(small_ontology, 5, rng=2, cids=[target])
        assert all(query.cid == target for query in queries)

    def test_deterministic(self, small_ontology):
        a = generate_queries(small_ontology, 10, rng=3)
        b = generate_queries(small_ontology, 10, rng=3)
        assert a == b

    def test_invalid_count(self, small_ontology):
        with pytest.raises(ConfigurationError):
            generate_queries(small_ontology, -1)


class TestBuildCorpus:
    def test_ingredients_present(self, small_ontology):
        kb = KnowledgeBase(small_ontology)
        populate_aliases(kb, 2, rng=1)
        queries = generate_queries(small_ontology, 10, rng=2)
        corpus = build_corpus(kb, queries, background_factor=1, mixed_factor=1, rng=3)
        # Tagged canonical snippets for every concept.
        tagged_cids = {snippet.cid for snippet in corpus.tagged()}
        assert {c.cid for c in small_ontology} <= tagged_cids
        # Untagged side includes the queries.
        untagged_texts = {snippet.text for snippet in corpus.untagged()}
        assert any(query.text in untagged_texts for query in queries)

    def test_mixed_factor_creates_long_snippets(self, small_ontology):
        kb = KnowledgeBase(small_ontology)
        populate_aliases(kb, 1, rng=1)
        corpus = build_corpus(kb, [], background_factor=0, mixed_factor=2, rng=3)
        leaf = small_ontology.fine_grained()[0]
        long_snippets = [
            snippet
            for snippet in corpus.untagged()
            if len(snippet.words) > len(leaf.words)
        ]
        assert long_snippets


class TestPresets:
    def test_hospital_x_summary(self):
        bundle = hospital_x_like(
            rng=4, categories_per_family=2, leaves_per_category=2, query_count=30
        )
        summary = bundle.summary()
        assert summary["name"] == "hospital-x-like"
        assert summary["queries"] == 30
        assert summary["aliases"] > 0
        assert summary["unlabeled_snippets"] > summary["aliases"]

    def test_mimic_is_smaller_and_numeric(self):
        hospital = hospital_x_like(rng=4, query_count=20)
        mimic = mimic_iii_like(rng=4, query_count=20)
        assert len(mimic.ontology) < len(hospital.ontology)
        assert all(
            leaf.cid.split(".")[0].isdigit()
            for leaf in mimic.ontology.fine_grained()
        )

    def test_deterministic_bundles(self):
        a = hospital_x_like(rng=4, categories_per_family=2, query_count=10)
        b = hospital_x_like(rng=4, categories_per_family=2, query_count=10)
        assert [q.text for q in a.queries] == [q.text for q in b.queries]
        assert a.kb.to_dict() == b.kb.to_dict()

    def test_queries_never_used_as_aliases(self):
        bundle = hospital_x_like(
            rng=4, categories_per_family=2, leaves_per_category=2, query_count=30
        )
        aliases = {
            alias for _, alias in bundle.kb.labeled_snippets()
        }
        overlap = [q for q in bundle.queries if q.text in aliases]
        # Training data and evaluation queries come from different noise
        # registers; coincidental identical strings must be rare.
        assert len(overlap) <= len(bundle.queries) * 0.05


class TestLargeScale:
    def test_stream_is_lazy(self):
        from itertools import islice

        from repro.datasets.generator import iter_large_scale_concepts

        stream = iter_large_scale_concepts("large", rng=5)
        first = list(islice(stream, 3))
        assert first[0][2] is None  # a family block arrives first
        assert first[1][2] == first[0][0]  # then its first category
        assert first[2][2] == first[1][0]  # then that category's leaf

    def test_seed_stable(self):
        from repro.datasets.generator import iter_large_scale_concepts

        first = list(iter_large_scale_concepts("small", rng=5))
        second = list(iter_large_scale_concepts("small", rng=5))
        assert first == second
        other = list(iter_large_scale_concepts("small", rng=6))
        assert first != other

    def test_scales_nest(self):
        """Every leaf at a smaller scale appears identically at a larger
        one — benchmarks across scales rank the same concepts."""
        from repro.datasets.generator import iter_large_scale_concepts

        small = list(iter_large_scale_concepts("small", rng=5))
        medium = {entry[0]: entry for entry in iter_large_scale_concepts("medium", rng=5)}
        assert all(medium[entry[0]] == entry for entry in small)

    def test_counts_and_uniqueness(self):
        from repro.datasets.generator import build_large_scale_ontology

        ontology = build_large_scale_ontology("medium", rng=5)
        described = ontology.describe()
        assert described["fine_grained"] == 10_000
        assert described["max_depth"] == 3
        leaves = ontology.fine_grained()
        descriptions = {leaf.description for leaf in leaves}
        # Qualifier crossing keeps siblings textually distinct; only
        # cross-category collisions (same condition in two families)
        # could repeat, and the category prefix rules those out here.
        assert len(descriptions) == len(leaves)

    def test_explicit_leaf_count(self):
        from repro.datasets.generator import build_large_scale_ontology

        ontology = build_large_scale_ontology(500, rng=5)
        assert ontology.describe()["fine_grained"] == 500

    def test_invalid_scale_rejected(self):
        from repro.datasets.generator import iter_large_scale_concepts

        with pytest.raises(ConfigurationError):
            next(iter_large_scale_concepts("huge", rng=5))
        with pytest.raises(ConfigurationError):
            next(iter_large_scale_concepts(0, rng=5))
        with pytest.raises(ConfigurationError):
            # Beyond the qualifier pools' combinatorial capacity.
            next(iter_large_scale_concepts(1_000_000, rng=5))

    def test_bundle_is_lean_and_registered(self):
        from repro.datasets.generator import large_scale_like
        from repro.datasets.registry import get_dataset_builder

        assert get_dataset_builder("large-scale-like") is large_scale_like
        bundle = large_scale_like(rng=5, scale=600, query_count=20)
        summary = bundle.summary()
        assert summary["fine_grained"] == 600
        assert summary["aliases"] == 0
        assert summary["queries"] == 20
        for query in bundle.queries:
            assert bundle.ontology.is_fine_grained(query.cid)
