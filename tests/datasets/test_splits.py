"""Tests for the query-group evaluation protocol."""

import pytest

from repro.datasets.generator import LinkedQuery
from repro.datasets.splits import (
    channel_histogram,
    make_query_groups,
    select_purposive,
)
from repro.utils.errors import ConfigurationError, DataError


def make_queries():
    queries = []
    channels = ["abbreviation", "synonym", "acronym", "simplification"]
    for index in range(80):
        queries.append(
            LinkedQuery(
                text=f"query {index}",
                cid=f"C{index % 7}",
                channels=(channels[index % 4],),
            )
        )
    return queries


class TestSelectPurposive:
    def test_stratified_across_phenomena(self):
        queries = make_queries()
        selected = select_purposive(queries, 16, rng=1)
        histogram = channel_histogram(selected)
        assert set(histogram) == {
            "abbreviation", "synonym", "acronym", "simplification",
        }
        assert all(count == 4 for count in histogram.values())

    def test_no_duplicates(self):
        queries = make_queries()
        selected = select_purposive(queries, 20, rng=2)
        assert len({id(query) for query in selected}) == 20

    def test_falls_back_when_phenomenon_scarce(self):
        queries = [
            LinkedQuery(text=f"q{i}", cid="C", channels=("typo",))
            for i in range(10)
        ]
        selected = select_purposive(queries, 5, rng=0)
        assert len(selected) == 5

    def test_too_many_requested(self):
        with pytest.raises(DataError):
            select_purposive(make_queries()[:3], 5)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            select_purposive(make_queries(), -1)


class TestMakeQueryGroups:
    def test_paper_protocol_shape(self):
        queries = make_queries()
        groups = make_query_groups(
            queries, n_groups=5, group_size=30, purposive_size=8, rng=3
        )
        assert len(groups) == 5
        assert all(len(group) == 30 for group in groups)
        assert all(group.purposive_count == 8 for group in groups)

    def test_purposive_core_shared_across_groups(self):
        queries = make_queries()
        groups = make_query_groups(
            queries, n_groups=3, group_size=20, purposive_size=6, rng=3
        )
        cores = [
            tuple(query.text for query in group.queries[:6]) for group in groups
        ]
        assert cores[0] == cores[1] == cores[2]

    def test_random_tails_differ(self):
        queries = make_queries()
        groups = make_query_groups(
            queries, n_groups=3, group_size=40, purposive_size=4, rng=3
        )
        tails = [
            frozenset(query.text for query in group.queries[4:])
            for group in groups
        ]
        assert len(set(tails)) > 1

    def test_no_duplicates_within_group(self):
        queries = make_queries()
        for group in make_query_groups(
            queries, n_groups=4, group_size=30, purposive_size=8, rng=5
        ):
            texts = [query.text for query in group.queries]
            assert len(texts) == len(set(texts))

    def test_group_size_exceeding_pool(self):
        with pytest.raises(DataError):
            make_query_groups(make_queries(), n_groups=1, group_size=100)

    def test_purposive_exceeding_group(self):
        with pytest.raises(ConfigurationError):
            make_query_groups(
                make_queries(), n_groups=1, group_size=10, purposive_size=20
            )

    def test_deterministic(self):
        queries = make_queries()
        a = make_query_groups(queries, n_groups=2, group_size=20, purposive_size=4, rng=7)
        b = make_query_groups(queries, n_groups=2, group_size=20, purposive_size=4, rng=7)
        assert [
            [q.text for q in group.queries] for group in a
        ] == [
            [q.text for q in group.queries] for group in b
        ]


class TestChannelHistogram:
    def test_counts(self):
        histogram = channel_histogram(make_queries())
        assert sum(histogram.values()) == 80
