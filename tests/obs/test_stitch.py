"""Cross-process trace transport: export_trace / graft / rendering."""

from repro.obs.trace import (
    MAX_SPANS_PER_TRACE,
    NOOP_SPAN,
    Tracer,
    export_trace,
    format_trace,
    graft,
    span,
)


def _spans_by_name(trace_dict):
    return {s["name"]: s for s in trace_dict["spans"]}


def _worker_payload(request_id="req-w", pid=4242, extra_spans=0):
    """A finished worker-side trace payload, as a worker would ship it."""
    tracer = Tracer(sample_rate=1.0, capacity=1)
    root = tracer.start_trace("worker.link", request_id=request_id)
    root.set_tag("pid", pid)
    with root:
        with span("linker.rewrite", phase="OR"):
            pass
        with span("linker.phase2", phase="ED") as sp:
            sp.add_event("decode.start")
        for index in range(extra_spans):
            span(f"extra.{index}").end()
    return export_trace(root)


class TestExport:
    def test_noop_and_none_export_nothing(self):
        assert export_trace(None) is None
        assert export_trace(NOOP_SPAN) is None

    def test_export_is_a_plain_dict_payload(self):
        payload = _worker_payload()
        assert payload["request_id"] == "req-w"
        assert {s["name"] for s in payload["spans"]} == {
            "worker.link", "linker.rewrite", "linker.phase2",
        }
        assert payload["started_at"] > 0


class TestGraft:
    def test_grafted_subtree_hangs_under_the_parent_span(self):
        payload = _worker_payload()
        tracer = Tracer()
        root = tracer.start_trace("http.link", request_id="req-parent")
        with root:
            dispatch = root.child("frontend.dispatch", worker=0)
            grafted = graft(dispatch, payload)
            dispatch.end()
        assert grafted == 3
        trace_dict = tracer.find("req-parent")
        by_name = _spans_by_name(trace_dict)
        worker_root = by_name["worker.link"]
        assert worker_root["parent_id"] == by_name["frontend.dispatch"]["span_id"]
        assert by_name["linker.rewrite"]["parent_id"] == worker_root["span_id"]
        assert by_name["linker.phase2"]["parent_id"] == worker_root["span_id"]
        # Foreign IDs were re-allocated: no collisions with parent spans.
        ids = [s["span_id"] for s in trace_dict["spans"]]
        assert len(ids) == len(set(ids))

    def test_two_worker_payloads_do_not_collide(self):
        first = _worker_payload(request_id="req-a", pid=1)
        second = _worker_payload(request_id="req-b", pid=2)
        tracer = Tracer()
        root = tracer.start_trace("http.link", request_id="req-fused")
        with root:
            left = root.child("frontend.dispatch", worker=0)
            right = root.child("frontend.dispatch", worker=1)
            assert graft(left, first) == 3
            assert graft(right, second) == 3
            left.end()
            right.end()
        trace_dict = tracer.find("req-fused")
        ids = [s["span_id"] for s in trace_dict["spans"]]
        assert len(ids) == len(set(ids))
        roots = [s for s in trace_dict["spans"] if s["name"] == "worker.link"]
        assert {s["tags"]["pid"] for s in roots} == {1, 2}

    def test_timebase_shift_keeps_offsets_orderable(self):
        payload = _worker_payload()
        # Pretend the worker's trace began 1.5 s after the parent's.
        tracer = Tracer()
        root = tracer.start_trace("http.link", request_id="req-shift")
        with root:
            payload["started_at"] = root._record.started_at + 1.5
            dispatch = root.child("frontend.dispatch")
            graft(dispatch, payload)
            dispatch.end()
        by_name = _spans_by_name(tracer.find("req-shift"))
        assert by_name["worker.link"]["start_s"] >= 1.5
        event = by_name["linker.phase2"]["events"][0]
        assert event["at_s"] >= 1.5

    def test_noop_parent_and_empty_payload_graft_nothing(self):
        payload = _worker_payload()
        assert graft(NOOP_SPAN, payload) == 0
        assert graft(None, payload) == 0
        tracer = Tracer()
        with tracer.start_trace("root", request_id="r") as root:
            assert graft(root, None) == 0
            assert graft(root, {"spans": []}) == 0

    def test_span_cap_survives_graft_and_counts_drops(self):
        payload = _worker_payload(extra_spans=MAX_SPANS_PER_TRACE)
        tracer = Tracer()
        root = tracer.start_trace("http.link", request_id="req-cap")
        with root:
            dispatch = root.child("frontend.dispatch")
            grafted = graft(dispatch, payload)
            dispatch.end()
        trace_dict = tracer.find("req-cap")
        assert len(trace_dict["spans"]) == MAX_SPANS_PER_TRACE
        assert grafted <= MAX_SPANS_PER_TRACE
        # Worker-side drops carry over; the parent's own spans that no
        # longer fit add more on top.
        assert trace_dict["dropped_spans"] > payload["dropped_spans"]


class TestStitchedRendering:
    def test_pid_renders_inline_and_tree_is_one_piece(self):
        payload = _worker_payload(pid=777)
        tracer = Tracer()
        root = tracer.start_trace("http.link", request_id="req-render")
        with root:
            dispatch = root.child("frontend.dispatch", worker=0)
            graft(dispatch, payload)
            dispatch.end()
        text = format_trace(tracer.find("req-render"))
        assert "[pid 777]" in text
        assert "(orphan)" not in text
        lines = text.splitlines()
        dispatch_line = next(l for l in lines if "frontend.dispatch" in l)
        worker_line = next(l for l in lines if "worker.link" in l)
        indent = lambda l: len(l) - len(l.lstrip())  # noqa: E731
        assert indent(worker_line) > indent(dispatch_line)

    def test_orphan_spans_are_promoted_not_dropped(self):
        trace_dict = {
            "trace_id": "t", "request_id": "r", "name": "root",
            "duration_s": 0.001, "dropped_spans": 0,
            "spans": [
                {"span_id": "s1", "parent_id": None, "name": "root",
                 "start_s": 0.0, "duration_s": 0.001, "tags": {},
                 "events": []},
                {"span_id": "s2", "parent_id": "missing", "name": "lost",
                 "start_s": 0.0005, "duration_s": 0.0001, "tags": {},
                 "events": []},
            ],
        }
        text = format_trace(trace_dict)
        assert "lost" in text
        assert "(orphan)" in text
