"""Trainer run telemetry: fit(run_dir=...) writes a diffable run log."""

import json

import pytest

from repro.core.config import ComAidConfig, TrainingConfig
from repro.core.trainer import ComAidTrainer
from repro.obs.runlog import EPOCHS_FILE, diff_runs, list_runs, load_run


def _trainer(seed=7, epochs=3):
    return ComAidTrainer(
        ComAidConfig(dim=8, beta=2),
        TrainingConfig(
            epochs=epochs, batch_size=4, optimizer="adagrad", learning_rate=0.2
        ),
        rng=seed,
    )


class TestFitTelemetry:
    @pytest.fixture(scope="class")
    def run_root(self, tmp_path_factory, figure3_kb_cls):
        root = tmp_path_factory.mktemp("runs")
        _trainer(seed=7).fit(
            figure3_kb_cls,
            run_dir=root,
            run_id="run-a",
            checkpoint_dir=root / "ckpt",
            checkpoint_every=2,
        )
        _trainer(seed=11).fit(figure3_kb_cls, run_dir=root, run_id="run-b")
        return root

    def test_epoch_records_carry_the_telemetry_fields(self, run_root):
        lines = (run_root / "run-a" / EPOCHS_FILE).read_text().splitlines()
        records = [json.loads(line) for line in lines]
        assert [r["epoch"] for r in records] == [1, 2, 3]
        for record in records:
            assert record["mean_loss"] > 0
            assert record["tokens"] > 0
            assert record["tokens_per_s"] >= 0
            assert record["grad_norm_mean"] > 0
            assert record["grad_norm_max"] >= record["grad_norm_mean"]
            assert len(record["rng"]) == 12
        # Epoch 2 checkpointed; epochs 1 and 3 did not.
        assert records[1]["checkpoint_s"] > 0
        assert records[0]["checkpoint_s"] == 0.0
        assert records[2]["checkpoint_s"] == 0.0
        # The shuffle stream advances every epoch.
        assert len({r["rng"] for r in records}) == 3

    def test_meta_and_summary_describe_the_run(self, run_root):
        info = load_run(run_root / "run-a")
        assert info.completed
        assert info.meta["training_config"]["epochs"] == 3
        assert info.meta["model_config"]["dim"] == 8
        assert info.meta["resumed_epoch"] == 0
        assert len(info.meta["rng_fingerprint_start"]) == 12
        assert info.final_loss == pytest.approx(info.epochs[-1]["mean_loss"])

    def test_runs_are_listable_and_diffable(self, run_root):
        runs = list_runs(run_root)
        assert [run.run_id for run in runs] == ["run-a", "run-b"]
        report = diff_runs(runs[0], runs[1])
        assert report["common_epochs"] == 3
        # Different seeds diverge from the first epoch.
        assert any(
            entry["delta"] != pytest.approx(0.0)
            for entry in report["per_epoch"]
        )


@pytest.fixture(scope="class")
def figure3_kb_cls():
    """Class-scoped copy of the Figure 1/3 fixture (one training per class)."""
    from repro.kb.knowledge_base import KnowledgeBase
    from repro.ontology.concept import Concept
    from repro.ontology.ontology import Ontology

    ontology = Ontology()
    ontology.add(Concept("D50", "iron deficiency anemia"))
    ontology.add(
        Concept("D50.0", "iron deficiency anemia secondary to blood loss"),
        parent_cid="D50",
    )
    ontology.add(Concept("D53", "other nutritional anemias"))
    ontology.add(
        Concept("D53.0", "protein deficiency anemia"), parent_cid="D53"
    )
    ontology.add(Concept("D53.2", "scorbutic anemia"), parent_cid="D53")
    ontology.add(Concept("N18", "chronic kidney disease"))
    ontology.add(
        Concept("N18.5", "chronic kidney disease, stage 5"), parent_cid="N18"
    )
    kb = KnowledgeBase(ontology)
    kb.add_alias("D50.0", "anemia, chronic blood loss")
    kb.add_alias("D53.0", "amino acid deficiency anemia")
    kb.add_alias("D53.2", "vitamin c deficiency anemia")
    kb.add_alias("N18.5", "ckd stage 5")
    return kb
