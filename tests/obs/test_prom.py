"""Prometheus text exposition: names, counters, histograms, gauges,
labeled per-worker series, and SLO gauge flattening."""

import math

from repro.obs.prom import (
    render_prometheus,
    sanitize_metric_name,
    snapshot_gauges,
    worker_series,
)
from repro.serving.metrics import MetricsRegistry


class TestSanitize:
    def test_dots_and_dashes_fold_to_underscores(self):
        assert sanitize_metric_name("phase_seconds.ED") == "phase_seconds_ED"
        assert sanitize_metric_name("a-b c") == "a_b_c"

    def test_digit_prefix_guard(self):
        assert sanitize_metric_name("5xx") == "_5xx"
        assert sanitize_metric_name("") == "_"

    def test_colons_allowed(self):
        assert sanitize_metric_name("ns:metric") == "ns:metric"


class TestRender:
    def test_counters_get_total_suffix_and_type_line(self):
        registry = MetricsRegistry()
        registry.counter("requests").inc(3)
        registry.counter("hits_total").inc(1)
        text = render_prometheus(registry)
        assert "# TYPE repro_requests_total counter" in text
        assert "repro_requests_total 3" in text
        # An existing _total suffix is not doubled.
        assert "repro_hits_total 1" in text
        assert "repro_hits_total_total" not in text

    def test_histogram_is_cumulative_with_inf_bucket(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", bounds=[0.01, 0.1])
        for value in (0.005, 0.05, 5.0):
            histogram.observe(value)
        lines = render_prometheus(registry).splitlines()
        bucket_lines = [l for l in lines if l.startswith("repro_lat_bucket")]
        assert bucket_lines == [
            'repro_lat_bucket{le="0.01"} 1',
            'repro_lat_bucket{le="0.1"} 2',
            'repro_lat_bucket{le="+Inf"} 3',
        ]
        assert "repro_lat_count 3" in lines
        sum_line = [l for l in lines if l.startswith("repro_lat_sum")][0]
        assert math.isclose(float(sum_line.split()[1]), 5.055)

    def test_gauges_render_with_gauge_type(self):
        registry = MetricsRegistry()
        text = render_prometheus(
            registry, gauges={"ready": 1.0, "cache.concepts.size": 42}
        )
        assert "# TYPE repro_ready gauge" in text
        assert "repro_ready 1.0" in text
        assert "repro_cache_concepts_size 42.0" in text

    def test_ends_with_newline(self):
        assert render_prometheus(MetricsRegistry()).endswith("\n")

    def test_labeled_families_render_sorted_labels(self):
        text = render_prometheus(
            MetricsRegistry(),
            labeled=[
                {
                    "name": "worker_jobs",
                    "type": "counter",
                    "samples": [({"worker": "0"}, 3.0), ({"worker": "1"}, 1.0)],
                },
                {
                    "name": "worker_busy_seconds",
                    "type": "gauge",
                    "samples": [({"worker": "0"}, 0.25)],
                },
            ],
        )
        assert "# TYPE repro_worker_jobs_total counter" in text
        assert 'repro_worker_jobs_total{worker="0"} 3.0' in text
        assert 'repro_worker_jobs_total{worker="1"} 1.0' in text
        assert "# TYPE repro_worker_busy_seconds gauge" in text
        assert 'repro_worker_busy_seconds{worker="0"} 0.25' in text
        # Gauge families never grow a _total suffix.
        assert "repro_worker_busy_seconds_total" not in text


class TestSnapshotGauges:
    def test_extracts_lifecycle_cache_batcher_traces(self):
        snapshot = {
            "ready": True,
            "healthy": False,
            "uptime_seconds": 12.5,
            "caches": {"concepts": {"size": 10, "hits": 4, "name": "x"}},
            "batcher": {"batches": 3, "name": "link"},
            "traces": {"retained": 2, "sample_rate": 1.0},
        }
        gauges = snapshot_gauges(snapshot)
        assert gauges["ready"] == 1.0
        assert gauges["healthy"] == 0.0
        assert gauges["uptime_seconds"] == 12.5
        assert gauges["cache.concepts.size"] == 10.0
        assert gauges["cache.concepts.hits"] == 4.0
        assert gauges["batcher.batches"] == 3.0
        assert gauges["traces.retained"] == 2.0
        assert "batcher.name" not in gauges

    def test_empty_snapshot(self):
        assert snapshot_gauges({}) == {}

    def test_slo_window_flattens_to_gauges_skipping_none(self):
        snapshot = {
            "slo": {
                "availability": 0.995,
                "error_budget_burn_rate": 5.0,
                "p99_s": 0.012,
                "requests": 200,
                "p99_vs_deadline": None,
            }
        }
        gauges = snapshot_gauges(snapshot)
        assert gauges["slo.availability"] == 0.995
        assert gauges["slo.error_budget_burn_rate"] == 5.0
        assert gauges["slo.p99_s"] == 0.012
        assert gauges["slo.requests"] == 200.0
        # None (deadline disabled) is not a number; it stays JSON-only.
        assert "slo.p99_vs_deadline" not in gauges

    def test_frontend_scalars_become_gauges_but_not_workers(self):
        snapshot = {
            "frontend": {
                "queue_depth": 2,
                "ready": True,
                "shed_policy": "reject_new",
                "workers": [{"worker_id": 0, "jobs": 5}],
            }
        }
        gauges = snapshot_gauges(snapshot)
        assert gauges["frontend.queue_depth"] == 2.0
        assert gauges["frontend.ready"] == 1.0
        # Strings and the per-worker table stay out of the dotted
        # gauges; workers render as labeled series instead.
        assert "frontend.shed_policy" not in gauges
        assert not any(key.startswith("frontend.workers") for key in gauges)


class TestWorkerSeries:
    SNAPSHOT = {
        "frontend": {
            "workers": [
                {"worker_id": 0, "pid": 101, "alive": True, "ready": True,
                 "jobs": 4, "queries": 9, "errors": 0, "respawns": 0,
                 "degraded": 1, "busy_s": 0.5},
                {"worker_id": 1, "pid": 102, "alive": True, "ready": False,
                 "jobs": 2, "queries": 3, "errors": 1, "respawns": 2,
                 "degraded": 0, "busy_s": 0.25},
            ]
        }
    }

    def test_one_family_per_field_with_worker_labels(self):
        families = {f["name"]: f for f in worker_series(self.SNAPSHOT)}
        assert set(families) == {
            "worker_jobs", "worker_queries", "worker_errors",
            "worker_respawns", "worker_degraded", "worker_alive",
            "worker_ready", "worker_busy_seconds",
        }
        jobs = families["worker_jobs"]
        assert jobs["type"] == "counter"
        assert jobs["samples"] == [
            ({"worker": "0"}, 4.0), ({"worker": "1"}, 2.0),
        ]
        ready = families["worker_ready"]
        assert ready["type"] == "gauge"
        assert ready["samples"] == [
            ({"worker": "0"}, 1.0), ({"worker": "1"}, 0.0),
        ]
        busy = families["worker_busy_seconds"]
        assert busy["samples"][0] == ({"worker": "0"}, 0.5)

    def test_no_frontend_or_no_workers_yields_nothing(self):
        assert worker_series({}) == []
        assert worker_series({"frontend": {}}) == []
        assert worker_series({"frontend": {"workers": []}}) == []
