"""Prometheus text exposition: names, counters, histograms, gauges."""

import math

from repro.obs.prom import (
    render_prometheus,
    sanitize_metric_name,
    snapshot_gauges,
)
from repro.serving.metrics import MetricsRegistry


class TestSanitize:
    def test_dots_and_dashes_fold_to_underscores(self):
        assert sanitize_metric_name("phase_seconds.ED") == "phase_seconds_ED"
        assert sanitize_metric_name("a-b c") == "a_b_c"

    def test_digit_prefix_guard(self):
        assert sanitize_metric_name("5xx") == "_5xx"
        assert sanitize_metric_name("") == "_"

    def test_colons_allowed(self):
        assert sanitize_metric_name("ns:metric") == "ns:metric"


class TestRender:
    def test_counters_get_total_suffix_and_type_line(self):
        registry = MetricsRegistry()
        registry.counter("requests").inc(3)
        registry.counter("hits_total").inc(1)
        text = render_prometheus(registry)
        assert "# TYPE repro_requests_total counter" in text
        assert "repro_requests_total 3" in text
        # An existing _total suffix is not doubled.
        assert "repro_hits_total 1" in text
        assert "repro_hits_total_total" not in text

    def test_histogram_is_cumulative_with_inf_bucket(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", bounds=[0.01, 0.1])
        for value in (0.005, 0.05, 5.0):
            histogram.observe(value)
        lines = render_prometheus(registry).splitlines()
        bucket_lines = [l for l in lines if l.startswith("repro_lat_bucket")]
        assert bucket_lines == [
            'repro_lat_bucket{le="0.01"} 1',
            'repro_lat_bucket{le="0.1"} 2',
            'repro_lat_bucket{le="+Inf"} 3',
        ]
        assert "repro_lat_count 3" in lines
        sum_line = [l for l in lines if l.startswith("repro_lat_sum")][0]
        assert math.isclose(float(sum_line.split()[1]), 5.055)

    def test_gauges_render_with_gauge_type(self):
        registry = MetricsRegistry()
        text = render_prometheus(
            registry, gauges={"ready": 1.0, "cache.concepts.size": 42}
        )
        assert "# TYPE repro_ready gauge" in text
        assert "repro_ready 1.0" in text
        assert "repro_cache_concepts_size 42.0" in text

    def test_ends_with_newline(self):
        assert render_prometheus(MetricsRegistry()).endswith("\n")


class TestSnapshotGauges:
    def test_extracts_lifecycle_cache_batcher_traces(self):
        snapshot = {
            "ready": True,
            "healthy": False,
            "uptime_seconds": 12.5,
            "caches": {"concepts": {"size": 10, "hits": 4, "name": "x"}},
            "batcher": {"batches": 3, "name": "link"},
            "traces": {"retained": 2, "sample_rate": 1.0},
        }
        gauges = snapshot_gauges(snapshot)
        assert gauges["ready"] == 1.0
        assert gauges["healthy"] == 0.0
        assert gauges["uptime_seconds"] == 12.5
        assert gauges["cache.concepts.size"] == 10.0
        assert gauges["cache.concepts.hits"] == 4.0
        assert gauges["batcher.batches"] == 3.0
        assert gauges["traces.retained"] == 2.0
        assert "batcher.name" not in gauges

    def test_empty_snapshot(self):
        assert snapshot_gauges({}) == {}
