"""Training run telemetry: JSONL logging, loading, diffing, crashes."""

import json

import numpy as np
import pytest

from repro.obs.runlog import (
    EPOCHS_FILE,
    META_FILE,
    SUMMARY_FILE,
    RunLogger,
    diff_runs,
    list_runs,
    load_run,
    rng_fingerprint,
)
from repro.utils.errors import DataError


def _write_run(root, run_id, losses, completed=True):
    logger = RunLogger(root, run_id=run_id, meta={"seed": 7})
    for epoch, loss in enumerate(losses, start=1):
        logger.log_epoch(
            epoch, mean_loss=loss, tokens=100, seconds=0.5, tokens_per_s=200.0
        )
    if completed:
        logger.finish(epochs=len(losses), final_loss=losses[-1], seconds=1.0)
    else:
        logger.close()
    return logger


class TestRunLogger:
    def test_run_directory_layout(self, tmp_path):
        logger = _write_run(tmp_path, "run-a", [2.0, 1.5])
        assert (logger.path / META_FILE).is_file()
        assert (logger.path / EPOCHS_FILE).is_file()
        assert (logger.path / SUMMARY_FILE).is_file()
        records = [
            json.loads(line)
            for line in (logger.path / EPOCHS_FILE).read_text().splitlines()
        ]
        assert [r["epoch"] for r in records] == [1, 2]
        assert records[1]["mean_loss"] == 1.5

    def test_epochs_survive_without_finish(self, tmp_path):
        _write_run(tmp_path, "run-crash", [3.0], completed=False)
        info = load_run(tmp_path / "run-crash")
        assert not info.completed
        assert info.final_loss == 3.0
        assert info.seconds == pytest.approx(0.5)

    def test_torn_final_line_is_tolerated(self, tmp_path):
        logger = _write_run(tmp_path, "run-torn", [2.0, 1.0], completed=False)
        with open(logger.path / EPOCHS_FILE, "a", encoding="utf-8") as handle:
            handle.write('{"epoch": 3, "mean_loss"')  # the crash artifact
        info = load_run(logger.path)
        assert [r["epoch"] for r in info.epochs] == [1, 2]

    def test_load_rejects_non_run_directory(self, tmp_path):
        with pytest.raises(DataError):
            load_run(tmp_path)

    def test_meta_is_recorded(self, tmp_path):
        logger = _write_run(tmp_path, "run-meta", [1.0])
        info = load_run(logger.path)
        assert info.meta["seed"] == 7
        assert info.meta["run_id"] == "run-meta"


class TestListAndDiff:
    def test_list_runs_sorted_and_filtered(self, tmp_path):
        _write_run(tmp_path, "run-b", [1.0])
        _write_run(tmp_path, "run-a", [2.0])
        (tmp_path / "not-a-run").mkdir()
        runs = list_runs(tmp_path)
        assert [run.run_id for run in runs] == ["run-a", "run-b"]
        assert list_runs(tmp_path / "missing") == []

    def test_diff_runs_epoch_by_epoch(self, tmp_path):
        a = load_run(_write_run(tmp_path, "run-a", [2.0, 1.5, 1.2]).path)
        b = load_run(_write_run(tmp_path, "run-b", [2.1, 1.4]).path)
        report = diff_runs(a, b)
        assert report["common_epochs"] == 2
        assert report["per_epoch"][0]["delta"] == pytest.approx(0.1)
        assert report["per_epoch"][1]["delta"] == pytest.approx(-0.1)
        assert report["final_loss_delta"] == pytest.approx(1.4 - 1.2)
        assert report["tokens_per_s_a"] == pytest.approx(200.0)


class TestRngFingerprint:
    def test_same_state_same_fingerprint(self):
        a = np.random.default_rng(42)
        b = np.random.default_rng(42)
        assert rng_fingerprint(a) == rng_fingerprint(b)
        assert len(rng_fingerprint(a)) == 12

    def test_consumed_stream_changes_fingerprint(self):
        rng = np.random.default_rng(42)
        before = rng_fingerprint(rng)
        rng.random(10)
        assert rng_fingerprint(rng) != before
