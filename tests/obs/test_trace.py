"""Span tracer: nesting, tags/events, sampling, bounds, threads."""

import threading

import pytest

from repro.obs.trace import (
    MAX_EVENTS_PER_SPAN,
    MAX_SPANS_PER_TRACE,
    NOOP_SPAN,
    Tracer,
    attach,
    current_request_id,
    current_span,
    format_trace,
    span,
    span_event,
    start_span,
)


def _spans_by_name(trace_dict):
    return {s["name"]: s for s in trace_dict["spans"]}


class TestSpanTree:
    def test_nested_spans_record_parentage(self):
        tracer = Tracer()
        with tracer.start_trace("root", request_id="req-1") as root:
            with span("child") as child:
                with span("grandchild"):
                    pass
            assert child.parent_id == root.span_id
        trace_dict = tracer.find("req-1")
        by_name = _spans_by_name(trace_dict)
        assert by_name["child"]["parent_id"] == by_name["root"]["span_id"]
        assert (
            by_name["grandchild"]["parent_id"] == by_name["child"]["span_id"]
        )
        assert by_name["root"]["parent_id"] is None

    def test_tags_and_events_land_in_the_record(self):
        tracer = Tracer()
        with tracer.start_trace("root", request_id="req-2", k=10):
            with span("work", phase="ED") as sp:
                sp.set_tag("candidates", 7)
                sp.add_event("fault.fired", site="x", action="raise")
        by_name = _spans_by_name(tracer.find("req-2"))
        work = by_name["work"]
        assert work["tags"] == {"phase": "ED", "candidates": 7}
        assert work["events"][0]["name"] == "fault.fired"
        assert work["events"][0]["attrs"] == {"site": "x", "action": "raise"}
        assert by_name["root"]["tags"] == {"k": 10}

    def test_exception_tags_error_and_still_finishes(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.start_trace("root", request_id="req-3"):
                raise ValueError("boom")
        root = _spans_by_name(tracer.find("req-3"))["root"]
        assert root["tags"]["error"] == "ValueError: boom"

    def test_current_span_and_request_id_follow_context(self):
        tracer = Tracer()
        assert current_span() is None
        assert current_request_id() is None
        with tracer.start_trace("root", request_id="req-4") as root:
            assert current_span() is root
            assert current_request_id() == "req-4"
            with span("child") as child:
                assert current_span() is child
            assert current_span() is root
        assert current_span() is None

    def test_span_event_on_current_span(self):
        tracer = Tracer()
        span_event("ignored")  # no trace active: silently dropped
        with tracer.start_trace("root", request_id="req-5"):
            with span("inner"):
                span_event("marker", detail=1)
        inner = _spans_by_name(tracer.find("req-5"))["inner"]
        assert [event["name"] for event in inner["events"]] == ["marker"]


class TestNoopPath:
    def test_span_without_trace_is_the_shared_noop(self):
        assert span("anything") is NOOP_SPAN
        assert start_span("anything") is NOOP_SPAN
        assert not NOOP_SPAN.is_recording
        # Full surface, no errors, no state.
        with span("x") as sp:
            sp.set_tag("a", 1).add_event("e")
        sp.end()

    def test_rate_zero_roots_are_noops(self):
        tracer = Tracer(sample_rate=0.0)
        for _ in range(5):
            assert tracer.start_trace("root") is NOOP_SPAN
        assert tracer.stats()["sampled"] == 0
        assert tracer.stats()["started"] == 5

    def test_attach_none_and_noop_do_not_install_context(self):
        with attach(None) as sp:
            assert sp is NOOP_SPAN
            assert current_span() is None
        with attach(NOOP_SPAN):
            assert current_span() is None


class TestSampling:
    def test_quarter_rate_keeps_exactly_every_fourth(self):
        tracer = Tracer(sample_rate=0.25)
        recorded = []
        for index in range(12):
            root = tracer.start_trace("root")
            recorded.append(root.is_recording)
            root.end()
        assert recorded == [False, False, False, True] * 3
        assert tracer.stats()["sampled"] == 3

    def test_ring_buffer_evicts_oldest(self):
        tracer = Tracer(capacity=2)
        for index in range(4):
            tracer.start_trace("root", request_id=f"req-{index}").end()
        retained = [t["request_id"] for t in tracer.traces()]
        assert retained == ["req-3", "req-2"]
        assert tracer.find("req-0") is None
        stats = tracer.stats()
        assert stats["finished"] == 4
        assert stats["retained"] == 2

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            Tracer(sample_rate=1.5)
        with pytest.raises(ValueError):
            Tracer(capacity=0)


class TestBounds:
    def test_span_cap_drops_but_counts(self):
        tracer = Tracer()
        root = tracer.start_trace("root", request_id="req-cap")
        with root:
            for _ in range(MAX_SPANS_PER_TRACE + 10):
                span("s").end()
        trace_dict = tracer.find("req-cap")
        assert len(trace_dict["spans"]) == MAX_SPANS_PER_TRACE
        # +11: the 10 overflow children plus the root itself.
        assert trace_dict["dropped_spans"] == 11

    def test_event_cap(self):
        tracer = Tracer()
        with tracer.start_trace("root", request_id="req-ev") as root:
            for index in range(MAX_EVENTS_PER_SPAN + 5):
                root.add_event(f"e{index}")
        root_span = _spans_by_name(tracer.find("req-ev"))["root"]
        assert len(root_span["events"]) == MAX_EVENTS_PER_SPAN


class TestCrossThread:
    def test_attach_propagates_span_to_worker_thread(self):
        tracer = Tracer()
        root = tracer.start_trace("root", request_id="req-worker")
        seen = {}

        def worker():
            # A fresh thread has no ambient context...
            seen["before"] = current_span()
            with attach(root):
                seen["inside"] = current_request_id()
                with span("worker.step"):
                    pass
            seen["after"] = current_span()

        thread = threading.Thread(target=worker)
        with root:
            thread.start()
            thread.join()
        assert seen["before"] is None
        assert seen["inside"] == "req-worker"
        assert seen["after"] is None
        by_name = _spans_by_name(tracer.find("req-worker"))
        assert by_name["worker.step"]["parent_id"] == by_name["root"]["span_id"]

    def test_concurrent_children_from_many_threads(self):
        tracer = Tracer()
        root = tracer.start_trace("root", request_id="req-many")
        barrier = threading.Barrier(8)

        def worker(index):
            barrier.wait()
            with attach(root):
                for step in range(20):
                    with span(f"t{index}.s{step}"):
                        pass

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        root.end()
        trace_dict = tracer.find("req-many")
        names = {s["name"] for s in trace_dict["spans"]}
        assert len(names) == 8 * 20 + 1
        span_ids = [s["span_id"] for s in trace_dict["spans"]]
        assert len(span_ids) == len(set(span_ids))


class TestFormatTrace:
    def test_renders_indented_tree_with_tags_and_events(self):
        tracer = Tracer()
        with tracer.start_trace("http.link", request_id="req-fmt"):
            with span("linker.retrieve", phase="CR", k=10) as sp:
                sp.add_event("fault.fired", site="x")
        text = format_trace(tracer.find("req-fmt"))
        lines = text.splitlines()
        assert "request=req-fmt" in lines[0]
        assert lines[1].startswith("  http.link ")
        assert lines[2].startswith("    linker.retrieve ")
        assert "{k=10, phase=CR}" in lines[2]
        assert lines[3].strip() == "! fault.fired {site=x}"
