"""Structured JSON logging: shape, trace correlation, idempotence."""

import io
import json
import logging

from repro.obs.logjson import JsonLogFormatter, configure_json_logging
from repro.obs.trace import Tracer
from repro.utils.logging import get_logger


def _capture_logger(name="logjson_test"):
    stream = io.StringIO()
    handler = configure_json_logging(stream=stream)
    logger = get_logger(name)
    return stream, handler, logger


def _teardown(handler):
    logging.getLogger("repro").removeHandler(handler)


def test_lines_are_json_with_level_logger_message():
    stream, handler, logger = _capture_logger()
    try:
        logger.info("hello %s", "world")
        record = json.loads(stream.getvalue().strip())
        assert record["message"] == "hello world"
        assert record["level"] == "INFO"
        assert record["logger"] == "repro.logjson_test"
        assert record["ts"].endswith("+00:00")
        assert "request_id" not in record
    finally:
        _teardown(handler)


def test_active_trace_ids_are_attached():
    stream, handler, logger = _capture_logger()
    tracer = Tracer()
    try:
        with tracer.start_trace("root", request_id="req-log") as root:
            logger.warning("inside")
        record = json.loads(stream.getvalue().strip())
        assert record["request_id"] == "req-log"
        assert record["trace_id"] == root.trace_id
        assert record["span_id"] == root.span_id
    finally:
        _teardown(handler)


def test_extra_fields_pass_through():
    stream, handler, logger = _capture_logger()
    try:
        logger.info("counted", extra={"queries": 3, "degraded": 0})
        record = json.loads(stream.getvalue().strip())
        assert record["queries"] == 3
        assert record["degraded"] == 0
    finally:
        _teardown(handler)


def test_exceptions_are_formatted():
    stream, handler, logger = _capture_logger()
    try:
        try:
            raise RuntimeError("boom")
        except RuntimeError:
            logger.exception("failed")
        record = json.loads(stream.getvalue().strip())
        assert record["level"] == "ERROR"
        assert "RuntimeError: boom" in record["exc_info"]
    finally:
        _teardown(handler)


def test_reconfigure_replaces_previous_handler():
    first_stream = io.StringIO()
    first = configure_json_logging(stream=first_stream)
    second_stream = io.StringIO()
    second = configure_json_logging(stream=second_stream)
    try:
        root = logging.getLogger("repro")
        json_handlers = [
            h for h in root.handlers if getattr(h, "_repro_json", False)
        ]
        assert json_handlers == [second]
        get_logger("logjson_test").info("once")
        assert first_stream.getvalue() == ""
        assert "once" in second_stream.getvalue()
    finally:
        _teardown(first)
        _teardown(second)


def test_formatter_is_single_line_json():
    formatter = JsonLogFormatter()
    record = logging.LogRecord(
        "repro.x", logging.INFO, __file__, 1, "multi\nline", None, None
    )
    text = formatter.format(record)
    assert "\n" not in text
    assert json.loads(text)["message"] == "multi\nline"
