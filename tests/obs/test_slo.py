"""Rolling SLO window: availability, burn rate, p99 vs deadline."""

import pytest

from repro.obs.slo import SloTracker


class TestConstruction:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SloTracker(window_s=0.5)
        with pytest.raises(ValueError):
            SloTracker(availability_objective=0.0)
        with pytest.raises(ValueError):
            SloTracker(availability_objective=1.5)
        with pytest.raises(ValueError):
            SloTracker(deadline_ms=-1.0)

    def test_empty_window_is_fully_available(self):
        report = SloTracker().snapshot(now=100.0)
        assert report["requests"] == 0
        assert report["availability"] == 1.0
        assert report["error_budget_burn_rate"] == 0.0
        assert report["p99_s"] == 0.0
        assert report["p99_vs_deadline"] is None


class TestAvailability:
    def test_outcomes_partition_the_window(self):
        slo = SloTracker(window_s=60.0)
        for _ in range(7):
            slo.record(0.01, outcome="ok", now=100.0)
        slo.record(0.0, outcome="shed", now=100.0)
        slo.record(0.0, outcome="error", now=101.0)
        report = slo.snapshot(now=101.0)
        assert report["requests"] == 9
        assert report["ok"] == 7
        assert report["shed"] == 1
        assert report["errors"] == 1
        assert report["availability"] == pytest.approx(7 / 9)

    def test_burn_rate_scales_failure_fraction_by_allowance(self):
        # 1% failures against a 99.9% objective burns budget at 10x.
        slo = SloTracker(window_s=60.0, availability_objective=0.999)
        for _ in range(99):
            slo.record(0.01, outcome="ok", now=50.0)
        slo.record(0.0, outcome="error", now=50.0)
        report = slo.snapshot(now=50.0)
        assert report["error_budget_burn_rate"] == pytest.approx(10.0)

    def test_old_buckets_age_out_of_the_window(self):
        slo = SloTracker(window_s=10.0)
        slo.record(0.0, outcome="error", now=100.0)
        slo.record(0.01, outcome="ok", now=108.0)
        # At t=108 both are live; at t=115 only the ok remains.
        assert slo.snapshot(now=108.0)["requests"] == 2
        late = slo.snapshot(now=115.0)
        assert late["requests"] == 1
        assert late["errors"] == 0
        assert late["availability"] == 1.0

    def test_bucket_slot_reuse_resets_stale_counts(self):
        # Same ring slot (epochs 100 and 110 with a 10 s window) must
        # not accumulate across generations.
        slo = SloTracker(window_s=10.0)
        for _ in range(5):
            slo.record(0.01, outcome="ok", now=100.0)
        slo.record(0.01, outcome="ok", now=110.0)
        report = slo.snapshot(now=110.0)
        assert report["ok"] == 1


class TestLatency:
    def test_p99_tracks_the_slow_tail(self):
        slo = SloTracker(window_s=60.0)
        for _ in range(99):
            slo.record(0.001, outcome="ok", now=10.0)
        slo.record(1.0, outcome="ok", now=10.0)
        report = slo.snapshot(now=10.0)
        # 100 samples: rank 99 lands in the 1 ms region, not the 1 s
        # outlier; push one more slow sample and the p99 jumps.
        assert report["p99_s"] < 0.01
        slo.record(1.0, outcome="ok", now=10.0)
        assert slo.snapshot(now=10.0)["p99_s"] >= 1.0

    def test_only_ok_requests_contribute_latency(self):
        slo = SloTracker(window_s=60.0)
        slo.record(0.0, outcome="shed", now=10.0)
        slo.record(0.0, outcome="error", now=10.0)
        slo.record(0.5, outcome="ok", now=10.0)
        assert slo.snapshot(now=10.0)["p99_s"] >= 0.5

    def test_deadline_accounting(self):
        slo = SloTracker(window_s=60.0, deadline_ms=100.0)
        for _ in range(3):
            slo.record(0.01, outcome="ok", now=10.0)
        slo.record(0.25, outcome="ok", now=10.0)
        report = slo.snapshot(now=10.0)
        assert report["over_deadline"] == 1
        assert report["deadline_hit_ratio"] == pytest.approx(0.25)
        assert report["p99_vs_deadline"] == pytest.approx(
            report["p99_s"] * 1000.0 / 100.0
        )

    def test_deadline_zero_disables_deadline_fields(self):
        slo = SloTracker(window_s=60.0, deadline_ms=0.0)
        slo.record(5.0, outcome="ok", now=10.0)
        report = slo.snapshot(now=10.0)
        assert report["over_deadline"] == 0
        assert report["deadline_hit_ratio"] == 0.0
        assert report["p99_vs_deadline"] is None
