"""End-to-end CLI tests (generate -> train -> link -> evaluate)."""

import json

import pytest

from repro.cli import build_parser, main


@pytest.mark.slow
class TestCliLifecycle:
    @pytest.fixture(scope="class")
    def workspace(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("cli")
        data = root / "data"
        model = root / "model"
        exit_code = main(
            [
                "generate", "--dataset", "hospital-x-like",
                "--out", str(data), "--seed", "9", "--queries", "60",
            ]
        )
        assert exit_code == 0
        exit_code = main(
            [
                "train", "--data", str(data), "--out", str(model),
                "--dim", "10", "--epochs", "2", "--cbow-epochs", "3",
                "--seed", "4",
            ]
        )
        assert exit_code == 0
        return data, model

    def test_generate_artifacts(self, workspace):
        data, _ = workspace
        assert (data / "ontology.json").exists()
        assert (data / "kb.json").exists()
        lines = (data / "queries.jsonl").read_text().splitlines()
        assert len(lines) == 60
        record = json.loads(lines[0])
        assert {"text", "cid", "channels"} <= set(record)

    def test_train_artifacts(self, workspace):
        _, model = workspace
        for name in ("config.json", "vocab.json", "model.npz",
                     "ontology.json", "kb.json", "vectors.npz"):
            assert (model / name).exists(), name

    def test_link_prints_candidates(self, workspace, capsys):
        _, model = workspace
        exit_code = main(
            ["link", "--model", str(model), "--top", "2", "anemia"]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "query: 'anemia'" in captured

    def test_evaluate_reports_metrics(self, workspace, capsys):
        data, model = workspace
        exit_code = main(
            [
                "evaluate", "--model", str(model), "--data", str(data),
                "--limit", "20",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "accuracy=" in captured and "mrr=" in captured

    def test_verify_pipeline_ok(self, workspace, capsys):
        _, model = workspace
        exit_code = main(["verify-pipeline", "--model", str(model)])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "all checksums match" in captured
        assert '"seed": 4' in captured  # training provenance surfaced

    def test_trace_prints_span_tree(self, workspace, capsys):
        _, model = workspace
        exit_code = main(["trace", "--model", str(model), "--k", "5", "anemia"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert captured.startswith("trace ")
        for fragment in (
            "cli.link",
            "linker.rewrite",
            "linker.retrieve",
            "linker.phase2",
            "linker.rerank",
            "phase=OR",
            "phase=CR",
            "phase=ED",
            "phase=RT",
        ):
            assert fragment in captured, fragment

    def test_train_run_dir_feeds_runs_cli(self, workspace, tmp_path, capsys):
        data, _ = workspace
        runs_root = tmp_path / "runs"
        exit_code = main(
            [
                "train", "--data", str(data), "--out", str(tmp_path / "m"),
                "--dim", "10", "--epochs", "2", "--cbow-epochs", "3",
                "--seed", "4", "--run-dir", str(runs_root),
                "--run-id", "telemetry-run",
            ]
        )
        assert exit_code == 0
        assert (runs_root / "telemetry-run" / "epochs.jsonl").is_file()
        capsys.readouterr()
        assert main(["runs", "--dir", str(runs_root)]) == 0
        listing = capsys.readouterr().out
        assert "telemetry-run" in listing
        assert "complete" in listing

    def test_verify_pipeline_detects_corruption(self, workspace, capsys):
        _, model = workspace
        target = model / "vocab.json"
        original = target.read_bytes()
        target.write_bytes(original[:-4])
        try:
            exit_code = main(["verify-pipeline", "--model", str(model)])
        finally:
            target.write_bytes(original)
        assert exit_code == 1
        assert "vocab.json" in capsys.readouterr().err


@pytest.mark.faults
class TestCliCrashResume:
    """The full drill: train with checkpoints, crash, resume, verify."""

    def test_train_crash_resume_verify(self, tmp_path, capsys):
        from repro.utils.faults import (
            FaultSpec,
            InjectedFault,
            fault_injection,
        )

        data = tmp_path / "data"
        assert main(
            ["generate", "--dataset", "hospital-x-like",
             "--out", str(data), "--seed", "9", "--queries", "40"]
        ) == 0
        train_args = [
            "train", "--data", str(data), "--dim", "10", "--epochs", "4",
            "--cbow-epochs", "3", "--seed", "4",
            "--checkpoint-every", "1",
        ]

        # Uninterrupted baseline.
        baseline = tmp_path / "baseline"
        assert main(
            train_args
            + ["--out", str(baseline),
               "--checkpoint-dir", str(tmp_path / "ckpt-base")]
        ) == 0

        # Crash after epoch 2, then resume from the latest checkpoint.
        crashed_ckpts = tmp_path / "ckpt-crash"
        with fault_injection(
            {"trainer.epoch_end": FaultSpec(after=1, times=1)}
        ):
            with pytest.raises(InjectedFault):
                main(
                    train_args
                    + ["--out", str(tmp_path / "crashed"),
                       "--checkpoint-dir", str(crashed_ckpts)]
                )
        resumed = tmp_path / "resumed"
        assert main(
            train_args
            + ["--out", str(resumed),
               "--checkpoint-dir", str(crashed_ckpts),
               "--resume", str(crashed_ckpts)]
        ) == 0

        # Bit-for-bit: the resumed pipeline's weights equal the baseline's.
        import numpy as np

        with np.load(baseline / "model.npz") as a, np.load(
            resumed / "model.npz"
        ) as b:
            assert sorted(a.files) == sorted(b.files)
            for name in a.files:
                np.testing.assert_array_equal(a[name], b[name])

        # The resumed deployment verifies and records its provenance.
        capsys.readouterr()
        assert main(["verify-pipeline", "--model", str(resumed)]) == 0
        out = capsys.readouterr().out
        assert "all checksums match" in out
        assert "resumed_from" in out


class TestRunsCli:
    @staticmethod
    def _write_run(root, run_id, losses):
        from repro.obs.runlog import RunLogger

        logger = RunLogger(root, run_id=run_id, meta={"seed": 7})
        for epoch, loss in enumerate(losses, start=1):
            logger.log_epoch(
                epoch, mean_loss=loss, tokens=80, seconds=0.4,
                tokens_per_s=200.0,
            )
        logger.finish(epochs=len(losses), final_loss=losses[-1], seconds=0.8)

    def test_lists_runs_as_a_table(self, tmp_path, capsys):
        self._write_run(tmp_path, "run-a", [2.0, 1.5])
        self._write_run(tmp_path, "run-b", [2.2, 1.4])
        assert main(["runs", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "run-a" in out and "run-b" in out
        assert "1.5000" in out and "1.4000" in out

    def test_diff_prints_per_epoch_deltas(self, tmp_path, capsys):
        self._write_run(tmp_path, "run-a", [2.0, 1.5])
        self._write_run(tmp_path, "run-b", [2.2, 1.4])
        assert main(
            ["runs", "--dir", str(tmp_path), "--diff", "run-a", "run-b"]
        ) == 0
        out = capsys.readouterr().out
        assert "epoch   1" in out
        assert "delta=+0.2000" in out
        assert "delta=-0.1000" in out
        assert "final loss delta (B-A): -0.1000" in out

    def test_json_output_round_trips(self, tmp_path, capsys):
        self._write_run(tmp_path, "run-a", [2.0])
        assert main(["runs", "--dir", str(tmp_path), "--json"]) == 0
        (record,) = json.loads(capsys.readouterr().out)
        assert record["run_id"] == "run-a"
        assert record["completed"] is True
        assert record["final_loss"] == 2.0

    def test_empty_root_is_not_an_error(self, tmp_path, capsys):
        assert main(["runs", "--dir", str(tmp_path / "none")]) == 0
        assert "no runs under" in capsys.readouterr().out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve", "--model", "m/"])
        assert args.func.__name__ == "_cmd_serve"
        assert args.host == "127.0.0.1"
        assert args.port == 8080
        assert args.cache_size == 4096
        assert args.max_batch_size == 8
        assert args.batch_wait_ms == 2.0
        assert args.request_timeout == 30.0
        assert args.no_warm is False

    def test_serve_overrides(self):
        args = build_parser().parse_args(
            ["serve", "--model", "m/", "--port", "0", "--cache-size", "0",
             "--max-batch-size", "32", "--batch-wait-ms", "0.5", "--no-warm"]
        )
        assert args.port == 0
        assert args.cache_size == 0
        assert args.max_batch_size == 32
        assert args.batch_wait_ms == 0.5
        assert args.no_warm is True

    def test_serve_requires_model(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])

    def test_train_checkpoint_flags(self):
        args = build_parser().parse_args(
            ["train", "--data", "d/", "--out", "m/",
             "--checkpoint-dir", "c/", "--checkpoint-every", "2",
             "--resume", "c/epoch-0002"]
        )
        assert args.checkpoint_dir == "c/"
        assert args.checkpoint_every == 2
        assert args.resume == "c/epoch-0002"

    def test_train_checkpoint_defaults_off(self):
        args = build_parser().parse_args(
            ["train", "--data", "d/", "--out", "m/"]
        )
        assert args.checkpoint_dir is None
        assert args.checkpoint_every == 0
        assert args.resume is None

    def test_serve_trace_flags(self):
        args = build_parser().parse_args(["serve", "--model", "m/"])
        assert args.trace_sample == 1.0
        assert args.trace_buffer == 64
        assert args.log_json is False
        args = build_parser().parse_args(
            ["serve", "--model", "m/", "--trace-sample", "0.25",
             "--trace-buffer", "8", "--log-json"]
        )
        assert args.trace_sample == 0.25
        assert args.trace_buffer == 8
        assert args.log_json is True

    def test_train_run_flags(self):
        args = build_parser().parse_args(["train", "--data", "d/", "--out", "m/"])
        assert args.run_dir is None and args.run_id is None
        args = build_parser().parse_args(
            ["train", "--data", "d/", "--out", "m/",
             "--run-dir", "runs/", "--run-id", "r1"]
        )
        assert args.run_dir == "runs/"
        assert args.run_id == "r1"

    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace", "--model", "m/", "ckd 5"])
        assert args.func.__name__ == "_cmd_trace"
        assert args.k == 20
        assert args.queries == ["ckd 5"]

    def test_trace_file_mode_needs_no_model(self):
        args = build_parser().parse_args(["trace", "--file", "t.json"])
        assert args.func.__name__ == "_cmd_trace"
        assert args.model is None
        assert args.file == "t.json"
        assert args.queries == []

    def test_top_defaults_and_overrides(self):
        args = build_parser().parse_args(["top"])
        assert args.func.__name__ == "_cmd_top"
        assert args.url == "http://127.0.0.1:8080"
        assert args.timeout == 5.0
        assert args.json is False
        args = build_parser().parse_args(
            ["top", "--url", "http://10.0.0.1:9", "--timeout", "1.5",
             "--json"]
        )
        assert args.url == "http://10.0.0.1:9"
        assert args.timeout == 1.5
        assert args.json is True

    def test_serve_slo_flags(self):
        args = build_parser().parse_args(["serve", "--model", "m/"])
        assert args.slo_window == 60.0
        assert args.slo_availability == 0.999
        args = build_parser().parse_args(
            ["serve", "--model", "m/", "--slo-window", "30",
             "--slo-availability", "0.99"]
        )
        assert args.slo_window == 30.0
        assert args.slo_availability == 0.99

    def test_runs_requires_dir(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["runs"])

    def test_verify_pipeline_requires_a_target(self, capsys):
        # --model became optional when --artifact was added; a bare
        # invocation is rejected at runtime instead of by argparse.
        args = build_parser().parse_args(["verify-pipeline"])
        assert args.model is None and args.artifact is None
        assert main(["verify-pipeline"]) == 2
        assert "--model" in capsys.readouterr().err

    def test_unknown_dataset_is_clean_error(self, tmp_path, capsys):
        exit_code = main(
            ["generate", "--dataset", "nope", "--out", str(tmp_path / "x")]
        )
        assert exit_code == 1
        assert "unknown dataset" in capsys.readouterr().err


def _stitched_trace_dict(request_id="req-off"):
    """A captured stitched trace (the /v1/traces payload shape)."""
    return {
        "trace_id": "abc123", "request_id": request_id, "name": "http.link",
        "duration_s": 0.012, "dropped_spans": 0,
        "spans": [
            {"span_id": "s1", "parent_id": None, "name": "http.link",
             "start_s": 0.0, "duration_s": 0.012, "tags": {"status": 200},
             "events": []},
            {"span_id": "s2", "parent_id": "s1", "name": "service.request",
             "start_s": 0.001, "duration_s": 0.010,
             "tags": {"query": "ckd stage 5"}, "events": []},
            {"span_id": "s3", "parent_id": "s2", "name": "frontend.queue",
             "start_s": 0.001, "duration_s": 0.002, "tags": {},
             "events": []},
            {"span_id": "s4", "parent_id": "s2", "name": "frontend.dispatch",
             "start_s": 0.003, "duration_s": 0.008, "tags": {"worker": 0},
             "events": []},
            {"span_id": "s5", "parent_id": "s4", "name": "worker.link",
             "start_s": 0.004, "duration_s": 0.006,
             "tags": {"pid": 777, "worker_id": 0}, "events": []},
        ],
    }


class TestTraceFilePrinter:
    def test_renders_captured_stitched_traces(self, tmp_path, capsys):
        capture = tmp_path / "traces.json"
        capture.write_text(json.dumps({"traces": [_stitched_trace_dict()]}))
        assert main(["trace", "--file", str(capture)]) == 0
        out = capsys.readouterr().out
        # One tree spanning processes: queue wait in place, worker
        # subtree showing its process of origin.
        assert "request=req-off" in out
        assert "frontend.queue" in out
        assert "[pid 777]" in out
        assert "worker.link" in out

    def test_accepts_a_single_trace_dict(self, tmp_path, capsys):
        capture = tmp_path / "one.json"
        capture.write_text(json.dumps(_stitched_trace_dict("req-single")))
        assert main(["trace", "--file", str(capture)]) == 0
        assert "request=req-single" in capsys.readouterr().out

    def test_missing_file_is_exit_1(self, tmp_path, capsys):
        assert main(["trace", "--file", str(tmp_path / "nope.json")]) == 1
        assert "cannot read" in capsys.readouterr().err

    def test_empty_capture_is_exit_1(self, tmp_path, capsys):
        capture = tmp_path / "empty.json"
        capture.write_text(json.dumps({"traces": []}))
        assert main(["trace", "--file", str(capture)]) == 1
        assert "no traces" in capsys.readouterr().err

    def test_trace_without_model_or_file_is_exit_2(self, capsys):
        assert main(["trace"]) == 2
        assert "--file" in capsys.readouterr().err


class TestTopCli:
    SNAPSHOT = {
        "ready": True,
        "uptime_seconds": 125.0,
        "slo": {
            "window_s": 60.0, "availability": 0.985,
            "availability_objective": 0.999,
            "error_budget_burn_rate": 15.0, "p99_s": 0.042,
            "ok": 197, "shed": 2, "errors": 1,
            "deadline_ms": 100.0, "deadline_hit_ratio": 0.05,
        },
        "frontend": {
            "queue_depth": 3, "queue_bound": 256,
            "shed_policy": "reject_new", "inflight_jobs": 2,
            "shed_queue_full": 2, "shed_dropped_oldest": 0,
            "shed_deadline": 0, "worker_deaths": 1, "redispatches": 1,
            "workers": [
                {"worker_id": 0, "pid": 101, "ready": True, "jobs": 40,
                 "queries": 90, "errors": 0, "degraded": 2,
                 "respawns": 0, "busy_s": 1.5},
                {"worker_id": 1, "pid": 102, "ready": False, "jobs": 38,
                 "queries": 80, "errors": 1, "degraded": 0,
                 "respawns": 1, "busy_s": 1.25},
            ],
        },
    }

    def test_format_top_renders_slo_queue_and_worker_table(self):
        from repro.cli import format_top

        lines = format_top(self.SNAPSHOT, "http://127.0.0.1:8080")
        text = "\n".join(lines)
        assert "uptime 125s, ready" in text
        assert "availability 98.50%" in text
        assert "objective 99.90%" in text
        assert "burn 15.00x" in text
        assert "p99 42.0ms" in text
        assert "deadline 100ms (late 5.0%)" in text
        assert "197 ok / 2 shed / 1 errors" in text
        assert "queue depth 3/256 (reject_new)" in text
        assert "deaths=1 redispatches=1" in text
        # One row per worker slot, respawns and readiness visible.
        worker_rows = [l for l in lines if l.startswith(("0", "1"))]
        assert len(worker_rows) == 2
        assert "yes" in worker_rows[0] and "101" in worker_rows[0]
        assert "no" in worker_rows[1] and "102" in worker_rows[1]

    def test_format_top_without_frontend_is_slo_only(self):
        from repro.cli import format_top

        snapshot = {"ready": True, "uptime_seconds": 5.0,
                    "slo": {"window_s": 60.0, "availability": 1.0,
                            "availability_objective": 0.999,
                            "error_budget_burn_rate": 0.0, "p99_s": 0.001,
                            "ok": 3, "shed": 0, "errors": 0,
                            "deadline_ms": 0.0}}
        lines = format_top(snapshot)
        assert not any("queue depth" in line for line in lines)
        assert any("availability 100.00%" in line for line in lines)

    def test_unreachable_server_is_exit_1(self, capsys):
        assert main(
            ["top", "--url", "http://127.0.0.1:1", "--timeout", "0.2"]
        ) == 1
        assert "cannot fetch" in capsys.readouterr().err
