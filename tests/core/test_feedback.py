"""Tests for the feedback controller (paper Appendix A)."""

import pytest

from repro.core.feedback import FeedbackController
from repro.core.linker import LinkResult, RankedConcept
from repro.kb.knowledge_base import KnowledgeBase, TrainingPair
from repro.utils.errors import ConfigurationError, DataError


def make_result(query, scored):
    """Build a LinkResult with given (cid, log_prob) pairs."""
    ranked = tuple(
        RankedConcept(cid=cid, log_prob=log_prob, keyword_score=0.5)
        for cid, log_prob in scored
    )
    return LinkResult(
        query=query,
        tokens=tuple(query.split()),
        rewritten_tokens=tuple(query.split()),
        rewrites=(),
        ranked=ranked,
    )


@pytest.fixture
def controller(figure1_ontology):
    kb = KnowledgeBase(figure1_ontology)
    return FeedbackController(
        kb, loss_threshold=10.0, std_threshold=0.5, retrain_after=2
    )


class TestUncertainty:
    def test_confident_result(self, controller):
        result = make_result("q", [("D50.0", -2.0), ("D53.0", -9.0)])
        assessment = controller.assess(result)
        assert not assessment.uncertain

    def test_high_loss_pools(self, controller):
        # Appendix A: high Loss = -log p means inaccurate linkage risk.
        result = make_result("q", [("D50.0", -15.0), ("D53.0", -30.0)])
        assert controller.assess(result).uncertain

    def test_low_std_pools(self, controller):
        # Close losses mean indistinguishable candidates.
        result = make_result("q", [("D50.0", -5.0), ("D53.0", -5.1)])
        assessment = controller.assess(result)
        assert assessment.uncertain
        assert "std" in assessment.reason

    def test_empty_result_pools(self, controller):
        assert controller.assess(make_result("q", [])).uncertain

    def test_single_candidate_no_std_signal(self, controller):
        result = make_result("q", [("D50.0", -3.0)])
        assert not controller.assess(result).uncertain


class TestPooling:
    def test_submit_pools_uncertain_only(self, controller):
        assert controller.submit(make_result("bad", [("D50.0", -20.0)]))
        assert not controller.submit(
            make_result("good", [("D50.0", -1.0), ("D53.0", -8.0)])
        )
        assert len(controller.pool) == 1
        assert controller.pool[0].query == "bad"

    def test_pool_limit(self, figure1_ontology):
        kb = KnowledgeBase(figure1_ontology)
        controller = FeedbackController(kb, pool_limit=1)
        controller.submit(make_result("one", [("D50.0", -20.0)]))
        assert not controller.submit(make_result("two", [("D50.0", -20.0)]))


class TestResolution:
    def test_resolve_appends_alias(self, controller):
        controller.submit(make_result("breast lump for investigation", [("D50.0", -20.0)]))
        pair = controller.resolve("breast lump for investigation", "N18.5")
        assert pair.cid == "N18.5"
        assert "breast lump for investigation" in controller.kb.aliases_of("N18.5")
        assert controller.pool == ()  # removed from pool

    def test_resolve_unknown_concept(self, controller):
        with pytest.raises(KeyError):
            controller.resolve("query", "Z99")

    def test_resolve_empty_query(self, controller):
        with pytest.raises(DataError):
            controller.resolve(",;", "N18.5")

    def test_retrain_triggered_at_threshold(self, figure1_ontology):
        kb = KnowledgeBase(figure1_ontology)
        received = []
        controller = FeedbackController(
            kb, retrain_after=2, retrain_hook=lambda pairs: received.append(list(pairs))
        )
        controller.resolve("ckd five", "N18.5")
        assert controller.retrain_count == 0
        controller.resolve("renal failure terminal", "N18.5")
        assert controller.retrain_count == 1
        assert len(received) == 1
        assert len(received[0]) == 2
        assert controller.pending_pairs == ()

    def test_flush(self, figure1_ontology):
        kb = KnowledgeBase(figure1_ontology)
        received = []
        controller = FeedbackController(
            kb, retrain_after=100, retrain_hook=lambda pairs: received.append(len(pairs))
        )
        controller.resolve("ckd five", "N18.5")
        assert controller.flush() == 1
        assert received == [1]
        assert controller.flush() == 0


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(loss_threshold=0.0),
            dict(std_threshold=-1.0),
            dict(retrain_after=0),
            dict(pool_limit=0),
        ],
    )
    def test_invalid_config(self, figure1_ontology, kwargs):
        kb = KnowledgeBase(figure1_ontology)
        with pytest.raises(ConfigurationError):
            FeedbackController(kb, **kwargs)
