"""Integration-leaning tests for the trainer and the two-phase linker,
on the paper's Figure 1/3 fixture data (fast: tiny model)."""

import pytest

from repro.core.config import ComAidConfig, LinkerConfig, TrainingConfig
from repro.core.linker import NeuralConceptLinker
from repro.core.trainer import ComAidTrainer
from repro.kb.knowledge_base import KnowledgeBase, TrainingPair
from repro.utils.errors import DataError, NotFittedError


@pytest.fixture(scope="module")
def trained(request):
    # Build module-scoped fixtures manually to avoid retraining per test.
    from tests.conftest import figure1_ontology, figure3_kb  # noqa: F401

    from repro.kb.knowledge_base import KnowledgeBase
    from repro.ontology.concept import Concept
    from repro.ontology.ontology import Ontology

    ontology = Ontology()
    ontology.add(Concept("D50", "iron deficiency anemia"))
    ontology.add(
        Concept("D50.0", "iron deficiency anemia secondary to blood loss"),
        parent_cid="D50",
    )
    ontology.add(Concept("D53", "other nutritional anemias"))
    ontology.add(Concept("D53.0", "protein deficiency anemia"), parent_cid="D53")
    ontology.add(Concept("D53.2", "scorbutic anemia"), parent_cid="D53")
    ontology.add(Concept("N18", "chronic kidney disease"))
    ontology.add(
        Concept("N18.5", "chronic kidney disease, stage 5"), parent_cid="N18"
    )
    ontology.add(
        Concept("N18.9", "chronic kidney disease, unspecified"), parent_cid="N18"
    )
    ontology.add(Concept("R10", "abdominal and pelvic pain"))
    ontology.add(Concept("R10.0", "acute abdomen"), parent_cid="R10")
    ontology.add(Concept("R10.9", "unspecified abdominal pain"), parent_cid="R10")

    kb = KnowledgeBase(ontology)
    kb.add_alias("D50.0", "anemia, chronic blood loss")
    kb.add_alias("D50.0", "hemorrhagic anemia")
    kb.add_alias("D53.0", "amino acid deficiency anemia")
    kb.add_alias("D53.2", "vitamin c deficiency anemia")
    kb.add_alias("N18.5", "ckd stage 5")
    kb.add_alias("N18.5", "end stage renal disease")
    kb.add_alias("N18.9", "chronic renal disease")
    kb.add_alias("R10.0", "acute abdominal syndrome")
    kb.add_alias("R10.0", "pain abdomen")
    kb.add_alias("R10.9", "abdomen pain unspecified")

    trainer = ComAidTrainer(
        ComAidConfig(dim=12, beta=2),
        TrainingConfig(epochs=30, batch_size=4, optimizer="adagrad", learning_rate=0.2),
        rng=7,
    )
    model = trainer.fit(kb)
    return ontology, kb, trainer, model


class TestTrainer:
    def test_loss_decreases(self, trained):
        _, _, trainer, _ = trained
        losses = trainer.history.epoch_losses
        assert losses[-1] < losses[0]

    def test_history_counts_examples(self, trained):
        _, kb, trainer, _ = trained
        assert trainer.history.examples == kb.alias_count()

    def test_empty_kb_rejected(self, figure1_ontology):
        trainer = ComAidTrainer(ComAidConfig(dim=4, beta=1), TrainingConfig(epochs=1))
        with pytest.raises(DataError):
            trainer.fit(KnowledgeBase(figure1_ontology))

    def test_continue_training_requires_fit(self):
        trainer = ComAidTrainer(ComAidConfig(dim=4, beta=1))
        with pytest.raises(NotFittedError):
            trainer.continue_training(
                [TrainingPair(cid="X", canonical="a", alias="b")]
            )

    def test_continue_training_lowers_new_pair_loss(self, trained):
        ontology, kb, trainer, model = trained
        pair = TrainingPair(
            cid="D53.2",
            canonical="scorbutic anemia",
            alias="scurvy related anemia",
        )
        from repro.ontology.paths import structural_context
        from repro.text.tokenize import tokenize

        def loss():
            concept_ids = model.words_to_ids(tokenize(pair.canonical))
            ancestors = [
                model.words_to_ids(list(c.words))
                for c in structural_context(ontology, "D53.2", 2)[1:]
            ]
            return model.pair_loss(
                concept_ids, ancestors, model.words_to_ids(tokenize(pair.alias))
            )

        before = loss()
        trainer.continue_training([pair], epochs=3)
        assert loss() < before

    def test_learned_alias_scores_above_cross_concept(self, trained):
        ontology, kb, trainer, model = trained
        from repro.ontology.paths import structural_context

        def score(cid, query_words):
            concept = ontology.get(cid)
            ancestors = [
                model.words_to_ids(list(c.words))
                for c in structural_context(ontology, cid, 2)[1:]
            ]
            return model.log_prob(
                model.words_to_ids(list(concept.words)),
                ancestors,
                model.words_to_ids(query_words),
            )

        query = ["ckd", "stage", "5"]
        assert score("N18.5", query) > score("D53.2", query)
        assert score("N18.5", query) > score("R10.0", query)


class TestLinker:
    def test_links_paper_queries(self, trained):
        ontology, kb, trainer, model = trained
        linker = NeuralConceptLinker(
            model, ontology, LinkerConfig(k=5), kb=kb
        )
        result = linker.link("ckd stage 5")
        assert result.top is not None
        assert result.top.cid == "N18.5"

    def test_timing_covers_all_phases(self, trained):
        ontology, kb, trainer, model = trained
        linker = NeuralConceptLinker(model, ontology, LinkerConfig(k=5), kb=kb)
        result = linker.link("anemia blood loss")
        assert set(result.timing.seconds) == {"OR", "CR", "ED", "RT"}

    def test_rank_of(self, trained):
        ontology, kb, trainer, model = trained
        linker = NeuralConceptLinker(model, ontology, LinkerConfig(k=5), kb=kb)
        result = linker.link("vitamin c deficiency anemia")
        rank = result.rank_of("D53.2")
        assert rank is not None and rank <= 3
        assert result.rank_of("ZZZ") is None

    def test_no_match_returns_empty(self, trained):
        ontology, kb, trainer, model = trained
        linker = NeuralConceptLinker(model, ontology, LinkerConfig(k=5), kb=kb)
        result = linker.link("qqqqq zzzzz")
        assert result.ranked == ()
        assert result.top is None

    def test_warm_cache_counts(self, trained):
        ontology, kb, trainer, model = trained
        linker = NeuralConceptLinker(model, ontology, LinkerConfig(k=5), kb=kb)
        cached = linker.warm_cache()
        assert cached == len(ontology.fine_grained())

    def test_invalidate_cache(self, trained):
        ontology, kb, trainer, model = trained
        linker = NeuralConceptLinker(model, ontology, LinkerConfig(k=5), kb=kb)
        linker.warm_cache()
        linker.invalidate_cache()
        assert linker.link("anemia").ranked  # still works after reset

    def test_fully_covered_query_scores_zero(self, trained):
        ontology, kb, trainer, model = trained
        linker = NeuralConceptLinker(model, ontology, LinkerConfig(k=5), kb=kb)
        result = linker.link("scorbutic anemia")
        top = result.top
        assert top is not None
        assert top.cid == "D53.2"
        assert top.log_prob == 0.0  # all words shared -> removed

    def test_k_override(self, trained):
        ontology, kb, trainer, model = trained
        linker = NeuralConceptLinker(model, ontology, LinkerConfig(k=5), kb=kb)
        result = linker.link("anemia", k=2)
        assert len(result.ranked) <= 2
