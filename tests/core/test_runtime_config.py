"""RuntimeConfig: the one path from raw mappings to validated configs."""

import json

import pytest

from repro.core.config import (
    ComAidConfig,
    LinkerConfig,
    RuntimeConfig,
    ServingConfig,
    TrainingConfig,
)
from repro.utils.errors import ConfigurationError


class TestRoundTrip:
    def test_defaults_round_trip(self):
        runtime = RuntimeConfig()
        assert RuntimeConfig.from_dict(runtime.to_dict()) == runtime

    def test_overrides_round_trip(self):
        runtime = RuntimeConfig(
            model=ComAidConfig(dim=12, beta=3),
            training=TrainingConfig(epochs=2, optimizer="sgd"),
            linker=LinkerConfig(k=7, artifact_dir="a/", shards=2),
            serving=ServingConfig(port=0, max_batch_size=4),
        )
        payload = runtime.to_dict()
        assert payload["model"]["dim"] == 12
        assert payload["linker"]["shards"] == 2
        assert RuntimeConfig.from_dict(payload) == runtime

    def test_to_dict_is_json_serialisable(self):
        json.dumps(RuntimeConfig().to_dict())

    def test_absent_sections_take_defaults(self):
        runtime = RuntimeConfig.from_dict({"linker": {"k": 9}})
        assert runtime.linker.k == 9
        assert runtime.model == ComAidConfig()
        assert runtime.serving == ServingConfig()

    def test_dataclass_instances_pass_through(self):
        linker = LinkerConfig(k=3)
        runtime = RuntimeConfig.from_dict({"linker": linker})
        assert runtime.linker is linker

    def test_nested_retrieval_round_trips(self):
        runtime = RuntimeConfig(
            linker=LinkerConfig(
                artifact_dir="a/",
                shards="auto",
                retrieval={"mode": "hybrid", "fusion_method": "rrf"},
            )
        )
        payload = runtime.to_dict()
        assert payload["linker"]["retrieval"]["mode"] == "hybrid"
        assert payload["linker"]["shards"] == "auto"
        json.dumps(payload)
        restored = RuntimeConfig.from_dict(payload)
        assert restored == runtime
        assert restored.linker.retrieval.fusion_method == "rrf"


class TestRejection:
    def test_unknown_section_is_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown config section"):
            RuntimeConfig.from_dict({"linkr": {"k": 5}})

    def test_unknown_key_is_rejected_with_the_offender_named(self):
        with pytest.raises(ConfigurationError, match=r"\['kk'\]"):
            RuntimeConfig.from_dict({"linker": {"kk": 5}})

    def test_non_mapping_payload_is_rejected(self):
        with pytest.raises(ConfigurationError, match="mapping"):
            RuntimeConfig.from_dict(["linker"])

    def test_non_mapping_section_is_rejected(self):
        with pytest.raises(ConfigurationError, match="must be a mapping"):
            RuntimeConfig.from_dict({"linker": 5})

    def test_value_validation_is_delegated_to_the_section(self):
        with pytest.raises(ConfigurationError, match="k must be >= 1"):
            RuntimeConfig.from_dict({"linker": {"k": 0}})

    def test_sharding_without_artifact_is_rejected(self):
        with pytest.raises(ConfigurationError, match="artifact_dir"):
            RuntimeConfig.from_dict({"linker": {"shards": 2}})


class TestFromFile:
    def test_reads_a_json_file(self, tmp_path):
        path = tmp_path / "config.json"
        path.write_text(
            json.dumps({"serving": {"port": 0}, "linker": {"k": 4}}),
            encoding="utf-8",
        )
        runtime = RuntimeConfig.from_file(path)
        assert runtime.serving.port == 0
        assert runtime.linker.k == 4

    def test_missing_file_is_a_configuration_error(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            RuntimeConfig.from_file(tmp_path / "nope.json")

    def test_invalid_json_is_a_configuration_error(self, tmp_path):
        path = tmp_path / "config.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            RuntimeConfig.from_file(path)


class TestReplaceSection:
    def test_layers_overrides_onto_one_section(self):
        base = RuntimeConfig.from_dict({"linker": {"k": 4}})
        layered = base.replace_section("linker", k=9)
        assert layered.linker.k == 9
        assert base.linker.k == 4  # frozen: the original is untouched
        assert layered.serving == base.serving

    def test_unknown_section_is_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown config section"):
            RuntimeConfig().replace_section("linkr", k=9)

    def test_unknown_key_is_rejected(self):
        with pytest.raises(ConfigurationError, match=r"\['kk'\]"):
            RuntimeConfig().replace_section("linker", kk=9)
