"""Tests for whole-pipeline persistence."""

import pytest

from repro.core.config import ComAidConfig, LinkerConfig, TrainingConfig
from repro.core.linker import NeuralConceptLinker
from repro.core.persistence import load_pipeline, save_pipeline
from repro.core.trainer import ComAidTrainer
from repro.utils.errors import DataError


@pytest.fixture(scope="module")
def trained_stack():
    import tests.conftest  # reuse fixture builders indirectly

    from repro.kb.knowledge_base import KnowledgeBase
    from repro.ontology.concept import Concept
    from repro.ontology.ontology import Ontology

    ontology = Ontology()
    ontology.add(Concept("D50", "iron deficiency anemia"))
    ontology.add(
        Concept("D50.0", "iron deficiency anemia secondary to blood loss"),
        parent_cid="D50",
    )
    ontology.add(Concept("N18", "chronic kidney disease"))
    ontology.add(
        Concept("N18.5", "chronic kidney disease, stage 5"), parent_cid="N18"
    )
    kb = KnowledgeBase(ontology)
    kb.add_alias("D50.0", "anemia chronic blood loss")
    kb.add_alias("D50.0", "hemorrhagic anemia")
    kb.add_alias("N18.5", "ckd stage 5")
    kb.add_alias("N18.5", "end stage renal disease")
    trainer = ComAidTrainer(
        ComAidConfig(dim=8, beta=1),
        TrainingConfig(epochs=6, batch_size=4),
        rng=3,
    )
    model = trainer.fit(kb)
    return ontology, kb, model


class TestRoundTrip:
    def test_rankings_identical_after_reload(self, trained_stack, tmp_path):
        ontology, kb, model = trained_stack
        original = NeuralConceptLinker(
            model, ontology, LinkerConfig(k=3), kb=kb
        )
        directory = tmp_path / "pipeline"
        save_pipeline(directory, model, ontology, kb=kb)
        loaded_model, loaded_ontology, loaded_kb, vectors, loaded_linker = (
            load_pipeline(directory, LinkerConfig(k=3))
        )
        assert vectors is None  # none were saved
        assert loaded_kb is not None
        for query in ("ckd stage 5", "anemia blood loss", "renal disease"):
            before = [(c.cid, round(c.log_prob, 8)) for c in original.link(query).ranked]
            after = [
                (c.cid, round(c.log_prob, 8))
                for c in loaded_linker.link(query).ranked
            ]
            assert before == after, query

    def test_vectors_roundtrip(self, trained_stack, tmp_path):
        import numpy as np

        from repro.embeddings.similarity import WordVectors

        ontology, kb, model = trained_stack
        vectors = WordVectors(
            ["ckd", "chronic", "kidney"],
            np.eye(3),
            tag_words=["ckd"],
        )
        directory = tmp_path / "with-vectors"
        save_pipeline(directory, model, ontology, kb=kb, word_vectors=vectors)
        _, _, _, loaded_vectors, _ = load_pipeline(directory)
        assert loaded_vectors is not None
        assert loaded_vectors.tag_words == {"ckd"}
        np.testing.assert_array_equal(
            loaded_vectors.vector_of("chronic"), vectors.vector_of("chronic")
        )

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(DataError):
            load_pipeline(tmp_path / "nothing-here")
