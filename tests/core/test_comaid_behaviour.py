"""Behavioural tests of the COM-AID model (beyond gradient checks)."""

import numpy as np
import pytest

from repro.core.comaid import ComAid
from repro.core.config import ComAidConfig
from repro.nn.serialization import load_module, save_module
from repro.text.vocab import Vocabulary
from repro.utils.errors import ConfigurationError, DataError


@pytest.fixture
def vocab():
    vocabulary = Vocabulary()
    vocabulary.add_all(
        ["iron", "deficiency", "anemia", "chronic", "kidney", "disease",
         "blood", "loss", "stage", "5"]
    )
    return vocabulary


@pytest.fixture
def model(vocab):
    return ComAid(ComAidConfig(dim=8, beta=1), vocab, rng=0)


class TestConstruction:
    def test_requires_specials(self):
        plain = Vocabulary(include_specials=False)
        plain.add("word")
        with pytest.raises(ConfigurationError):
            ComAid(ComAidConfig(dim=4), plain, rng=0)

    def test_composite_width_tracks_attention_flags(self, vocab):
        full = ComAid(ComAidConfig(dim=8, beta=1), vocab, rng=0)
        no_struct = ComAid(
            ComAidConfig(dim=8, beta=1, use_structure_attention=False), vocab, rng=0
        )
        bare = ComAid(
            ComAidConfig(
                dim=8, beta=1,
                use_text_attention=False, use_structure_attention=False,
            ),
            vocab, rng=0,
        )
        assert full.composite.in_dim == 24
        assert no_struct.composite.in_dim == 16
        assert bare.composite.in_dim == 8

    def test_parameter_count_reasonable(self, model, vocab):
        # embedding (V*d) + 2 LSTMs (2 * (4d*d + 4d*d + 4d)) +
        # composite (d*3d + d) + output (V*d + V)
        V, d = len(vocab), 8
        expected = V * d + 2 * (8 * d * d + 4 * d) + (3 * d * d + d) + (V * d + V)
        assert model.parameter_count() == expected


class TestEncoding:
    def test_concept_representation_shape(self, model, vocab):
        ids = vocab.encode(["iron", "deficiency", "anemia"])
        representation = model.concept_representation(ids)
        assert representation.shape == (8,)

    def test_empty_concept_rejected(self, model):
        with pytest.raises(DataError):
            model.encode_concept([])

    def test_different_concepts_encode_differently(self, model, vocab):
        a = model.concept_representation(vocab.encode(["iron", "anemia"]))
        b = model.concept_representation(vocab.encode(["kidney", "disease"]))
        assert not np.allclose(a, b)


class TestScoring:
    def test_log_prob_is_negative_loss(self, model, vocab):
        concept = vocab.encode(["iron", "deficiency", "anemia"])
        ancestors = [vocab.encode(["iron", "anemia"])]
        query = vocab.encode(["anemia", "blood", "loss"])
        assert model.log_prob(concept, ancestors, query) == pytest.approx(
            -model.pair_loss(concept, ancestors, query)
        )

    def test_empty_query_rejected(self, model, vocab):
        concept = vocab.encode(["iron", "anemia"])
        with pytest.raises(DataError):
            model.forward(concept, [vocab.encode(["iron"])], [])

    def test_wrong_ancestor_count_rejected(self, model, vocab):
        concept = vocab.encode(["iron", "anemia"])
        query = vocab.encode(["blood"])
        with pytest.raises(DataError):
            model.forward(concept, [], query)  # beta=1 needs 1 ancestor

    def test_score_with_encodings_matches_forward(self, model, vocab):
        concept_ids = vocab.encode(["iron", "deficiency", "anemia"])
        ancestor_ids = [vocab.encode(["iron", "anemia"])]
        query = vocab.encode(["blood", "loss"])
        direct = model.log_prob(concept_ids, ancestor_ids, query)
        encoding = model.encode_concept(concept_ids, keep_caches=False)
        ancestors = [
            model.encode_concept(ids, keep_caches=False) for ids in ancestor_ids
        ]
        cached = model.score_with_encodings(encoding, ancestors, query)
        assert cached == pytest.approx(direct)

    def test_longer_unlikely_query_scores_lower(self, model, vocab):
        concept = vocab.encode(["iron", "anemia"])
        ancestors = [vocab.encode(["iron"])]
        short = model.log_prob(concept, ancestors, vocab.encode(["blood"]))
        long = model.log_prob(
            concept, ancestors, vocab.encode(["blood", "loss", "stage", "5"])
        )
        assert long < short  # each extra factor multiplies p < 1


class TestPersistence:
    def test_save_load_preserves_scores(self, model, vocab, tmp_path):
        concept = vocab.encode(["iron", "deficiency", "anemia"])
        ancestors = [vocab.encode(["iron", "anemia"])]
        query = vocab.encode(["blood", "loss"])
        before = model.log_prob(concept, ancestors, query)
        path = tmp_path / "comaid.npz"
        save_module(model, path)
        clone = ComAid(ComAidConfig(dim=8, beta=1), vocab, rng=123)
        load_module(clone, path)
        after = clone.log_prob(concept, ancestors, query)
        assert after == pytest.approx(before)
