"""Persistence failure paths: truncation, corruption, crash-mid-save."""

import json

import pytest

from repro.core.config import ComAidConfig, LinkerConfig, TrainingConfig
from repro.core.persistence import (
    load_pipeline,
    save_pipeline,
    verify_pipeline,
)
from repro.core.trainer import ComAidTrainer
from repro.kb.knowledge_base import KnowledgeBase
from repro.ontology.concept import Concept
from repro.ontology.ontology import Ontology
from repro.utils.errors import DataError
from repro.utils.faults import FaultSpec, InjectedFault, fault_injection


@pytest.fixture(scope="module")
def trained_stack():
    ontology = Ontology()
    ontology.add(Concept("D50", "iron deficiency anemia"))
    ontology.add(
        Concept("D50.0", "iron deficiency anemia secondary to blood loss"),
        parent_cid="D50",
    )
    ontology.add(Concept("N18", "chronic kidney disease"))
    ontology.add(
        Concept("N18.5", "chronic kidney disease, stage 5"), parent_cid="N18"
    )
    kb = KnowledgeBase(ontology)
    kb.add_alias("D50.0", "anemia chronic blood loss")
    kb.add_alias("N18.5", "ckd stage 5")
    kb.add_alias("N18.5", "end stage renal disease")
    trainer = ComAidTrainer(
        ComAidConfig(dim=8, beta=1), TrainingConfig(epochs=3, batch_size=4), rng=3
    )
    model = trainer.fit(kb)
    return ontology, kb, model


@pytest.fixture
def saved_dir(trained_stack, tmp_path):
    ontology, kb, model = trained_stack
    directory = tmp_path / "pipeline"
    save_pipeline(directory, model, ontology, kb=kb)
    return directory


class TestVerifyPipeline:
    def test_clean_save_verifies(self, saved_dir):
        manifest = verify_pipeline(saved_dir)
        assert manifest["format"] == 1
        assert "model.npz" in manifest["files"]

    def test_metadata_embedded(self, trained_stack, tmp_path):
        ontology, kb, model = trained_stack
        directory = tmp_path / "meta"
        save_pipeline(
            directory, model, ontology, kb=kb,
            metadata={"resumed_from": "epoch-0003", "seed": 3},
        )
        manifest = verify_pipeline(directory)
        assert manifest["metadata"]["resumed_from"] == "epoch-0003"
        *_, linker = load_pipeline(directory)
        assert linker.pipeline_metadata["seed"] == 3

    def test_truncated_model_detected(self, saved_dir):
        target = saved_dir / "model.npz"
        target.write_bytes(target.read_bytes()[:-20])
        with pytest.raises(DataError, match="model.npz"):
            verify_pipeline(saved_dir)

    def test_bitflip_detected(self, saved_dir):
        target = saved_dir / "vocab.json"
        raw = bytearray(target.read_bytes())
        raw[len(raw) // 2] ^= 0x20  # same length, different bytes
        target.write_bytes(bytes(raw))
        with pytest.raises(DataError, match="vocab.json"):
            verify_pipeline(saved_dir)

    def test_missing_required_artifact_detected(self, saved_dir):
        (saved_dir / "ontology.json").unlink()
        with pytest.raises(DataError, match="ontology.json"):
            verify_pipeline(saved_dir)

    def test_manifestless_directory_rejected(self, saved_dir):
        (saved_dir / "manifest.json").unlink()
        with pytest.raises(DataError, match="manifest.json"):
            verify_pipeline(saved_dir)


class TestLoadFailurePaths:
    def test_truncated_model_npz_named(self, saved_dir):
        target = saved_dir / "model.npz"
        target.write_bytes(target.read_bytes()[: len(target.read_bytes()) // 2])
        with pytest.raises(DataError, match="model.npz"):
            load_pipeline(saved_dir)

    def test_malformed_vocab_json_named(self, saved_dir):
        (saved_dir / "vocab.json").write_text("{oops", encoding="utf-8")
        with pytest.raises(DataError, match="vocab.json"):
            load_pipeline(saved_dir)

    def test_missing_kb_json_named(self, saved_dir):
        # kb.json is optional in general but this manifest lists it, so
        # its absence is corruption, not a KB-less deployment.
        (saved_dir / "kb.json").unlink()
        with pytest.raises(DataError, match="kb.json"):
            load_pipeline(saved_dir)

    def test_malformed_config_named(self, saved_dir):
        (saved_dir / "config.json").write_text(
            json.dumps({"dim": 8, "unknown_field": True}), encoding="utf-8"
        )
        with pytest.raises(DataError, match="config.json"):
            load_pipeline(saved_dir)

    def test_verify_flag_checks_before_deserialising(self, saved_dir):
        target = saved_dir / "model.npz"
        raw = bytearray(target.read_bytes())
        raw[-1] ^= 0xFF
        target.write_bytes(bytes(raw))
        with pytest.raises(DataError, match="model.npz"):
            load_pipeline(saved_dir, verify=True)

    def test_missing_directory_still_clear(self, tmp_path):
        with pytest.raises(DataError, match="saved pipeline"):
            load_pipeline(tmp_path / "nothing-here")


class TestCrashMidSave:
    @pytest.mark.parametrize(
        "site",
        [
            "persistence.write.model.npz",
            "persistence.write.kb.json",
            "persistence.write.manifest.json",
            "persistence.commit",
        ],
    )
    def test_crash_never_corrupts_existing_deployment(
        self, trained_stack, saved_dir, site
    ):
        ontology, kb, model = trained_stack
        before = {
            entry.name: entry.read_bytes()
            for entry in sorted(saved_dir.iterdir())
        }
        with fault_injection({site: FaultSpec(action="raise")}):
            with pytest.raises(InjectedFault):
                save_pipeline(saved_dir, model, ontology, kb=kb)
        after = {
            entry.name: entry.read_bytes()
            for entry in sorted(saved_dir.iterdir())
        }
        assert after == before, f"deployment changed after crash at {site}"
        verify_pipeline(saved_dir)
        load_pipeline(saved_dir, LinkerConfig(k=3))

    def test_io_error_crash_leaves_no_staging(self, trained_stack, tmp_path):
        ontology, kb, model = trained_stack
        target = tmp_path / "fresh"
        with fault_injection(
            {"persistence.write.ontology.json": FaultSpec(action="io_error")}
        ):
            with pytest.raises(OSError):
                save_pipeline(target, model, ontology, kb=kb)
        assert not target.exists()
        assert not list(tmp_path.glob("fresh.staging-*"))

    def test_save_over_crashed_save_succeeds(self, trained_stack, saved_dir):
        ontology, kb, model = trained_stack
        with fault_injection(
            {"persistence.commit": FaultSpec(action="raise")}
        ):
            with pytest.raises(InjectedFault):
                save_pipeline(saved_dir, model, ontology, kb=kb)
        save_pipeline(saved_dir, model, ontology, kb=kb)
        verify_pipeline(saved_dir)
