"""Tests for Phase-I candidate generation and query rewriting."""

import numpy as np
import pytest

from repro.core.candidates import CandidateGenerator
from repro.core.rewriter import QueryRewriter
from repro.embeddings.similarity import WordVectors
from repro.utils.errors import ConfigurationError


class TestCandidateGenerator:
    def test_indexes_only_fine_grained(self, figure1_ontology):
        generator = CandidateGenerator(figure1_ontology)
        assert set(generator.indexed_cids) == {
            "D50.0", "D53.0", "D53.2", "N18.5", "N18.9", "R10.0", "R10.9",
        }

    def test_retrieves_by_description(self, figure1_ontology):
        generator = CandidateGenerator(figure1_ontology)
        hits = generator.generate(["scorbutic", "anemia"], k=3)
        assert hits[0][0] == "D53.2"

    def test_aliases_improve_recall(self, figure1_ontology, figure3_kb):
        # "ckd" appears only in the N18.5 alias, never in a canonical
        # description — indexing aliases is what makes it retrievable.
        without = CandidateGenerator(figure1_ontology)
        with_aliases = CandidateGenerator(figure1_ontology, kb=figure3_kb)
        assert without.generate(["ckd"], 5) == []
        assert any(
            cid == "N18.5" for cid, _ in with_aliases.generate(["ckd"], 5)
        )

    def test_restrict_to(self, figure1_ontology):
        generator = CandidateGenerator(
            figure1_ontology, restrict_to=["D50.0", "D53.2"]
        )
        assert set(generator.indexed_cids) == {"D50.0", "D53.2"}

    def test_omega_is_description_vocabulary(self, figure1_ontology):
        generator = CandidateGenerator(figure1_ontology)
        assert "anemia" in generator.omega
        assert "ckd" not in generator.omega

    def test_empty_restriction_rejected(self, figure1_ontology):
        with pytest.raises(ConfigurationError):
            CandidateGenerator(figure1_ontology, restrict_to=[])

    def test_postings_examined_positive(self, figure1_ontology):
        generator = CandidateGenerator(figure1_ontology)
        assert generator.postings_examined(["anemia"]) > 0


def rewriter_vectors():
    """Vectors where 'dm' ~ 'diabetes'-ish: here 'ckd' ~ 'chronic'."""
    words = ["chronic", "kidney", "disease", "anemia", "ckd", "junkword", "n18"]
    matrix = np.array(
        [
            [1.0, 0.0, 0.0],
            [0.0, 1.0, 0.0],
            [0.0, 0.0, 1.0],
            [-1.0, 0.0, 0.0],
            [0.95, 0.1, 0.0],   # ckd ~ chronic
            [0.1, 0.1, 0.1],    # junkword ~ nothing strongly
            [0.9, 0.2, 0.0],    # tag word
        ]
    )
    return WordVectors(words, matrix, tag_words=["n18"])


class TestQueryRewriter:
    def omega(self):
        return {"chronic", "kidney", "disease", "anemia", "stage"}

    def test_in_omega_kept(self):
        rewriter = QueryRewriter(self.omega(), rewriter_vectors())
        tokens, applied = rewriter.rewrite(["chronic", "kidney"])
        assert tokens == ["chronic", "kidney"]
        assert applied == []

    def test_numeric_kept(self):
        rewriter = QueryRewriter(self.omega(), rewriter_vectors())
        tokens, _ = rewriter.rewrite(["5", "75%"])
        assert tokens == ["5", "75%"]

    def test_embedding_rewrite(self):
        rewriter = QueryRewriter(self.omega(), rewriter_vectors())
        tokens, applied = rewriter.rewrite(["ckd"])
        assert tokens == ["chronic"]
        assert applied[0].via == "embedding"

    def test_similarity_gate_keeps_junk(self):
        rewriter = QueryRewriter(
            self.omega(), rewriter_vectors(), min_similarity=0.6
        )
        tokens, applied = rewriter.rewrite(["junkword"])
        assert tokens == ["junkword"]
        assert applied == []

    def test_edit_distance_typo_repair(self):
        # Paper Section 5: "neuropaty" -> "neuropathy" style repair;
        # here "kidny" -> "kidney" (distance 1, in omega).
        rewriter = QueryRewriter(self.omega(), rewriter_vectors())
        tokens, applied = rewriter.rewrite(["kidny"])
        assert tokens == ["kidney"]
        assert applied[0].via == "edit+embedding"

    def test_edit_repair_disabled(self):
        rewriter = QueryRewriter(
            self.omega(), rewriter_vectors(), edit_distance_max=0
        )
        tokens, _ = rewriter.rewrite(["kidny"])
        assert tokens == ["kidny"]

    def test_works_without_vectors(self):
        rewriter = QueryRewriter(self.omega(), word_vectors=None)
        tokens, applied = rewriter.rewrite(["kidny", "unknownword"])
        assert tokens[0] == "kidney"
        assert tokens[1] == "unknownword"

    def test_empty_omega_rejected(self):
        with pytest.raises(ConfigurationError):
            QueryRewriter(set())

    def test_invalid_similarity(self):
        with pytest.raises(ConfigurationError):
            QueryRewriter(self.omega(), min_similarity=1.5)
