"""Bounded-LRU behaviour of the linker's encoding caches.

The heavy trained-model fixtures live in ``tests/serving/conftest.py``
(shared with the serving-layer tests); here we exercise the cache
semantics the serving subsystem relies on: bounded size, observable
counters, preserved ``invalidate_cache``/``warm_cache`` behaviour, and
identical rankings whatever the capacity.
"""

import threading

import pytest

from repro.utils.errors import ConfigurationError

from tests.serving.conftest import make_linker, trained_pipeline  # noqa: F401


class TestBoundedCaches:
    def test_default_capacity_comes_from_config(self, make_linker):
        linker = make_linker()
        encoding_stats, ancestor_stats = linker.cache_stats()
        assert encoding_stats.capacity == 4096
        assert ancestor_stats.capacity == 4096

    def test_zero_config_means_unbounded(self, make_linker):
        linker = make_linker(encoding_cache_size=0)
        encoding_stats, _ = linker.cache_stats()
        assert encoding_stats.capacity is None

    def test_negative_capacity_rejected(self, make_linker):
        with pytest.raises(ConfigurationError):
            make_linker(encoding_cache_size=-1)

    def test_warm_cache_respects_capacity(self, make_linker):
        linker = make_linker(encoding_cache_size=2)
        warmed = linker.warm_cache()
        # Seven indexed leaves flow through, only two survive eviction.
        assert warmed == 2
        encoding_stats, _ = linker.cache_stats()
        assert encoding_stats.size == 2
        assert encoding_stats.evictions == 5

    def test_warm_cache_full_capacity_counts_all_leaves(
        self, make_linker, trained_pipeline
    ):
        ontology, _, _ = trained_pipeline
        linker = make_linker()
        assert linker.warm_cache() == len(ontology.fine_grained())

    def test_eviction_is_observable_during_linking(self, make_linker):
        linker = make_linker(encoding_cache_size=1)
        linker.link("ckd stage 5")
        linker.link("vitamin c deficiency anemia")
        encoding_stats, _ = linker.cache_stats()
        assert encoding_stats.size == 1
        assert encoding_stats.evictions >= 1
        assert encoding_stats.misses >= 2

    def test_warm_then_link_hits_cache(self, make_linker):
        linker = make_linker()
        linker.warm_cache()
        before = linker.cache_stats()[0]
        linker.link("ckd stage 5")
        after = linker.cache_stats()[0]
        assert after.hits > before.hits
        assert after.misses == before.misses

    def test_invalidate_cache_empties_and_still_links(self, make_linker):
        linker = make_linker()
        linker.warm_cache()
        linker.invalidate_cache()
        encoding_stats, ancestor_stats = linker.cache_stats()
        assert encoding_stats.size == 0
        assert ancestor_stats.size == 0
        assert linker.link("anemia").ranked

    def test_tiny_capacity_does_not_change_rankings(self, make_linker):
        roomy = make_linker()
        cramped = make_linker(encoding_cache_size=1)
        for query in ("ckd stage 5", "anemia blood loss", "acute abdomen"):
            expected = [(c.cid, c.log_prob) for c in roomy.link(query).ranked]
            actual = [(c.cid, c.log_prob) for c in cramped.link(query).ranked]
            assert actual == expected


class TestLinkBatch:
    def test_batch_matches_sequential(self, make_linker):
        sequential = make_linker()
        batched = make_linker()
        queries = ["ckd stage 5", "anemia blood loss", "scorbutic anemia"]
        expected = [
            [(c.cid, c.log_prob) for c in sequential.link(q).ranked]
            for q in queries
        ]
        results = batched.link_batch(queries)
        actual = [[(c.cid, c.log_prob) for c in r.ranked] for r in results]
        assert actual == expected

    def test_batch_amortises_encodings(self, make_linker):
        linker = make_linker()
        # The same query twice: the second pays zero encoding misses.
        linker.link_batch(["ckd stage 5", "ckd stage 5"])
        encoding_stats, _ = linker.cache_stats()
        assert encoding_stats.hits >= 1

    def test_per_query_k(self, make_linker):
        linker = make_linker()
        wide, narrow = linker.link_batch(["anemia", "anemia"], k=[5, 1])
        assert len(narrow.ranked) == 1
        assert len(wide.ranked) >= len(narrow.ranked)
        assert wide.ranked[0] == narrow.ranked[0]

    def test_k_length_mismatch_rejected(self, make_linker):
        with pytest.raises(ConfigurationError):
            make_linker().link_batch(["a", "b"], k=[1])

    def test_empty_batch(self, make_linker):
        assert make_linker().link_batch([]) == []

    def test_batch_timing_has_all_phases(self, make_linker):
        results = make_linker().link_batch(["ckd stage 5"])
        assert set(results[0].timing.seconds) == {"OR", "CR", "ED", "RT"}


class TestThreadSafety:
    def test_concurrent_links_are_deterministic(self, make_linker):
        """Direct concurrent link() calls (no batcher) agree with
        sequential results — the caches are the only shared state."""
        linker = make_linker()
        queries = ["ckd stage 5", "anemia blood loss", "acute abdomen pain"]
        expected = {
            query: [(c.cid, c.log_prob) for c in make_linker().link(query).ranked]
            for query in queries
        }
        failures = []

        def worker(query):
            try:
                for _ in range(5):
                    got = [(c.cid, c.log_prob) for c in linker.link(query).ranked]
                    assert got == expected[query]
            except BaseException as error:  # pragma: no cover - failure path
                failures.append((query, error))

        threads = [
            threading.Thread(target=worker, args=(query,))
            for query in queries * 4
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures
