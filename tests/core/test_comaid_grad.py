"""End-to-end finite-difference gradient check of COM-AID.

Verifies the whole composed backward pass — decoder softmax, composite
layer, both attentions, decoder BPTT, encoder BPTT (including ancestor
encoders and the shared embedding) — against central differences, for
every ablation variant.
"""

import numpy as np
import pytest

from repro.core.comaid import ComAid
from repro.core.config import ComAidConfig
from repro.text.vocab import Vocabulary


def build_model(use_text, use_structure, dim=6, beta=2, seed=0):
    vocab = Vocabulary()
    vocab.add_all(
        ["iron", "deficiency", "anemia", "chronic", "kidney", "disease",
         "stage", "blood", "loss", "acute"]
    )
    config = ComAidConfig(
        dim=dim,
        beta=beta,
        use_text_attention=use_text,
        use_structure_attention=use_structure,
    )
    return ComAid(config, vocab, rng=seed), vocab


def example(vocab):
    concept = vocab.encode(["iron", "deficiency", "anemia", "blood", "loss"])
    parent = vocab.encode(["iron", "deficiency", "anemia"])
    grandparent = vocab.encode(["disease", "blood"])
    query = vocab.encode(["anemia", "chronic", "blood", "loss"])
    return concept, [parent, grandparent], query


@pytest.mark.parametrize(
    "use_text,use_structure",
    [(True, True), (True, False), (False, True), (False, False)],
)
def test_full_backward_matches_finite_differences(use_text, use_structure):
    model, vocab = build_model(use_text, use_structure)
    concept, ancestors, query = example(vocab)
    ancestor_arg = ancestors if use_structure else []

    cache = model.forward(concept, ancestor_arg, query)
    model.zero_grad()
    model.backward(cache)

    epsilon = 1e-5
    for name, parameter in model.named_parameters():
        value = parameter.value
        flat = value.ravel()
        analytic = parameter.grad.ravel()
        # Probe a deterministic sample of coordinates per parameter to
        # keep runtime sane while covering every tensor.
        rng = np.random.default_rng(hash(name) % (2**32))
        sample = rng.choice(flat.size, size=min(12, flat.size), replace=False)
        for index in sample:
            original = flat[index]
            flat[index] = original + epsilon
            upper = model.forward(concept, ancestor_arg, query).loss
            flat[index] = original - epsilon
            lower = model.forward(concept, ancestor_arg, query).loss
            flat[index] = original
            numeric = (upper - lower) / (2 * epsilon)
            assert analytic[index] == pytest.approx(numeric, abs=1e-5), (
                f"{name}[{index}]: analytic={analytic[index]} numeric={numeric}"
            )


def test_backward_scale_scales_gradients():
    model, vocab = build_model(True, True)
    concept, ancestors, query = example(vocab)

    cache = model.forward(concept, ancestors, query)
    model.zero_grad()
    model.backward(cache)
    base = {name: p.grad.copy() for name, p in model.named_parameters()}

    cache = model.forward(concept, ancestors, query)
    model.zero_grad()
    model.backward(cache, scale=0.5)
    for name, parameter in model.named_parameters():
        np.testing.assert_allclose(parameter.grad, 0.5 * base[name], atol=1e-12)


def test_loss_is_positive_and_deterministic():
    model, vocab = build_model(True, True)
    concept, ancestors, query = example(vocab)
    first = model.forward(concept, ancestors, query).loss
    second = model.forward(concept, ancestors, query).loss
    assert first > 0
    assert first == pytest.approx(second)
