"""Tests for the Timon review-page artifact pipeline (Appendix A)."""

import pytest

from repro.core.feedback import FeedbackController, FeedbackItem
from repro.core.timon import parse_review_csv, render_review_page
from repro.kb.knowledge_base import KnowledgeBase
from repro.utils.errors import DataError


def pooled_items():
    return [
        FeedbackItem(
            query="breast lump for investigation",
            candidate_cids=("D50.0", "N18.5", "R10.0"),
            losses=(14.2, 14.5, 18.0),
        ),
        FeedbackItem(
            query="ckd five",
            candidate_cids=("N18.5", "N18.9"),
            losses=(6.1, 6.2),
        ),
    ]


class TestRenderReviewPage:
    def test_renders_queries_and_candidates(self, figure1_ontology, tmp_path):
        path = tmp_path / "timon.html"
        count = render_review_page(pooled_items(), figure1_ontology, path)
        page = path.read_text(encoding="utf-8")
        assert count == 2
        assert "breast lump for investigation" in page
        assert "chronic kidney disease, stage 5" in page  # description shown
        assert 'input type="radio"' in page
        assert 'input type="text"' in page  # free-text "other concept"

    def test_escapes_html(self, figure1_ontology, tmp_path):
        items = [
            FeedbackItem(
                query="<script>alert(1)</script>",
                candidate_cids=("D50.0",),
                losses=(3.0,),
            )
        ]
        path = tmp_path / "timon.html"
        render_review_page(items, figure1_ontology, path)
        page = path.read_text(encoding="utf-8")
        assert "<script>alert(1)</script>" not in page
        assert "&lt;script&gt;" in page

    def test_unknown_candidate_skipped(self, figure1_ontology, tmp_path):
        items = [
            FeedbackItem(
                query="query", candidate_cids=("ZZZ", "D50.0"), losses=(1.0, 2.0)
            )
        ]
        path = tmp_path / "timon.html"
        render_review_page(items, figure1_ontology, path)
        page = path.read_text(encoding="utf-8")
        assert "ZZZ" not in page
        assert "D50.0" in page

    def test_max_candidates_validation(self, figure1_ontology, tmp_path):
        with pytest.raises(DataError):
            render_review_page([], figure1_ontology, tmp_path / "x.html", 0)


class TestParseReviewCsv:
    def test_resolves_valid_rows(self, figure1_ontology, tmp_path):
        kb = KnowledgeBase(figure1_ontology)
        controller = FeedbackController(kb, retrain_after=100)
        path = tmp_path / "decisions.csv"
        path.write_text(
            "query,cid\n"
            "breast lump for investigation,N18.5\n"
            "scurvy like anemia,D53.2\n",
            encoding="utf-8",
        )
        resolved, rejected = parse_review_csv(controller, path)
        assert len(resolved) == 2
        assert rejected == []
        assert "breast lump for investigation" in kb.aliases_of("N18.5")

    def test_rejects_bad_rows_without_losing_good(self, figure1_ontology, tmp_path):
        kb = KnowledgeBase(figure1_ontology)
        controller = FeedbackController(kb, retrain_after=100)
        path = tmp_path / "decisions.csv"
        path.write_text(
            "good query,D50.0\n"
            "missing concept,ZZZ\n"
            "lonelyfield\n"
            "\n",
            encoding="utf-8",
        )
        resolved, rejected = parse_review_csv(controller, path)
        assert len(resolved) == 1
        assert len(rejected) == 2
