"""Tests for the paper-suggested extensions: BlackOut-style sampled
softmax (Appendix B.2), alias generation, and MAP priors (Section 5).
"""

import numpy as np
import pytest

from repro.core.comaid import ComAid
from repro.core.config import ComAidConfig, LinkerConfig, TrainingConfig
from repro.core.linker import NeuralConceptLinker
from repro.core.trainer import ComAidTrainer
from repro.text.vocab import Vocabulary
from repro.utils.errors import ConfigurationError


@pytest.fixture
def vocab():
    vocabulary = Vocabulary()
    vocabulary.add_all(
        ["iron", "deficiency", "anemia", "chronic", "kidney", "disease",
         "blood", "loss", "stage", "5"]
    )
    return vocabulary


def example(vocab):
    concept = vocab.encode(["iron", "deficiency", "anemia"])
    ancestors = [vocab.encode(["iron", "anemia"])]
    query = vocab.encode(["anemia", "blood", "loss"])
    return concept, ancestors, query


class TestSampledSoftmax:
    def test_sampled_gradients_match_finite_differences(self, vocab):
        """The sampled objective's gradients must be exact for the rows
        it touches (it is a smaller, but still exact, softmax)."""
        model = ComAid(ComAidConfig(dim=6, beta=1), vocab, rng=0)
        model.set_output_sampler(4, rng=7)
        concept, ancestors, query = example(vocab)

        # Freeze the sampler's draws by re-seeding before each pass.
        def fresh_loss():
            model.set_output_sampler(4, rng=7)
            return model.forward(concept, ancestors, query).loss

        model.set_output_sampler(4, rng=7)
        cache = model.forward(concept, ancestors, query)
        model.zero_grad()
        model.backward(cache)

        epsilon = 1e-5
        parameter = model.output.weight
        flat = parameter.value.ravel()
        analytic = parameter.grad.ravel()
        rng = np.random.default_rng(0)
        for index in rng.choice(flat.size, size=10, replace=False):
            original = flat[index]
            flat[index] = original + epsilon
            upper = fresh_loss()
            flat[index] = original - epsilon
            lower = fresh_loss()
            flat[index] = original
            numeric = (upper - lower) / (2 * epsilon)
            assert analytic[index] == pytest.approx(numeric, abs=1e-5)

    def test_scoring_uses_exact_softmax_after_clear(self, vocab):
        model = ComAid(ComAidConfig(dim=6, beta=1), vocab, rng=0)
        concept, ancestors, query = example(vocab)
        exact = model.pair_loss(concept, ancestors, query)
        model.set_output_sampler(3, rng=1)
        sampled = model.forward(concept, ancestors, query).loss
        model.clear_output_sampler()
        assert model.pair_loss(concept, ancestors, query) == pytest.approx(exact)
        # The sampled loss normalises over fewer words, so it is lower.
        assert sampled < exact

    def test_trainer_integration(self, figure1_ontology, figure3_kb):
        trainer = ComAidTrainer(
            ComAidConfig(dim=8, beta=1),
            TrainingConfig(epochs=3, batch_size=4, sampled_softmax=3),
            rng=2,
        )
        model = trainer.fit(figure3_kb)
        # Sampler is cleared after training; losses were recorded.
        assert model._output_sampler is None
        assert len(trainer.history.epoch_losses) == 3

    def test_invalid_negatives(self, vocab):
        model = ComAid(ComAidConfig(dim=4, beta=1), vocab, rng=0)
        with pytest.raises(ConfigurationError):
            model.set_output_sampler(0)
        with pytest.raises(ConfigurationError):
            TrainingConfig(sampled_softmax=-1)


class TestGeneration:
    def train_small(self, figure1_ontology, figure3_kb):
        trainer = ComAidTrainer(
            ComAidConfig(dim=12, beta=2),
            TrainingConfig(epochs=25, batch_size=4, optimizer="adagrad",
                           learning_rate=0.2),
            rng=7,
        )
        return trainer.fit(figure3_kb)

    def test_greedy_generation_produces_words(self, figure1_ontology, figure3_kb):
        model = self.train_small(figure1_ontology, figure3_kb)
        concept = figure1_ontology.get("N18.5")
        from repro.ontology.paths import structural_context

        ancestors = [
            model.words_to_ids(list(c.words))
            for c in structural_context(figure1_ontology, "N18.5", 2)[1:]
        ]
        words = model.generate(
            model.words_to_ids(list(concept.words)), ancestors, max_length=8
        )
        assert 1 <= len(words) <= 8
        assert all(isinstance(word, str) for word in words)
        assert "<unk>" not in words and "<bos>" not in words

    def test_temperature_sampling_deterministic_with_seed(
        self, figure1_ontology, figure3_kb
    ):
        model = self.train_small(figure1_ontology, figure3_kb)
        concept_ids = model.words_to_ids(["scorbutic", "anemia"])
        from repro.ontology.paths import structural_context

        ancestors = [
            model.words_to_ids(list(c.words))
            for c in structural_context(figure1_ontology, "D53.2", 2)[1:]
        ]
        a = model.generate(concept_ids, ancestors, temperature=0.8, rng=5)
        b = model.generate(concept_ids, ancestors, temperature=0.8, rng=5)
        assert a == b

    def test_invalid_args(self, vocab):
        model = ComAid(ComAidConfig(dim=4, beta=1), vocab, rng=0)
        concept, ancestors, _ = example(vocab)
        with pytest.raises(ConfigurationError):
            model.generate(concept, ancestors, max_length=0)
        with pytest.raises(ConfigurationError):
            model.generate(concept, ancestors, temperature=-1.0)


class TestMapPriors:
    def build(self, figure1_ontology, figure3_kb, priors):
        trainer = ComAidTrainer(
            ComAidConfig(dim=8, beta=1),
            TrainingConfig(epochs=4, batch_size=4),
            rng=3,
        )
        model = trainer.fit(figure3_kb)
        return NeuralConceptLinker(
            model, figure1_ontology, LinkerConfig(k=5),
            kb=figure3_kb, priors=priors,
        )

    def test_extreme_prior_dominates_ranking(self, figure1_ontology, figure3_kb):
        """With an overwhelming prior on one anemia sibling, ambiguous
        anemia queries must rank it first (Eq. 11 MAP behaviour)."""
        priors = {"D53.0": 1e9, "D50.0": 1.0, "D53.2": 1.0}
        linker = self.build(figure1_ontology, figure3_kb, priors)
        result = linker.link("deficiency anemia")
        assert result.top is not None
        assert result.top.cid == "D53.0"

    def test_uniform_is_default(self, figure1_ontology, figure3_kb):
        linker = self.build(figure1_ontology, figure3_kb, None)
        assert linker._log_priors is None

    def test_invalid_priors(self, figure1_ontology, figure3_kb):
        with pytest.raises(ConfigurationError):
            self.build(figure1_ontology, figure3_kb, {})
        with pytest.raises(ConfigurationError):
            self.build(figure1_ontology, figure3_kb, {"D50.0": -1.0})
        with pytest.raises(KeyError):
            self.build(figure1_ontology, figure3_kb, {"NOPE": 1.0})
