"""Checkpoint/resume: atomicity, integrity, and bit-for-bit resume."""

import json

import numpy as np
import pytest

from repro.core.checkpoint import (
    CheckpointState,
    latest_checkpoint,
    load_checkpoint,
    prune_checkpoints,
    save_checkpoint,
    verify_checkpoint,
)
from repro.core.config import ComAidConfig, TrainingConfig
from repro.core.trainer import ComAidTrainer
from repro.kb.knowledge_base import KnowledgeBase
from repro.ontology.concept import Concept
from repro.ontology.ontology import Ontology
from repro.utils.errors import ConfigurationError, DataError
from repro.utils.faults import FaultSpec, InjectedFault, fault_injection


def build_kb() -> KnowledgeBase:
    ontology = Ontology()
    ontology.add(Concept("D50", "iron deficiency anemia"))
    ontology.add(
        Concept("D50.0", "iron deficiency anemia secondary to blood loss"),
        parent_cid="D50",
    )
    ontology.add(Concept("N18", "chronic kidney disease"))
    ontology.add(
        Concept("N18.5", "chronic kidney disease, stage 5"), parent_cid="N18"
    )
    kb = KnowledgeBase(ontology)
    kb.add_alias("D50.0", "anemia chronic blood loss")
    kb.add_alias("D50.0", "hemorrhagic anemia")
    kb.add_alias("N18.5", "ckd stage 5")
    kb.add_alias("N18.5", "end stage renal disease")
    return kb


MODEL_CONFIG = ComAidConfig(dim=8, beta=1)
TRAIN_CONFIG = TrainingConfig(epochs=6, batch_size=4)


def make_trainer(**overrides) -> ComAidTrainer:
    training = overrides.pop("training", TRAIN_CONFIG)
    return ComAidTrainer(MODEL_CONFIG, training, rng=11)


class TestCheckpointRoundTrip:
    def test_save_load_roundtrip(self, tmp_path):
        state = CheckpointState(
            epoch=3,
            model_state={"layer.w": np.arange(6.0).reshape(2, 3)},
            optimizer_state={"accumulator.0": np.ones((2, 3))},
            rng_state=np.random.default_rng(5).bit_generator.state,
            order=np.array([2, 0, 1]),
            epoch_losses=[1.5, 1.2, 1.0],
            seconds=4.2,
            examples=3,
        )
        path = save_checkpoint(tmp_path, state)
        assert path.name == "epoch-0003"
        assert latest_checkpoint(tmp_path) == path
        loaded = load_checkpoint(path)
        assert loaded.epoch == 3
        assert loaded.epoch_losses == [1.5, 1.2, 1.0]
        assert loaded.rng_state == state.rng_state
        np.testing.assert_array_equal(loaded.order, state.order)
        np.testing.assert_array_equal(
            loaded.model_state["layer.w"], state.model_state["layer.w"]
        )
        np.testing.assert_array_equal(
            loaded.optimizer_state["accumulator.0"],
            state.optimizer_state["accumulator.0"],
        )

    def test_load_from_root_picks_latest(self, tmp_path):
        for epoch in (1, 2):
            save_checkpoint(
                tmp_path,
                CheckpointState(
                    epoch=epoch,
                    model_state={"w": np.full(2, float(epoch))},
                    optimizer_state={},
                    rng_state={},
                    order=np.arange(2),
                    epoch_losses=[1.0] * epoch,
                    seconds=0.0,
                    examples=2,
                ),
            )
        loaded = load_checkpoint(tmp_path)
        assert loaded.epoch == 2

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(DataError):
            load_checkpoint(tmp_path / "nope")

    def test_empty_root_raises(self, tmp_path):
        with pytest.raises(DataError, match="no complete checkpoint"):
            load_checkpoint(tmp_path)


class TestIntegrity:
    def _saved(self, tmp_path):
        return save_checkpoint(
            tmp_path,
            CheckpointState(
                epoch=1,
                model_state={"w": np.ones(4)},
                optimizer_state={},
                rng_state={},
                order=np.arange(4),
                epoch_losses=[0.5],
                seconds=0.0,
                examples=4,
            ),
        )

    def test_truncated_state_detected(self, tmp_path):
        path = self._saved(tmp_path)
        state_file = path / "state.npz"
        state_file.write_bytes(state_file.read_bytes()[:-10])
        with pytest.raises(DataError, match="truncated"):
            verify_checkpoint(path)

    def test_corrupt_state_detected(self, tmp_path):
        path = self._saved(tmp_path)
        state_file = path / "state.npz"
        raw = bytearray(state_file.read_bytes())
        raw[-1] ^= 0xFF
        state_file.write_bytes(bytes(raw))
        with pytest.raises(DataError, match="corrupt"):
            load_checkpoint(path)

    def test_malformed_manifest_detected(self, tmp_path):
        path = self._saved(tmp_path)
        (path / "manifest.json").write_text("{not json", encoding="utf-8")
        with pytest.raises(DataError, match="JSON"):
            load_checkpoint(path)

    def test_crash_during_write_leaves_no_partial_checkpoint(self, tmp_path):
        self._saved(tmp_path)  # epoch-0001 exists
        with fault_injection(
            {"checkpoint.commit": FaultSpec(action="raise")}
        ):
            with pytest.raises(InjectedFault):
                save_checkpoint(
                    tmp_path,
                    CheckpointState(
                        epoch=2,
                        model_state={"w": np.zeros(4)},
                        optimizer_state={},
                        rng_state={},
                        order=np.arange(4),
                        epoch_losses=[0.5, 0.4],
                        seconds=0.0,
                        examples=4,
                    ),
                )
        # The torn epoch-0002 never materialised; LATEST still points at 1.
        assert latest_checkpoint(tmp_path).name == "epoch-0001"
        assert not (tmp_path / "epoch-0002").exists()
        # And the next save sweeps the staging leftovers.
        self._saved(tmp_path)
        assert not list(tmp_path.glob(".staging-*"))

    def test_prune_keeps_newest(self, tmp_path):
        for epoch in (1, 2, 3):
            save_checkpoint(
                tmp_path,
                CheckpointState(
                    epoch=epoch,
                    model_state={"w": np.ones(2)},
                    optimizer_state={},
                    rng_state={},
                    order=np.arange(2),
                    epoch_losses=[1.0] * epoch,
                    seconds=0.0,
                    examples=2,
                ),
            )
        removed = prune_checkpoints(tmp_path, keep=2)
        assert [p.name for p in removed] == ["epoch-0001"]
        assert latest_checkpoint(tmp_path).name == "epoch-0003"


class TestTrainerResume:
    def test_resume_reproduces_uninterrupted_run_bit_for_bit(self, tmp_path):
        kb = build_kb()
        baseline = make_trainer()
        model = baseline.fit(kb)
        baseline_losses = list(baseline.history.epoch_losses)
        baseline_params = model.state_dict()

        # Same seed, checkpoint every epoch, killed (fault-injected)
        # at the end of epoch 3.
        crashed = make_trainer()
        with fault_injection(
            {"trainer.epoch_end": FaultSpec(after=2, action="raise")}
        ):
            with pytest.raises(InjectedFault):
                crashed.fit(
                    kb, checkpoint_dir=tmp_path / "ckpt", checkpoint_every=1
                )
        newest = latest_checkpoint(tmp_path / "ckpt")
        assert newest is not None and newest.name == "epoch-0003"

        resumed = make_trainer()
        resumed_model = resumed.fit(kb, resume_from=tmp_path / "ckpt")
        assert resumed.history.epoch_losses == baseline_losses
        resumed_params = resumed_model.state_dict()
        assert set(resumed_params) == set(baseline_params)
        for name, value in baseline_params.items():
            np.testing.assert_array_equal(resumed_params[name], value, err_msg=name)

    def test_resume_with_sampled_softmax_bit_for_bit(self, tmp_path):
        kb = build_kb()
        training = TrainingConfig(epochs=4, batch_size=4, sampled_softmax=3)
        baseline = make_trainer(training=training)
        model = baseline.fit(kb)
        baseline_losses = list(baseline.history.epoch_losses)
        baseline_params = model.state_dict()

        partial = make_trainer(training=training)
        with fault_injection(
            {"trainer.epoch_end": FaultSpec(after=1, action="raise")}
        ):
            with pytest.raises(InjectedFault):
                partial.fit(
                    kb, checkpoint_dir=tmp_path / "ckpt", checkpoint_every=1
                )

        resumed = make_trainer(training=training)
        resumed_model = resumed.fit(kb, resume_from=tmp_path / "ckpt")
        assert resumed.history.epoch_losses == baseline_losses
        for name, value in baseline_params.items():
            np.testing.assert_array_equal(
                resumed_model.state_dict()[name], value, err_msg=name
            )

    def test_checkpoint_every_requires_dir(self):
        with pytest.raises(ConfigurationError):
            make_trainer().fit(build_kb(), checkpoint_every=1)

    def test_resume_rejects_config_mismatch(self, tmp_path):
        kb = build_kb()
        trainer = make_trainer()
        trainer.fit(kb, checkpoint_dir=tmp_path, checkpoint_every=2)
        other = ComAidTrainer(
            ComAidConfig(dim=12, beta=1), TRAIN_CONFIG, rng=11
        )
        with pytest.raises(ConfigurationError, match="model config"):
            other.fit(kb, resume_from=tmp_path)

    def test_resume_rejects_different_training_set(self, tmp_path):
        kb = build_kb()
        trainer = make_trainer()
        trainer.fit(kb, checkpoint_dir=tmp_path, checkpoint_every=2)
        smaller = build_kb()
        pairs = smaller.training_pairs()[:2]
        with pytest.raises(DataError, match="examples"):
            make_trainer().fit(smaller, pairs=pairs, resume_from=tmp_path)

    def test_completed_run_checkpoints_final_epoch(self, tmp_path):
        trainer = make_trainer()
        trainer.fit(build_kb(), checkpoint_dir=tmp_path, checkpoint_every=3)
        assert latest_checkpoint(tmp_path).name == "epoch-0006"
        manifest = json.loads(
            (tmp_path / "epoch-0006" / "manifest.json").read_text()
        )
        assert manifest["epoch"] == 6
        assert len(manifest["history"]["epoch_losses"]) == 6
