"""Equivalence of batched Phase-II scoring with the sequential reference.

The batched decoder (``ComAid.score_batch`` + ``LinkerConfig.
batch_phase2``) is a numerical refactor of the paper's Eq. 5–9 hot
path, so every claim ships with a proof against the sequential oracle:

* ``score_batch`` log-probs match per-candidate ``score_with_encodings``
  to ≤1e-9 for randomized models (all four ablations × both cells,
  plus a hypothesis sweep over shapes);
* ``link()`` rankings, scores, keyword scores, and tie order are
  identical with ``batch_phase2`` on and off;
* heterogeneous candidate sets — different description lengths,
  different ontology depths including Def. 4.1's first-level-duplication
  padding — are masked correctly;
* the trivially-decodable shortcut (query fully covered by the
  description) short-circuits to exactly 0.0 on both paths.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.comaid import ComAid
from repro.core.config import ComAidConfig, LinkerConfig
from repro.core.linker import NeuralConceptLinker
from repro.kb.knowledge_base import KnowledgeBase
from repro.ontology.concept import Concept
from repro.ontology.ontology import Ontology
from repro.text.vocab import Vocabulary
from repro.utils.errors import DataError
from repro.utils.faults import FaultSpec, fault_injection

from tests.serving.conftest import make_linker, trained_pipeline  # noqa: F401

TOLERANCE = 1e-9


def _model(
    dim=9,
    beta=2,
    cell="lstm",
    use_text=True,
    use_struct=True,
    vocab_size=30,
    seed=7,
) -> ComAid:
    vocab = Vocabulary()
    for index in range(vocab_size):
        vocab.add(f"w{index}")
    config = ComAidConfig(
        dim=dim,
        beta=beta,
        use_text_attention=use_text,
        use_structure_attention=use_struct,
        cell=cell,
    )
    return ComAid(config, vocab, rng=seed)


def _word_ids(model: ComAid, rng: np.random.Generator, length: int):
    vocab_words = len(model.vocab) - 4  # specials are never drawn
    return model.words_to_ids(
        [f"w{int(rng.integers(0, vocab_words))}" for _ in range(length)]
    )


def _random_candidates(model: ComAid, rng: np.random.Generator, count: int):
    """Heterogeneous candidates: description/ancestor/query lengths vary."""
    candidates, queries = [], []
    for _ in range(count):
        encoding = model.encode_concept(
            _word_ids(model, rng, int(rng.integers(1, 7))), keep_caches=False
        )
        ancestors = []
        if model.config.use_structure_attention:
            ancestors = [
                model.encode_concept(
                    _word_ids(model, rng, int(rng.integers(1, 5))),
                    keep_caches=False,
                )
                for _ in range(model.config.beta)
            ]
        candidates.append((encoding, ancestors))
        queries.append(_word_ids(model, rng, int(rng.integers(1, 6))))
    return queries, candidates


class TestScoreBatchEquivalence:
    @pytest.mark.parametrize("cell", ["lstm", "gru"])
    @pytest.mark.parametrize(
        "use_text,use_struct",
        [(True, True), (True, False), (False, True), (False, False)],
    )
    def test_matches_sequential_per_candidate(self, cell, use_text, use_struct):
        model = _model(cell=cell, use_text=use_text, use_struct=use_struct)
        rng = np.random.default_rng(11)
        queries, candidates = _random_candidates(model, rng, count=8)
        batched = model.score_batch(queries, candidates)
        for row, ((encoding, ancestors), query) in enumerate(
            zip(candidates, queries)
        ):
            sequential = model.score_with_encodings(encoding, ancestors, query)
            assert abs(batched[row] - sequential) <= TOLERANCE

    def test_single_candidate_batch(self):
        model = _model()
        rng = np.random.default_rng(5)
        queries, candidates = _random_candidates(model, rng, count=1)
        batched = model.score_batch(queries, candidates)
        sequential = model.score_with_encodings(
            candidates[0][0], candidates[0][1], queries[0]
        )
        assert batched.shape == (1,)
        assert abs(batched[0] - sequential) <= TOLERANCE

    def test_order_invariance(self):
        # Scores are per-candidate properties: permuting the batch
        # permutes the outputs and nothing else.
        model = _model()
        rng = np.random.default_rng(13)
        queries, candidates = _random_candidates(model, rng, count=6)
        forward = model.score_batch(queries, candidates)
        permutation = [4, 0, 5, 2, 1, 3]
        shuffled = model.score_batch(
            [queries[i] for i in permutation],
            [candidates[i] for i in permutation],
        )
        np.testing.assert_allclose(
            shuffled, forward[permutation], rtol=0, atol=TOLERANCE
        )

    def test_validation(self):
        model = _model()
        rng = np.random.default_rng(3)
        queries, candidates = _random_candidates(model, rng, count=2)
        with pytest.raises(DataError):
            model.score_batch(queries[:1], candidates)
        with pytest.raises(DataError):
            model.score_batch([], [])
        with pytest.raises(DataError):
            model.score_batch([queries[0], []], candidates)
        # Wrong ancestor-path length (Def. 4.1 demands exactly beta).
        bad = [(candidates[0][0], candidates[0][1][:1]), candidates[1]]
        with pytest.raises(DataError):
            model.score_batch(queries, bad)

    @pytest.mark.property
    @settings(max_examples=25, deadline=None)
    @given(
        dim=st.integers(min_value=2, max_value=8),
        beta=st.integers(min_value=1, max_value=3),
        cell=st.sampled_from(["lstm", "gru"]),
        use_text=st.booleans(),
        use_struct=st.booleans(),
        count=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_property_random_shapes(
        self, dim, beta, cell, use_text, use_struct, count, seed
    ):
        model = _model(
            dim=dim,
            beta=beta,
            cell=cell,
            use_text=use_text,
            use_struct=use_struct,
            vocab_size=12,
            seed=seed,
        )
        rng = np.random.default_rng(seed)
        queries, candidates = _random_candidates(model, rng, count=count)
        batched = model.score_batch(queries, candidates)
        for row, ((encoding, ancestors), query) in enumerate(
            zip(candidates, queries)
        ):
            sequential = model.score_with_encodings(encoding, ancestors, query)
            assert abs(batched[row] - sequential) <= TOLERANCE


def _assert_links_equivalent(batched_result, sequential_result):
    assert not batched_result.degraded and not sequential_result.degraded
    assert [c.cid for c in batched_result.ranked] == [
        c.cid for c in sequential_result.ranked
    ]
    for batched, sequential in zip(
        batched_result.ranked, sequential_result.ranked
    ):
        assert abs(batched.log_prob - sequential.log_prob) <= TOLERANCE
        assert batched.keyword_score == sequential.keyword_score


class TestLinkerEquivalence:
    QUERIES = [
        "ckd stage 5",
        "anemia blood loss",
        "vitamin c deficiency anemia",
        "acute abdomen pain",
        "chronic kidney disease",
        "protein deficiency anemia",
    ]

    def test_link_identical_on_off(self, make_linker):
        batched = make_linker(batch_phase2=True)
        sequential = make_linker(batch_phase2=False)
        for query in self.QUERIES:
            _assert_links_equivalent(
                batched.link(query), sequential.link(query)
            )

    def test_link_batch_identical_on_off(self, make_linker):
        batched = make_linker(batch_phase2=True)
        sequential = make_linker(batch_phase2=False)
        for batched_result, sequential_result in zip(
            batched.link_batch(self.QUERIES),
            sequential.link_batch(self.QUERIES),
        ):
            _assert_links_equivalent(batched_result, sequential_result)

    def test_fully_covered_query_scores_exact_zero(self, make_linker):
        # Every query word appears in D50.0's canonical description, so
        # both paths short-circuit to log p = 0.0 exactly (no decode).
        for flag in (True, False):
            result = make_linker(batch_phase2=flag).link(
                "iron deficiency anemia"
            )
            assert result.rank_of("D50.0") == 1
            top = result.top
            assert top.cid == "D50.0" and top.log_prob == 0.0

    def test_tie_order_preserved(self, make_linker):
        # Keyword-score ties are broken by the stable sort over the
        # Phase-I hit order; the batched path must preserve that order
        # bit-for-bit, not merely the multiset of cids.
        batched = make_linker(batch_phase2=True)
        sequential = make_linker(batch_phase2=False)
        for query in self.QUERIES:
            left = [
                (c.cid, c.keyword_score) for c in batched.link(query).ranked
            ]
            right = [
                (c.cid, c.keyword_score) for c in sequential.link(query).ranked
            ]
            assert left == right


def _heterogeneous_linker(
    batch_phase2: bool, fuse_phase2: bool = False
) -> NeuralConceptLinker:
    """A linker whose candidate sets mix ontology depths and description
    lengths: a first-level leaf (Def. 4.1 pads its path by duplicating
    itself), second-level leaves, and a third-level leaf with real
    ancestors — all retrievable by the shared word "pain"."""
    ontology = Ontology()
    ontology.add(Concept("P00", "pain"))  # first-level, childless
    ontology.add(Concept("R10", "abdominal and pelvic pain"))
    ontology.add(
        Concept("R10.0", "acute abdomen pain syndrome"), parent_cid="R10"
    )
    ontology.add(
        Concept("R10.1", "pain localized to upper abdomen region"),
        parent_cid="R10",
    )
    ontology.add(Concept("G89", "pain not elsewhere classified"))
    ontology.add(Concept("G89.2", "chronic pain"), parent_cid="G89")
    ontology.add(
        Concept("G89.21", "chronic pain due to trauma syndrome"),
        parent_cid="G89.2",
    )
    kb = KnowledgeBase(ontology)
    vocab = Vocabulary()
    for concept in ontology:
        vocab.add_all(concept.words)
    vocab.add_all(["severe", "unexplained"])
    model = ComAid(ComAidConfig(dim=8, beta=2), vocab, rng=29)
    return NeuralConceptLinker(
        model,
        ontology,
        LinkerConfig(k=10, batch_phase2=batch_phase2, fuse_phase2=fuse_phase2),
        kb=kb,
    )


class TestHeterogeneousCandidates:
    QUERIES = [
        "severe pain syndrome",
        "chronic abdomen pain",
        "pain syndrome trauma",
        "unexplained pain",
    ]

    def test_mixed_depths_and_lengths_match_sequential(self):
        batched = _heterogeneous_linker(batch_phase2=True)
        sequential = _heterogeneous_linker(batch_phase2=False)
        for query in self.QUERIES:
            batched_result = batched.link(query)
            # The point of the fixture: one candidate set spans depths
            # 1–3 and description lengths 1–6.
            cids = {c.cid for c in batched_result.ranked}
            assert "P00" in cids and "G89.21" in cids
            _assert_links_equivalent(batched_result, sequential.link(query))

    def test_first_level_duplication_padding(self):
        # P00 has no ancestors; its structural context is <P00, P00, P00>
        # (Def. 4.1).  The batched (k, beta, d) structure memory must
        # reproduce that duplicated block exactly.
        linker = _heterogeneous_linker(batch_phase2=True)
        ancestors = linker._ancestor_encodings("P00")
        assert len(ancestors) == 2
        np.testing.assert_array_equal(ancestors[0].final_h, ancestors[1].final_h)
        score_batched = linker._phase_two_batched(
            linker._phase_one("severe pain syndrome", 10), None, 0.0
        )[0]
        by_cid = {c.cid: c.log_prob for c in score_batched}
        assert math.isfinite(by_cid["P00"])
        assert abs(
            by_cid["P00"]
            - linker._score_candidate("P00", ("severe", "pain", "syndrome"))
        ) <= TOLERANCE


class TestFusedPhase2Equivalence:
    """``LinkerConfig.fuse_phase2``: cross-request Phase-II fusion.

    ``link_batch`` with fusion on runs ONE ``score_batch`` decode over
    every surviving candidate of every query in the batch — the
    serving tier's cross-request GEMM.  ``score_batch`` rows are
    batch-composition independent (``test_order_invariance``), so the
    fused results must match the sequential oracle query for query.
    """

    QUERIES = TestLinkerEquivalence.QUERIES

    def test_link_batch_fused_matches_sequential(self, make_linker):
        fused = make_linker(batch_phase2=True, fuse_phase2=True)
        sequential = make_linker(batch_phase2=False)
        for fused_result, sequential_result in zip(
            fused.link_batch(self.QUERIES),
            sequential.link_batch(self.QUERIES),
        ):
            _assert_links_equivalent(fused_result, sequential_result)

    def test_single_query_batch_short_circuits_to_reference(
        self, make_linker
    ):
        # A one-query batch has nothing to fuse; it must take the
        # reference path and still agree with it.
        fused = make_linker(fuse_phase2=True)
        reference = make_linker()
        _assert_links_equivalent(
            fused.link_batch(["ckd stage 5"])[0],
            reference.link("ckd stage 5"),
        )

    def test_fused_heterogeneous_candidates(self):
        fused = _heterogeneous_linker(batch_phase2=True, fuse_phase2=True)
        sequential = _heterogeneous_linker(batch_phase2=False)
        queries = TestHeterogeneousCandidates.QUERIES
        for fused_result, sequential_result in zip(
            fused.link_batch(queries), sequential.link_batch(queries)
        ):
            _assert_links_equivalent(fused_result, sequential_result)

    def test_fused_decode_is_one_batch_site_hit(self, make_linker):
        # The whole point: N queries, ONE fused decode.
        fused = make_linker(fuse_phase2=True)
        with fault_injection(
            {"linker.phase2.batch": FaultSpec(action="delay", times=0)}
        ) as plan:
            fused.link_batch(self.QUERIES[:4])
        assert plan.hits("linker.phase2.batch") == 1

    def test_fused_degrades_per_query_not_per_batch(self, make_linker):
        fused = make_linker(fuse_phase2=True)
        reference = make_linker()
        # Fail the first candidate probe: only the query that owns it
        # degrades; the other rides the fused decode untouched.
        with fault_injection({"linker.phase2": FaultSpec(times=1)}):
            results = fused.link_batch(["ckd stage 5", "anemia blood loss"])
        assert results[0].degraded
        assert results[0].degraded_reason.startswith("error:")
        assert not results[1].degraded
        _assert_links_equivalent(
            results[1], reference.link("anemia blood loss")
        )

    def test_fused_tie_order_preserved(self, make_linker):
        fused = make_linker(fuse_phase2=True)
        sequential = make_linker(batch_phase2=False)
        left = [
            [(c.cid, c.keyword_score) for c in result.ranked]
            for result in fused.link_batch(self.QUERIES)
        ]
        right = [
            [(c.cid, c.keyword_score) for c in result.ranked]
            for result in sequential.link_batch(self.QUERIES)
        ]
        assert left == right


class TestBatchProbeSite:
    """The ``faults`` harness's new ``linker.phase2.batch`` site."""

    def test_sequential_path_never_hits_batch_site(self, make_linker):
        linker = make_linker(batch_phase2=False)
        with fault_injection(
            {"linker.phase2.batch": FaultSpec(times=-1)}
        ) as plan:
            result = linker.link("ckd stage 5")
        assert not result.degraded
        assert plan.hits("linker.phase2.batch") == 0

    def test_batched_path_hits_site_once_per_query(self, make_linker):
        linker = make_linker(batch_phase2=True)
        with fault_injection(
            {"linker.phase2.batch": FaultSpec(action="delay", times=0)}
        ) as plan:
            linker.link("ckd stage 5")
            linker.link("anemia blood loss")
        assert plan.hits("linker.phase2.batch") == 2
