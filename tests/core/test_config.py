"""Tests for COM-AID/NCL configuration objects."""

import pytest

from repro.core.config import (
    PAPER_DEFAULTS,
    ComAidConfig,
    LinkerConfig,
    TrainingConfig,
)
from repro.utils.errors import ConfigurationError


class TestPaperDefaults:
    def test_table1_bold_entries(self):
        assert PAPER_DEFAULTS == {"k": 20, "beta": 2, "d": 150}


class TestComAidConfig:
    def test_variant_names(self):
        assert ComAidConfig().variant_name == "COM-AID"
        assert ComAidConfig(use_structure_attention=False).variant_name == "COM-AID-c"
        assert ComAidConfig(use_text_attention=False).variant_name == "COM-AID-w"
        assert ComAidConfig(
            use_text_attention=False, use_structure_attention=False
        ).variant_name == "COM-AID-wc"

    def test_invalid_dim(self):
        with pytest.raises(ConfigurationError):
            ComAidConfig(dim=0)

    def test_structure_attention_requires_beta(self):
        with pytest.raises(ConfigurationError):
            ComAidConfig(beta=0, use_structure_attention=True)
        ComAidConfig(beta=0, use_structure_attention=False)  # fine

    def test_negative_beta(self):
        with pytest.raises(ConfigurationError):
            ComAidConfig(beta=-1)


class TestTrainingConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(epochs=0),
            dict(batch_size=0),
            dict(learning_rate=0.0),
            dict(clip_norm=0.0),
            dict(optimizer="rmsprop"),
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            TrainingConfig(**kwargs)

    def test_valid_defaults(self):
        config = TrainingConfig()
        assert config.optimizer in ("sgd", "adagrad", "adam")


class TestLinkerConfig:
    def test_default_k_matches_paper(self):
        assert LinkerConfig().k == PAPER_DEFAULTS["k"]

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(k=0),
            dict(edit_distance_max=-1),
            dict(rewrite_min_similarity=2.0),
            dict(rewrite_min_similarity=-2.0),
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            LinkerConfig(**kwargs)
