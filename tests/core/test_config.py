"""Tests for COM-AID/NCL configuration objects."""

import pytest

from repro.core.config import (
    AUTO_SHARDS_MAX,
    PAPER_DEFAULTS,
    ComAidConfig,
    LinkerConfig,
    RetrievalConfig,
    TrainingConfig,
)
from repro.utils.errors import ConfigurationError


class TestPaperDefaults:
    def test_table1_bold_entries(self):
        assert PAPER_DEFAULTS == {"k": 20, "beta": 2, "d": 150}


class TestComAidConfig:
    def test_variant_names(self):
        assert ComAidConfig().variant_name == "COM-AID"
        assert ComAidConfig(use_structure_attention=False).variant_name == "COM-AID-c"
        assert ComAidConfig(use_text_attention=False).variant_name == "COM-AID-w"
        assert ComAidConfig(
            use_text_attention=False, use_structure_attention=False
        ).variant_name == "COM-AID-wc"

    def test_invalid_dim(self):
        with pytest.raises(ConfigurationError):
            ComAidConfig(dim=0)

    def test_structure_attention_requires_beta(self):
        with pytest.raises(ConfigurationError):
            ComAidConfig(beta=0, use_structure_attention=True)
        ComAidConfig(beta=0, use_structure_attention=False)  # fine

    def test_negative_beta(self):
        with pytest.raises(ConfigurationError):
            ComAidConfig(beta=-1)


class TestTrainingConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(epochs=0),
            dict(batch_size=0),
            dict(learning_rate=0.0),
            dict(clip_norm=0.0),
            dict(optimizer="rmsprop"),
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            TrainingConfig(**kwargs)

    def test_valid_defaults(self):
        config = TrainingConfig()
        assert config.optimizer in ("sgd", "adagrad", "adam")


class TestLinkerConfig:
    def test_default_k_matches_paper(self):
        assert LinkerConfig().k == PAPER_DEFAULTS["k"]

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(k=0),
            dict(edit_distance_max=-1),
            dict(rewrite_min_similarity=2.0),
            dict(rewrite_min_similarity=-2.0),
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            LinkerConfig(**kwargs)


class TestRetrievalConfig:
    def test_exact_is_the_default(self):
        config = RetrievalConfig()
        assert config.mode == "exact"
        assert LinkerConfig().retrieval == config

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(mode="fuzzy"),
            dict(nprobe=0),
            dict(fusion_weight=1.5),
            dict(fusion_weight=-0.1),
            dict(fusion_method="borda"),
            dict(max_postings_per_term=-1),
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            RetrievalConfig(**kwargs)

    def test_mapping_coerces_in_linker_config(self):
        config = LinkerConfig(
            artifact_dir="a/", retrieval={"mode": "hybrid", "nprobe": 4}
        )
        assert isinstance(config.retrieval, RetrievalConfig)
        assert config.retrieval.mode == "hybrid"
        assert config.retrieval.nprobe == 4

    def test_unknown_mapping_key_rejected(self):
        with pytest.raises(ConfigurationError, match="retrieval"):
            LinkerConfig(artifact_dir="a/", retrieval={"knob": 1})

    def test_non_mapping_rejected(self):
        with pytest.raises(ConfigurationError):
            LinkerConfig(retrieval="hybrid")

    def test_non_exact_requires_artifact_dir(self):
        with pytest.raises(ConfigurationError, match="artifact_dir"):
            LinkerConfig(retrieval={"mode": "sparse"})
        LinkerConfig(artifact_dir="a/", retrieval={"mode": "sparse"})  # fine


class TestShards:
    def test_explicit_int_passes_through(self):
        config = LinkerConfig(artifact_dir="a/", shards=3)
        assert config.resolve_shards() == 3

    def test_invalid_values(self):
        with pytest.raises(ConfigurationError):
            LinkerConfig(artifact_dir="a/", shards=0)
        with pytest.raises(ConfigurationError):
            LinkerConfig(artifact_dir="a/", shards="many")
        with pytest.raises(ConfigurationError, match="artifact_dir"):
            LinkerConfig(shards=2)

    def test_auto_without_artifact_is_one(self):
        assert LinkerConfig(shards="auto").resolve_shards() == 1

    def test_auto_on_small_box_is_one(self, monkeypatch):
        """The BENCH_shard regression: a GIL-sharing pool on <= 2 CPUs
        is pure overhead, so auto must fall back to the inline path."""
        import repro.core.config as config_module

        config = LinkerConfig(artifact_dir="a/", shards="auto")
        for cpus in (1, 2):
            monkeypatch.setattr(
                config_module.os, "cpu_count", lambda n=cpus: n
            )
            assert config.resolve_shards() == 1

    def test_auto_on_big_box_is_capped(self, monkeypatch):
        import repro.core.config as config_module

        config = LinkerConfig(artifact_dir="a/", shards="auto")
        monkeypatch.setattr(config_module.os, "cpu_count", lambda: 4)
        assert config.resolve_shards() == 3
        monkeypatch.setattr(config_module.os, "cpu_count", lambda: 64)
        assert config.resolve_shards() == AUTO_SHARDS_MAX

    def test_auto_when_cpu_count_unknown(self, monkeypatch):
        import repro.core.config as config_module

        config = LinkerConfig(artifact_dir="a/", shards="auto")
        monkeypatch.setattr(config_module.os, "cpu_count", lambda: None)
        assert config.resolve_shards() == 1
