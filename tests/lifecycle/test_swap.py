"""ArtifactSwapper: hot swap under traffic, gates, rollback, durability."""

import hashlib
import threading
from pathlib import Path

import pytest

from repro.lifecycle.swap import LifecycleError
from repro.utils.faults import FaultSpec, fault_injection

from tests.lifecycle.conftest import SERVING_QUERIES


def directory_digest(directory: Path) -> dict:
    """name → sha256 for every file (the byte-identity witness)."""
    return {
        path.name: hashlib.sha256(path.read_bytes()).hexdigest()
        for path in sorted(Path(directory).iterdir())
        if path.is_file()
    }


def feed(service, queries=SERVING_QUERIES, repeat=1):
    results = []
    for _ in range(repeat):
        results.extend(service.link_many(list(queries)))
    return results


def stage_candidate(controller, candidate_factory, model):
    artifact_dir = candidate_factory(model)
    return controller.stage(model=model, artifact_dir=artifact_dir)


class TestHotSwap:
    def test_promote_flips_fingerprint_and_keeps_serving(
        self, stack, candidate_factory, retrained_model
    ):
        service, controller, _ = stack
        before = service.linker.model_fingerprint
        feed(service)
        stage_candidate(controller, candidate_factory, retrained_model)
        feed(service, repeat=2)
        report = controller.promote()
        assert report["promoted"], report
        after = service.linker.model_fingerprint
        assert after != before
        assert report["fingerprint"] == after
        assert report["previous_fingerprint"] == before
        # The service keeps answering on the new engine.
        results = feed(service)
        assert all(not r.degraded for r in results)
        assert controller.swapper.state == "idle"

    def test_promote_publishes_candidate_into_active_dir(
        self, stack, candidate_factory, retrained_model
    ):
        service, controller, active = stack
        before = directory_digest(active)
        feed(service)
        stage_candidate(controller, candidate_factory, retrained_model)
        feed(service)
        assert controller.promote()["promoted"]
        after = directory_digest(active)
        assert after != before
        # The published bytes verify end to end (manifest + indexes).
        from repro.engine.compile import load_artifact

        published = load_artifact(active, model=retrained_model)
        assert (
            published.fingerprint["params_sha256"]
            == service.linker.model_fingerprint
        )

    def test_mid_traffic_swap_drops_nothing(
        self, stack, candidate_factory, retrained_model
    ):
        """The closed-loop acceptance: hammering clients across the swap
        window observe zero failures and zero degraded results."""
        service, controller, _ = stack
        stop = threading.Event()
        failures = []
        degraded = []
        requests = [0]

        def hammer(offset):
            index = offset
            while not stop.is_set():
                query = SERVING_QUERIES[index % len(SERVING_QUERIES)]
                index += 1
                try:
                    result = service.link(query)
                except Exception as error:  # noqa: BLE001 - the finding
                    failures.append(error)
                    continue
                finally:
                    requests[0] += 1
                if result.degraded:
                    degraded.append(result)

        threads = [
            threading.Thread(target=hammer, args=(i * 3,), daemon=True)
            for i in range(3)
        ]
        for thread in threads:
            thread.start()
        try:
            stage_candidate(controller, candidate_factory, retrained_model)
            feed(service)
            report = controller.promote()
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=10.0)
        assert report["promoted"], report
        assert requests[0] > 0
        assert failures == []
        assert degraded == []

    def test_stage_while_staged_is_rejected(
        self, stack, candidate_factory, retrained_model
    ):
        _, controller, _ = stack
        stage_candidate(controller, candidate_factory, retrained_model)
        with pytest.raises(LifecycleError, match="shadowing"):
            stage_candidate(controller, candidate_factory, retrained_model)
        controller.rollback("test-cleanup")

    def test_promote_without_candidate_is_rejected(self, stack):
        _, controller, _ = stack
        with pytest.raises(LifecycleError, match="no staged candidate"):
            controller.promote()


class TestCacheInvalidation:
    def test_stale_encoding_never_scores_under_new_fingerprint(
        self, stack, candidate_factory, retrained_model, lifecycle_base
    ):
        """Satellite guarantee: an encoding computed against the old
        weights must be unreachable after the swap — even one inserted
        *late* by a racing in-flight computation."""
        ontology, kb, _, _, _ = lifecycle_base
        service, controller, _ = stack
        linker = service.linker
        feed(service)
        old_encodings = linker._encoding_cache
        old_ancestors = linker._ancestor_cache
        stage_candidate(controller, candidate_factory, retrained_model)
        feed(service)
        # Poison the pre-swap caches with sentinel entries standing in
        # for encodings computed against the old weights.
        poisoned = [concept.cid for concept in list(ontology)[:3]]
        stale_marker = object()
        for cid in poisoned:
            old_encodings.put(cid, stale_marker)
            old_ancestors.put(cid, stale_marker)
        assert controller.promote()["promoted"]
        # The cache *objects* were replaced, not cleared: a racing
        # get_or_create still running against the old model lands its
        # stale entry in the orphaned object, never the live one.
        assert linker._encoding_cache is not old_encodings
        assert linker._ancestor_cache is not old_ancestors
        for cid in poisoned:
            assert cid not in linker._encoding_cache
            assert cid not in linker._ancestor_cache
        # Fresh scores match a reference linker built directly over the
        # new model — nothing served came from the poisoned old cache.
        from repro.core.config import LinkerConfig
        from repro.core.linker import NeuralConceptLinker

        reference = NeuralConceptLinker(
            retrained_model,
            ontology,
            LinkerConfig(k=5),
            kb=kb,
        )
        for query in SERVING_QUERIES[:4]:
            served = service.link(query)
            expected = reference.link(query)
            assert [c.cid for c in served.ranked] == [
                c.cid for c in expected.ranked
            ]
            for got, want in zip(served.ranked, expected.ranked):
                assert got.log_prob == pytest.approx(want.log_prob, abs=1e-9)


class TestRollback:
    def test_gate_failure_rolls_back_automatically(
        self, stack, candidate_factory, degraded_model
    ):
        """The shadow gate demonstrably blocks a degraded candidate."""
        import dataclasses

        service, controller, _ = stack
        controller.swapper.config = dataclasses.replace(
            controller.swapper.config, min_agreement=0.9
        )
        before = service.linker.model_fingerprint
        stage_candidate(controller, candidate_factory, degraded_model)
        feed(service, repeat=2)
        report = controller.promote()
        assert not report["promoted"]
        assert report["reason"].startswith("gate:")
        assert service.linker.model_fingerprint == before
        stats = controller.swapper.stats()
        assert stats["state"] == "idle"
        assert stats["rollbacks"] == 1
        assert report["reason"] in stats["rollback_reasons"]
        assert stats["last_rollback_reason"] == report["reason"]
        # Rollback reason codes surface through the /v1/metrics payload.
        snapshot = service.snapshot()
        assert (
            snapshot["lifecycle"]["swap"]["rollback_reasons"][report["reason"]]
            == 1
        )
        assert (
            snapshot["counters"][f"lifecycle_rollback.{report['reason']}"] == 1
        )

    def test_too_few_shadow_samples_blocks(
        self, stack, candidate_factory, retrained_model
    ):
        _, controller, _ = stack
        stage_candidate(controller, candidate_factory, retrained_model)
        report = controller.promote()  # no traffic mirrored at all
        assert not report["promoted"]
        assert report["reason"] == "gate:samples"

    def test_force_promote_skips_gates(
        self, stack, candidate_factory, retrained_model
    ):
        service, controller, _ = stack
        before = service.linker.model_fingerprint
        stage_candidate(controller, candidate_factory, retrained_model)
        report = controller.promote(force=True)
        assert report["promoted"]
        assert service.linker.model_fingerprint != before

    def test_crash_mid_publish_rolls_back_byte_identical(
        self, stack, candidate_factory, retrained_model
    ):
        """Fault-injected promotion failure: crash inside the staged
        publish (second ``lifecycle.promote`` hit).  The pre-swap model
        must keep serving and the deployment directory must be
        byte-identical."""
        service, controller, active = stack
        before_fingerprint = service.linker.model_fingerprint
        before_bytes = directory_digest(active)
        stage_candidate(controller, candidate_factory, retrained_model)
        feed(service, repeat=2)
        with fault_injection(
            {"lifecycle.promote": FaultSpec(action="raise", after=1)}
        ) as plan:
            report = controller.promote()
            assert plan.fired("lifecycle.promote") == 1
        assert not report["promoted"]
        assert report["reason"] == "fault:InjectedFault"
        assert service.linker.model_fingerprint == before_fingerprint
        assert directory_digest(active) == before_bytes
        # No staging residue parked next to the deployment.
        leftovers = [
            p.name
            for p in active.parent.iterdir()
            if p.name.startswith(".staging") or p.name.endswith(".backup")
        ]
        assert leftovers == []
        # The service still answers on the old engine.
        results = feed(service)
        assert all(not r.degraded for r in results)
        stats = controller.swapper.stats()
        assert stats["rollback_reasons"]["fault:InjectedFault"] == 1

    def test_rollback_probe_fires_after_pointer_restored(
        self, stack, candidate_factory, degraded_model
    ):
        import dataclasses

        service, controller, _ = stack
        controller.swapper.config = dataclasses.replace(
            controller.swapper.config, min_agreement=0.9
        )
        stage_candidate(controller, candidate_factory, degraded_model)
        feed(service, repeat=2)
        with fault_injection(
            {"lifecycle.rollback": FaultSpec(action="delay", delay_s=0.0)}
        ) as plan:
            report = controller.promote()
        assert not report["promoted"]
        assert plan.fired("lifecycle.rollback") == 1

    def test_manual_rollback_restores_previous_generation(
        self, stack, candidate_factory, retrained_model
    ):
        service, controller, _ = stack
        before = service.linker.model_fingerprint
        feed(service)
        stage_candidate(controller, candidate_factory, retrained_model)
        feed(service, repeat=2)
        assert controller.promote()["promoted"]
        promoted = service.linker.model_fingerprint
        assert promoted != before
        report = controller.rollback("manual")
        assert report["restored"]
        assert service.linker.model_fingerprint == before
        results = feed(service)
        assert all(not r.degraded for r in results)

    def test_rollback_with_nothing_staged_raises(self, stack):
        _, controller, _ = stack
        with pytest.raises(LifecycleError, match="nothing to roll back"):
            controller.rollback("manual")
