"""ShadowScorer: agreement, latency, error isolation, queue bounds."""

import pytest

from repro.core.config import LinkerConfig
from repro.core.linker import NeuralConceptLinker
from repro.lifecycle.shadow import ShadowScorer
from repro.utils.faults import FaultSpec, fault_injection

from tests.lifecycle.conftest import SERVING_QUERIES


@pytest.fixture
def primary_linker(lifecycle_base):
    ontology, kb, model, _, _ = lifecycle_base
    return NeuralConceptLinker(model, ontology, LinkerConfig(k=5), kb=kb)


def mirror_all(scorer, linker, queries):
    """Score ``queries`` on the primary and mirror each onto ``scorer``."""
    for query in queries:
        result = linker.link(query)
        top = result.ranked[0] if result.ranked else None
        scorer.submit(
            query=query,
            k=5,
            primary_top_cid=top.cid if top else None,
            primary_log_prob=top.log_prob if top else float("-inf"),
            primary_seconds=max(result.timing.total(), 1e-6),
        )


class TestAgreement:
    def test_identical_model_agrees_everywhere(self, primary_linker):
        scorer = ShadowScorer(primary_linker)
        try:
            mirror_all(scorer, primary_linker, SERVING_QUERIES)
            scorer.drain()
            report = scorer.report()
        finally:
            scorer.close()
        assert report["samples"] == len(SERVING_QUERIES)
        assert report["agreement"] == 1.0
        assert report["mean_log_prob_delta"] == pytest.approx(0.0, abs=1e-9)
        assert report["errors"] == 0

    def test_degraded_candidate_disagrees(
        self, lifecycle_base, primary_linker, degraded_model
    ):
        ontology, kb, _, _, _ = lifecycle_base
        candidate = NeuralConceptLinker(
            degraded_model, ontology, LinkerConfig(k=5), kb=kb
        )
        scorer = ShadowScorer(candidate)
        try:
            mirror_all(scorer, primary_linker, SERVING_QUERIES)
            scorer.drain()
            report = scorer.report()
        finally:
            scorer.close()
        assert report["samples"] == len(SERVING_QUERIES)
        # Random weights cannot reproduce the trained ranking.
        assert report["agreement"] < 1.0


class TestIsolation:
    def test_injected_fault_counts_as_shadow_error(self, primary_linker):
        scorer = ShadowScorer(primary_linker)
        try:
            with fault_injection(
                {"lifecycle.shadow": FaultSpec(action="raise", times=2)}
            ):
                mirror_all(scorer, primary_linker, SERVING_QUERIES[:4])
                scorer.drain()
            report = scorer.report()
        finally:
            scorer.close()
        assert report["errors"] == 2
        assert report["samples"] == 2

    def test_delay_fault_inflates_latency_ratio(self, primary_linker):
        scorer = ShadowScorer(primary_linker)
        try:
            with fault_injection(
                {
                    "lifecycle.shadow": FaultSpec(
                        action="delay", delay_s=0.05, times=-1
                    )
                }
            ) as plan:
                mirror_all(scorer, primary_linker, SERVING_QUERIES[:4])
                scorer.drain()
                assert plan.fired("lifecycle.shadow") == 4
            report = scorer.report()
        finally:
            scorer.close()
        # 50 ms of injected stall per shadow execution dwarfs the
        # millisecond-scale primary latency on this tiny model.
        assert report["latency_ratio"] > 5.0

    def test_sample_every_thins_the_mirror(self, primary_linker):
        scorer = ShadowScorer(primary_linker, sample_every=2)
        try:
            mirror_all(scorer, primary_linker, SERVING_QUERIES)
            scorer.drain()
            report = scorer.report()
        finally:
            scorer.close()
        assert report["seen"] == len(SERVING_QUERIES)
        assert report["samples"] == len(SERVING_QUERIES) // 2

    def test_full_queue_drops_instead_of_blocking(self, primary_linker):
        scorer = ShadowScorer(primary_linker, queue_capacity=1)
        try:
            # Stall the worker on its first item so the queue backs up.
            with fault_injection(
                {
                    "lifecycle.shadow": FaultSpec(
                        action="delay", delay_s=0.3, times=1
                    )
                }
            ):
                mirror_all(scorer, primary_linker, SERVING_QUERIES)
                scorer.drain(timeout=10.0)
            report = scorer.report()
        finally:
            scorer.close()
        assert report["dropped"] >= 1
        assert report["samples"] + report["dropped"] == report["seen"]

    def test_submit_after_close_is_refused(self, primary_linker):
        scorer = ShadowScorer(primary_linker)
        scorer.close()
        assert not scorer.submit("q", 5, "C1", -1.0, 0.001)
        scorer.close()  # idempotent
