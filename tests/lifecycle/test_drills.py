"""Opt-in lifecycle drills (``-m faults``): the full closed loop under
load, plus delay/crash fault campaigns at the lifecycle probe sites.

Excluded from the default run by the ``-m 'not faults'`` addopts; CI
runs them via ``tools/run_tier1.sh --faults``.
"""

import pytest

from repro.eval.experiments.lifecycle_drill import run_lifecycle_drill
from repro.utils.faults import FaultSpec, fault_injection

pytestmark = pytest.mark.faults


def test_closed_loop_drill_promotes_with_full_availability(tmp_path):
    report = run_lifecycle_drill(
        scale="tiny", seed=7, workdir=tmp_path, clients=2
    )
    assert report["promoted"], report["promotion"]
    assert report["fingerprint_changed"]
    window = report["swap_window"]
    assert window["requests"] > 0
    assert window["failures"] == 0
    assert window["degraded"] == 0
    assert window["availability"] == 1.0
    assert report["status"]["swap"]["rollbacks"] == 0


def test_shadow_delay_drill_trips_the_latency_gate(tmp_path):
    """Budget drill: a 400 ms stall injected at every ``lifecycle.shadow``
    execution pushes the latency ratio decisively past the drill's gate
    (50× of a ~2 ms primary: sleep dominates, so the ratio lands around
    200× regardless of machine load), so promotion is refused — and the
    swap window still drops nothing.  Enough samples score within the
    shadow drain window to clear the sample-count gate, but the thinned
    sample may legitimately trip the agreement gate first, so the
    latency verdict is asserted on ``gate_failures`` membership."""
    with fault_injection(
        {
            "lifecycle.shadow": FaultSpec(
                action="delay", delay_s=0.4, times=-1
            )
        }
    ) as plan:
        report = run_lifecycle_drill(
            scale="tiny", seed=7, workdir=tmp_path, clients=1
        )
        assert plan.fired("lifecycle.shadow") > 0
    assert not report["promoted"]
    promotion = report["promotion"]
    assert promotion["reason"].startswith("gate:")
    assert "gate:latency" in promotion["gate_failures"]
    assert promotion["shadow"]["latency_ratio"] > 50.0
    assert not report["fingerprint_changed"]
    assert report["swap_window"]["failures"] == 0
    assert report["swap_window"]["degraded"] == 0
    assert (
        report["status"]["swap"]["rollback_reasons"][promotion["reason"]] == 1
    )


def test_crash_at_promote_rolls_back_and_keeps_serving(tmp_path):
    """Crash mid-publish (second ``lifecycle.promote`` hit): the drill
    must auto-roll-back and finish with the pre-swap model serving."""
    with fault_injection(
        {"lifecycle.promote": FaultSpec(action="raise", after=1)}
    ) as plan:
        report = run_lifecycle_drill(
            scale="tiny", seed=7, workdir=tmp_path, clients=1
        )
        assert plan.fired("lifecycle.promote") == 1
    assert not report["promoted"]
    assert report["promotion"]["reason"] == "fault:InjectedFault"
    assert not report["fingerprint_changed"]
    assert report["fingerprint_after"] == report["fingerprint_before"]
    assert report["swap_window"]["failures"] == 0
    assert (
        report["status"]["swap"]["rollback_reasons"]["fault:InjectedFault"]
        == 1
    )
