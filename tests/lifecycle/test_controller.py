"""LifecycleController: resolve → retrain → compile, plus the admin API."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.serving.server import create_server, run_server
from repro.utils.errors import DataError

from tests.lifecycle.conftest import SERVING_QUERIES


def _post(base, path, payload, timeout=30.0):
    body = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        base + path, data=body, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as error:
        return error.code, json.load(error)


def _get(base, path, timeout=30.0):
    try:
        with urllib.request.urlopen(base + path, timeout=timeout) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as error:
        return error.code, json.load(error)


@pytest.fixture
def http(stack):
    """The lifecycle stack behind a real ephemeral-port HTTP server."""
    service, controller, _ = stack
    server = create_server(service, port=0)
    thread = threading.Thread(
        target=run_server,
        args=(server,),
        kwargs={"install_signal_handlers": False},
        daemon=True,
    )
    thread.start()
    base = f"http://127.0.0.1:{server.port}"
    yield base, service, controller
    server.shutdown()
    thread.join(5.0)


class TestClosedLoop:
    def test_traffic_fills_pool_via_service(self, stack):
        service, controller, _ = stack
        for query in SERVING_QUERIES:
            service.link(query)
        # PERMISSIVE thresholds (loss 1.0 / margin 5.0) classify most of
        # the canned traffic as uncertain on the tiny model.
        assert controller.status()["pool"]["observed"] == len(SERVING_QUERIES)
        assert len(controller.pool) > 0

    def test_resolve_stages_pairs_and_extends_kb(self, stack):
        _, controller, _ = stack
        before = controller.kb.alias_count()
        controller.resolve("swollen ankles after surgery", "N18.9")
        assert controller.staged_pairs == 1
        assert controller.kb.alias_count() == before + 1
        with pytest.raises(DataError):
            controller.resolve("   ", "N18.9")

    def test_retrain_produces_promotable_candidate(self, stack):
        service, controller, active = stack
        for query in SERVING_QUERIES:
            service.link(query)
        for item in controller.pool.drain():
            top = item.top_cid
            controller.resolve(item.query, top)
        if not controller.retrain_due:
            for i in range(controller.config.retrain_after):
                controller.resolve(f"synthetic uncertain phrase {i}", "R10.9")
        assert controller.retrain_due
        model = controller.retrain()
        assert model is not service.linker.model
        artifact_dir = controller.compile_candidate()
        assert (artifact_dir / "manifest.json").exists()
        controller.stage(model=model, artifact_dir=artifact_dir)
        for query in SERVING_QUERIES:
            service.link(query)
        report = controller.promote()
        assert report["promoted"], report
        assert controller.status()["retrains"] == 1
        assert controller.status()["compiles"] == 1

    def test_retrain_without_pairs_is_rejected(self, stack):
        _, controller, _ = stack
        with pytest.raises(DataError):
            controller.retrain()

    def test_status_shape(self, stack):
        _, controller, _ = stack
        status = controller.status()
        assert status["state"] == "idle"
        assert status["staged_pairs"] == 0
        assert not status["retrain_due"]
        assert status["swap"]["promotions"] == 0
        assert status["config"]["retrain_after"] == 4


class TestAdminEndpoints:
    def test_lifecycle_status_endpoint(self, http):
        base, service, _ = http
        for query in SERVING_QUERIES[:4]:
            service.link(query)
        status, payload = _get(base, "/v1/admin/lifecycle")
        assert status == 200
        body = payload["lifecycle"]
        assert body["state"] == "idle"
        assert body["pool"]["observed"] == 4

    def test_swap_promote_without_candidate_conflicts(self, http):
        base, _, _ = http
        status, payload = _post(base, "/v1/admin/swap", {"action": "promote"})
        assert status == 409
        assert payload["error"]["code"] == "no_candidate"

    def test_swap_rejects_unknown_action(self, http):
        base, _, _ = http
        status, payload = _post(base, "/v1/admin/swap", {"action": "explode"})
        assert status == 400

    def test_swap_promote_blocked_by_gate_returns_409(
        self, http, candidate_factory, degraded_model
    ):
        import dataclasses

        base, service, controller = http
        controller.swapper.config = dataclasses.replace(
            controller.swapper.config, min_agreement=0.9
        )
        controller.stage(
            model=degraded_model,
            artifact_dir=candidate_factory(degraded_model),
        )
        for query in SERVING_QUERIES:
            service.link(query)
        status, payload = _post(base, "/v1/admin/swap", {"action": "promote"})
        assert status == 409
        assert payload["error"]["code"] == "swap_blocked"
        assert payload["swap"]["reason"].startswith("gate:")

    def test_swap_promote_and_rollback_over_http(
        self, http, candidate_factory, retrained_model
    ):
        base, service, controller = http
        before = service.linker.model_fingerprint
        controller.stage(
            model=retrained_model,
            artifact_dir=candidate_factory(retrained_model),
        )
        for query in SERVING_QUERIES:
            service.link(query)
        status, payload = _post(base, "/v1/admin/swap", {"action": "promote"})
        assert status == 200
        assert payload["swap"]["promoted"]
        assert service.linker.model_fingerprint != before
        status, payload = _post(
            base, "/v1/admin/swap", {"action": "rollback", "reason": "drill"}
        )
        assert status == 200
        assert payload["swap"]["restored"]
        assert service.linker.model_fingerprint == before
        # The reason code lands in the metrics payload.
        status, payload = _get(base, "/v1/metrics")
        assert status == 200
        assert payload["lifecycle"]["swap"]["rollback_reasons"]["drill"] == 1

    def test_lifecycle_endpoint_404_when_disabled(self, lifecycle_base):
        from repro.core.config import LinkerConfig, ServingConfig
        from repro.core.linker import NeuralConceptLinker
        from repro.serving.service import LinkingService

        ontology, kb, model, _, _ = lifecycle_base
        linker = NeuralConceptLinker(model, ontology, LinkerConfig(k=5), kb=kb)
        service = LinkingService(linker, ServingConfig(warm_on_start=False))
        service.start(wait=True)
        server = create_server(service, port=0)
        thread = threading.Thread(
            target=run_server,
            args=(server,),
            kwargs={"install_signal_handlers": False},
            daemon=True,
        )
        thread.start()
        base = f"http://127.0.0.1:{server.port}"
        try:
            status, payload = _get(base, "/v1/admin/lifecycle")
            assert status == 404
            assert payload["error"]["code"] == "lifecycle_disabled"
            status, payload = _post(
                base, "/v1/admin/swap", {"action": "promote"}
            )
            assert status == 404
        finally:
            server.shutdown()
            thread.join(5.0)
            service.stop()
