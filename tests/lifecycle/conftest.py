"""Lifecycle-test fixtures: a served pipeline plus candidate builders.

Training is package-scoped (the expensive part); each test gets its own
*copies* of the compiled artifacts and its own service/controller, so a
promoted or corrupted deployment never leaks between tests.
"""

import shutil

import pytest

from repro.core.comaid import ComAid
from repro.core.config import (
    ComAidConfig,
    LifecycleConfig,
    LinkerConfig,
    ServingConfig,
    TrainingConfig,
)
from repro.core.linker import NeuralConceptLinker
from repro.core.trainer import ComAidTrainer
from repro.engine.compile import compile_artifact
from repro.lifecycle import LifecycleController
from repro.serving.service import LinkingService

from tests.serving.conftest import (  # noqa: F401 - re-exported fixtures
    SERVING_QUERIES,
    build_figure1_ontology,
    build_figure3_kb,
)

#: Gates relaxed for a fine-tuned candidate: it legitimately diverges
#: on the queries it was corrected on, and single-query shadow batches
#: cost more than coalesced primary batches.
PERMISSIVE = LifecycleConfig(
    enabled=True,
    pool_capacity=32,
    loss_threshold=1.0,
    margin_threshold=5.0,
    retrain_after=4,
    retrain_epochs=2,
    min_shadow_samples=4,
    min_agreement=0.25,
    max_log_prob_drop=20.0,
    max_latency_ratio=200.0,
)


def train_model(kb, rng=7, epochs=8):
    trainer = ComAidTrainer(
        ComAidConfig(dim=10, beta=2),
        TrainingConfig(
            epochs=epochs, batch_size=4, optimizer="adagrad", learning_rate=0.2
        ),
        rng=rng,
    )
    model = trainer.fit(kb)
    return trainer, model


@pytest.fixture(scope="package")
def lifecycle_base(tmp_path_factory):
    """``(ontology, kb, model, trainer, pristine_active_dir)`` trained once."""
    ontology = build_figure1_ontology()
    kb = build_figure3_kb(ontology)
    trainer, model = train_model(kb)
    active = tmp_path_factory.mktemp("lifecycle") / "active"
    compile_artifact(
        active, model, ontology, kb=kb, metadata={"generation": "seed"}
    )
    return ontology, kb, model, trainer, active


@pytest.fixture
def stack(lifecycle_base, tmp_path):
    """A fresh started service + controller over private artifact copies.

    Yields ``(service, controller, active_dir)``; the service is
    stopped afterwards even if the test fails mid-swap.
    """
    ontology, kb, model, trainer, pristine = lifecycle_base
    active = tmp_path / "active"
    shutil.copytree(pristine, active)
    linker = NeuralConceptLinker(
        model,
        ontology,
        LinkerConfig(k=5, artifact_dir=str(active)),
        kb=kb,
    )
    service = LinkingService(linker, ServingConfig(warm_on_start=False))
    controller = LifecycleController(
        service,
        trainer,
        kb,
        config=PERMISSIVE,
        workdir=tmp_path,
        active_dir=active,
        seed=3,
    )
    service.attach_lifecycle(controller)
    service.start(wait=True)
    yield service, controller, active
    service.stop()


@pytest.fixture
def candidate_factory(lifecycle_base, tmp_path):
    """Compile a candidate artifact from any model into a private dir."""
    ontology, kb, _, _, _ = lifecycle_base
    counter = {"n": 0}

    def factory(model, name=None):
        counter["n"] += 1
        target = tmp_path / (name or f"candidate-{counter['n']}")
        compile_artifact(target, model, ontology, kb=kb)
        return target

    return factory


@pytest.fixture
def degraded_model(lifecycle_base):
    """An *untrained* model with the served architecture and vocabulary.

    Random weights: it disagrees with the incumbent almost everywhere,
    which is exactly what the shadow gate must block.
    """
    _, _, model, _, _ = lifecycle_base
    return ComAid(model.config, model.vocab, rng=99)


@pytest.fixture
def retrained_model(lifecycle_base):
    """A genuine fine-tune of the serving model (a promotable candidate)."""
    _, kb, model, trainer, _ = lifecycle_base
    clone = ComAid(model.config, model.vocab, rng=0)
    clone.load_state_dict(model.state_dict())
    trainer.adopt(clone, kb.ontology)
    trainer.continue_training(kb.training_pairs()[:6], epochs=1)
    return clone
