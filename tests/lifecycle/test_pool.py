"""UncertaintyPool: criteria, dedup, reservoir bounds, determinism."""

import pytest

from repro.core.linker import LinkResult, RankedConcept
from repro.lifecycle.pool import UncertaintyPool
from repro.utils.errors import ConfigurationError


def result(query, ranked, degraded=False):
    return LinkResult(
        query=query,
        tokens=tuple(query.split()),
        rewritten_tokens=tuple(query.split()),
        rewrites=(),
        ranked=tuple(ranked),
        degraded=degraded,
        degraded_reason="error: boom" if degraded else None,
    )


def confident(query="easy", log_prob=-0.5):
    """Top loss below threshold, wide margin: never pooled."""
    return result(
        query,
        [
            RankedConcept("C1", log_prob, 1.0),
            RankedConcept("C2", log_prob - 10.0, 0.5),
        ],
    )


def lossy(query="hard", loss=15.0):
    return result(
        query,
        [
            RankedConcept("C1", -loss, 1.0),
            RankedConcept("C2", -loss - 10.0, 0.5),
        ],
    )


def tied(query="tied"):
    return result(
        query,
        [RankedConcept("C1", -1.0, 1.0), RankedConcept("C2", -1.1, 0.9)],
    )


class TestCriteria:
    def test_high_loss_pools_with_loss_reason(self):
        pool = UncertaintyPool(loss_threshold=10.0)
        assert pool.observe(lossy()) == "loss"
        [item] = pool.items()
        assert item.reason == "loss"
        assert item.top_cid == "C1"
        assert item.top_loss == pytest.approx(15.0)

    def test_narrow_margin_pools_with_margin_reason(self):
        pool = UncertaintyPool(loss_threshold=10.0, margin_threshold=0.5)
        assert pool.observe(tied()) == "margin"
        [item] = pool.items()
        assert item.reason == "margin"
        assert item.margin == pytest.approx(0.1)

    def test_confident_result_is_not_pooled(self):
        pool = UncertaintyPool(loss_threshold=10.0, margin_threshold=0.5)
        assert pool.observe(confident()) is None
        assert len(pool) == 0

    def test_degraded_results_never_pool(self):
        pool = UncertaintyPool(loss_threshold=0.0, margin_threshold=100.0)
        assert pool.observe(result("q", [], degraded=True)) is None
        degraded_but_ranked = result(
            "q2", [RankedConcept("C1", float("-inf"), 1.0)], degraded=True
        )
        assert pool.observe(degraded_but_ranked) is None
        assert len(pool) == 0

    def test_empty_ranking_is_not_pooled(self):
        pool = UncertaintyPool(loss_threshold=0.0)
        assert pool.observe(result("nothing", [])) is None

    def test_single_candidate_has_infinite_margin(self):
        pool = UncertaintyPool(loss_threshold=10.0, margin_threshold=0.5)
        only = result("solo", [RankedConcept("C1", -1.0, 1.0)])
        assert pool.observe(only) is None


class TestDedupAndDrain:
    def test_duplicate_query_increments_hits(self):
        pool = UncertaintyPool(loss_threshold=10.0)
        pool.observe(lossy("repeat"))
        pool.observe(lossy("repeat"))
        pool.observe(lossy("repeat"))
        [item] = pool.items()
        assert item.hits == 3
        assert len(pool) == 1
        assert pool.stats()["duplicates"] == 2

    def test_drain_empties_and_restarts_reservoir(self):
        pool = UncertaintyPool(capacity=4, loss_threshold=10.0)
        for i in range(4):
            pool.observe(lossy(f"q{i}"))
        drained = pool.drain()
        assert {item.query for item in drained} == {"q0", "q1", "q2", "q3"}
        assert len(pool) == 0
        # Post-drain admissions start a fresh reservoir epoch.
        pool.observe(lossy("fresh"))
        assert len(pool) == 1


class TestReservoir:
    def test_capacity_is_a_hard_bound(self):
        pool = UncertaintyPool(capacity=4, loss_threshold=10.0, seed=1)
        for i in range(50):
            pool.observe(lossy(f"q{i}"))
        assert len(pool) == 4
        stats = pool.stats()
        assert stats["observed"] == 50
        # 4 initial admissions; each later arrival either replaces an
        # incumbent (one eviction) or is rejected — 46 drops either way.
        assert stats["dropped"] == 46

    def test_reservoir_is_seed_deterministic(self):
        def fill(seed):
            pool = UncertaintyPool(capacity=4, loss_threshold=10.0, seed=seed)
            for i in range(40):
                pool.observe(lossy(f"q{i}"))
            return sorted(item.query for item in pool.items())

        assert fill(5) == fill(5)

    def test_late_items_can_still_enter(self):
        pool = UncertaintyPool(capacity=8, loss_threshold=10.0, seed=2)
        for i in range(200):
            pool.observe(lossy(f"q{i}"))
        survivors = {item.query for item in pool.items()}
        # Uniform sampling over 200 items: overwhelmingly unlikely the
        # pool is exactly the first 8.
        assert survivors != {f"q{i}" for i in range(8)}

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            UncertaintyPool(capacity=0)
