"""Tests for the knowledge base."""

import pytest

from repro.kb.knowledge_base import KnowledgeBase, TrainingPair
from repro.utils.errors import DataError


class TestAliasManagement:
    def test_add_and_list(self, figure1_ontology):
        kb = KnowledgeBase(figure1_ontology)
        assert kb.add_alias("R10.0", "Acute Abdominal Syndrome")
        assert kb.aliases_of("R10.0") == ("acute abdominal syndrome",)

    def test_canonical_is_rejected_per_footnote9(self, figure1_ontology):
        """Footnote 9: a pair <acute abdomen, acute abdomen> does not
        contribute, so the canonical text is not stored as an alias."""
        kb = KnowledgeBase(figure1_ontology)
        assert not kb.add_alias("R10.0", "acute abdomen")
        assert not kb.add_alias("R10.0", "ACUTE, abdomen")  # normalises equal
        assert kb.aliases_of("R10.0") == ()

    def test_duplicates_skipped(self, figure1_ontology):
        kb = KnowledgeBase(figure1_ontology)
        assert kb.add_alias("D53.2", "vitamin c deficiency anemia")
        assert not kb.add_alias("D53.2", "Vitamin C Deficiency Anemia")
        assert kb.alias_count() == 1

    def test_unknown_concept(self, figure1_ontology):
        kb = KnowledgeBase(figure1_ontology)
        with pytest.raises(KeyError):
            kb.add_alias("Z99", "anything")

    def test_empty_alias(self, figure1_ontology):
        kb = KnowledgeBase(figure1_ontology)
        with pytest.raises(DataError):
            kb.add_alias("D50", ",;")

    def test_add_aliases_counts_stored(self, figure1_ontology):
        kb = KnowledgeBase(figure1_ontology)
        stored = kb.add_aliases(
            "D53.2", ["scorbutic anemia", "vitamin c def anemia", "vitamin c def anemia"]
        )
        assert stored == 1  # first is canonical, third is duplicate


class TestTrainingPairs:
    def test_pairs_shape(self, figure3_kb):
        pairs = figure3_kb.training_pairs()
        assert all(isinstance(pair, TrainingPair) for pair in pairs)
        d50 = [pair for pair in pairs if pair.cid == "D50.0"]
        assert d50[0].canonical == (
            "iron deficiency anemia secondary to blood loss"
        )
        assert d50[0].alias == "anemia chronic blood loss"

    def test_restricted_to_cids(self, figure3_kb):
        pairs = figure3_kb.training_pairs(cids=["D53.0"])
        assert {pair.cid for pair in pairs} == {"D53.0"}
        assert len(pairs) == 2

    def test_labeled_snippets_iterates_all(self, figure3_kb):
        snippets = list(figure3_kb.labeled_snippets())
        assert len(snippets) == figure3_kb.alias_count()

    def test_concepts_with_aliases(self, figure3_kb):
        assert "D50.0" in figure3_kb.concepts_with_aliases()
        assert "D50" not in figure3_kb.concepts_with_aliases()


class TestPersistence:
    def test_json_roundtrip(self, figure1_ontology, figure3_kb, tmp_path):
        path = tmp_path / "kb.json"
        figure3_kb.save_json(path)
        loaded = KnowledgeBase.load_json(figure1_ontology, path)
        assert loaded.to_dict() == figure3_kb.to_dict()

    def test_bad_json(self, figure1_ontology, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("nope", encoding="utf-8")
        with pytest.raises(DataError):
            KnowledgeBase.load_json(figure1_ontology, path)
