"""Tests for the snippet corpus."""

import pytest

from repro.kb.corpus import SnippetCorpus, TaggedSnippet
from repro.utils.errors import DataError


class TestTaggedSnippet:
    def test_words(self):
        snippet = TaggedSnippet("Iron Deficiency Anemia", cid="D50")
        assert snippet.words == ("iron", "deficiency", "anemia")

    def test_empty_rejected(self):
        with pytest.raises(DataError):
            TaggedSnippet(",;")


class TestSnippetCorpus:
    def test_dedupe_on_words_and_cid(self):
        corpus = SnippetCorpus()
        assert corpus.add("iron deficiency anemia", cid="D50")
        assert not corpus.add("Iron, Deficiency; Anemia", cid="D50")
        # Same words but untagged is a distinct entry (footnote 8).
        assert corpus.add("iron deficiency anemia", cid=None)
        assert len(corpus) == 2

    def test_tagged_untagged_views(self):
        corpus = SnippetCorpus()
        corpus.add("a b", cid="X")
        corpus.add("c d")
        assert len(corpus.tagged()) == 1
        assert len(corpus.untagged()) == 1

    def test_add_all_and_extend(self):
        corpus = SnippetCorpus()
        assert corpus.add_all(["a b", "c d", "a b"]) == 2
        other = SnippetCorpus()
        other.add("e f")
        other.add("a b")
        assert corpus.extend(other) == 1
        assert len(corpus) == 3

    def test_getitem_and_iter(self):
        corpus = SnippetCorpus()
        corpus.add("one two")
        assert corpus[0].text == "one two"
        assert [s.text for s in corpus] == ["one two"]

    def test_token_sequences(self):
        corpus = SnippetCorpus()
        corpus.add("a b")
        assert corpus.token_sequences() == [("a", "b")]

    def test_vocabulary_words_sorted_unique(self):
        corpus = SnippetCorpus()
        corpus.add("b a")
        corpus.add("a c")
        assert corpus.vocabulary_words() == ["a", "b", "c"]


class TestSubsample:
    def test_fraction_size(self):
        corpus = SnippetCorpus()
        for index in range(100):
            corpus.add(f"word{index} extra")
        half = corpus.subsample(0.5, rng=1)
        assert len(half) == 50

    def test_deterministic(self):
        corpus = SnippetCorpus()
        for index in range(30):
            corpus.add(f"word{index} extra")
        a = [s.text for s in corpus.subsample(0.4, rng=7)]
        b = [s.text for s in corpus.subsample(0.4, rng=7)]
        assert a == b

    def test_preserves_tags(self):
        corpus = SnippetCorpus()
        corpus.add("tagged snippet", cid="X")
        sampled = corpus.subsample(1.0, rng=0)
        assert sampled[0].cid == "X"

    def test_invalid_fraction(self):
        corpus = SnippetCorpus()
        corpus.add("a b")
        with pytest.raises(ValueError):
            corpus.subsample(0.0)
        with pytest.raises(ValueError):
            corpus.subsample(1.5)
