"""Tests for the CBOW trainer."""

import numpy as np
import pytest

from repro.embeddings.cbow import CbowConfig, CbowTrainer
from repro.utils.errors import ConfigurationError, DataError


def toy_sequences():
    # Two tight topical clusters: (kidney, renal, disease) and
    # (anemia, iron, deficiency) — words within a cluster co-occur.
    rng = np.random.default_rng(0)
    kidney = ["kidney", "renal", "disease", "chronic"]
    anemia = ["anemia", "iron", "deficiency", "blood"]
    sequences = []
    for _ in range(120):
        cluster = kidney if rng.random() < 0.5 else anemia
        picks = rng.choice(len(cluster), size=3, replace=False)
        sequences.append([cluster[int(i)] for i in picks])
    return sequences


class TestConfig:
    def test_defaults_follow_paper(self):
        config = CbowConfig()
        # Appendix B.2: window 10, NCE/negatives 10, lr 0.05.
        assert config.window == 10
        assert config.negatives == 10
        assert config.learning_rate == 0.05

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(dim=0),
            dict(window=0),
            dict(negatives=0),
            dict(epochs=0),
            dict(learning_rate=0.0),
            dict(min_count=0),
            dict(subsample=-1.0),
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            CbowConfig(**kwargs)


class TestTraining:
    def test_clusters_separate(self):
        config = CbowConfig(
            dim=16, window=4, negatives=5, epochs=20, learning_rate=0.1,
            subsample=0.0,
        )
        trainer = CbowTrainer(config, rng=1).fit(toy_sequences())

        def cos(a, b):
            va, vb = trainer.vector_of(a), trainer.vector_of(b)
            return float(
                va @ vb / (np.linalg.norm(va) * np.linalg.norm(vb) + 1e-12)
            )

        within = cos("kidney", "renal")
        across = cos("kidney", "anemia")
        assert within > across

    def test_deterministic(self):
        config = CbowConfig(dim=8, window=3, negatives=3, epochs=2)
        a = CbowTrainer(config, rng=5).fit(toy_sequences())
        b = CbowTrainer(config, rng=5).fit(toy_sequences())
        np.testing.assert_array_equal(a.input_vectors, b.input_vectors)

    def test_min_count_prunes(self):
        config = CbowConfig(dim=4, window=2, negatives=2, epochs=1, min_count=2)
        sequences = [["common", "common", "rare"], ["common", "other", "other"]]
        trainer = CbowTrainer(config, rng=0).fit(sequences)
        assert "rare" not in trainer.vocab

    def test_empty_corpus_raises(self):
        config = CbowConfig(dim=4, epochs=1)
        with pytest.raises(DataError):
            CbowTrainer(config, rng=0).fit([])

    def test_all_singletons_raises(self):
        config = CbowConfig(dim=4, epochs=1)
        with pytest.raises(DataError):
            CbowTrainer(config, rng=0).fit([["lonely"]])

    def test_vector_of_before_fit_raises(self):
        config = CbowConfig(dim=4, epochs=1)
        with pytest.raises(DataError):
            CbowTrainer(config, rng=0).vector_of("x")

    def test_vector_shapes(self):
        config = CbowConfig(dim=8, window=3, negatives=3, epochs=1)
        trainer = CbowTrainer(config, rng=0).fit(toy_sequences())
        assert trainer.input_vectors.shape == (len(trainer.vocab), 8)
        assert trainer.vector_of("kidney").shape == (8,)
        assert np.isfinite(trainer.input_vectors).all()
