"""Tests for WordVectors and pre-training orchestration."""

import numpy as np
import pytest

from repro.embeddings.pretrain import (
    pretrain_word_vectors,
    remove_common_directions,
)
from repro.embeddings.similarity import WordVectors
from repro.embeddings.cbow import CbowConfig
from repro.kb.corpus import SnippetCorpus
from repro.utils.errors import DataError


def toy_vectors():
    words = ["kidney", "renal", "anemia", "iron", "d50.0"]
    matrix = np.array(
        [
            [1.0, 0.0],
            [0.9, 0.1],
            [0.0, 1.0],
            [0.1, 0.9],
            [0.5, 0.5],
        ]
    )
    return WordVectors(words, matrix, tag_words=["d50.0"])


class TestWordVectors:
    def test_lookup(self):
        vectors = toy_vectors()
        np.testing.assert_array_equal(vectors.vector_of("kidney"), [1.0, 0.0])
        assert "kidney" in vectors
        assert "spleen" not in vectors
        with pytest.raises(KeyError):
            vectors.vector_of("spleen")

    def test_nearest_excludes_self_and_tags(self):
        vectors = toy_vectors()
        nearest = vectors.nearest("kidney", k=2)
        names = [name for name, _ in nearest]
        assert names[0] == "renal"
        assert "kidney" not in names
        assert "d50.0" not in names

    def test_nearest_restricted(self):
        vectors = toy_vectors()
        nearest = vectors.nearest("kidney", k=1, restrict_to={"anemia", "iron"})
        assert nearest[0][0] in {"anemia", "iron"}

    def test_cosine_symmetry(self):
        vectors = toy_vectors()
        assert vectors.cosine("kidney", "renal") == pytest.approx(
            vectors.cosine("renal", "kidney")
        )

    def test_nearest_to_vector_zero_norm(self):
        vectors = toy_vectors()
        results = vectors.nearest_to_vector(np.zeros(2), k=1)
        assert len(results) == 1  # degenerate but defined

    def test_as_matrix_with_zeros(self):
        vectors = toy_vectors()
        matrix = vectors.as_matrix(["kidney", "missing"], missing="zeros")
        np.testing.assert_array_equal(matrix[1], [0.0, 0.0])
        with pytest.raises(KeyError):
            vectors.as_matrix(["missing"])
        with pytest.raises(ValueError):
            vectors.as_matrix(["kidney"], missing="skip")

    def test_subset(self):
        vectors = toy_vectors()
        subset = vectors.subset(["anemia", "iron"])
        assert len(subset) == 2
        np.testing.assert_array_equal(
            subset.vector_of("iron"), vectors.vector_of("iron")
        )

    def test_duplicate_words_rejected(self):
        with pytest.raises(DataError):
            WordVectors(["a", "a"], np.zeros((2, 2)))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(DataError):
            WordVectors(["a"], np.zeros((2, 2)))


class TestRemoveCommonDirections:
    def test_centers_the_matrix(self):
        matrix = np.random.default_rng(0).normal(size=(20, 5)) + 10.0
        cleaned = remove_common_directions(matrix, components=0)
        np.testing.assert_allclose(cleaned.mean(axis=0), np.zeros(5), atol=1e-10)

    def test_removes_top_component(self):
        rng = np.random.default_rng(0)
        direction = rng.normal(size=5)
        direction /= np.linalg.norm(direction)
        matrix = rng.normal(size=(30, 5)) + 20 * rng.normal(size=(30, 1)) * direction
        cleaned = remove_common_directions(matrix, components=1)
        projections = cleaned @ direction
        assert np.abs(projections).max() < np.abs(matrix @ direction).max() / 5

    def test_negative_components_rejected(self):
        with pytest.raises(ValueError):
            remove_common_directions(np.zeros((2, 2)), components=-1)


class TestPretrainOrchestration:
    def build_corpus(self):
        corpus = SnippetCorpus()
        corpus.add("iron deficiency anemia", cid="D50.0")
        corpus.add("protein deficiency anemia", cid="D53.0")
        corpus.add("chronic kidney disease", cid="N18")
        corpus.add("fe def anemia")
        corpus.add("ckd stage five")
        corpus.add("renal disease chronic")
        return corpus

    def test_injected_tags_marked(self):
        vectors = pretrain_word_vectors(
            self.build_corpus(),
            CbowConfig(dim=8, window=3, negatives=3, epochs=2),
            rng=0,
        )
        assert "d50.0" in vectors.tag_words
        assert "d50.0" in vectors  # has a vector
        # Tag words never surface in nearest queries.
        names = [name for name, _ in vectors.nearest("anemia", k=len(vectors))]
        assert "d50.0" not in names

    def test_no_injection_has_no_tags(self):
        vectors = pretrain_word_vectors(
            self.build_corpus(),
            CbowConfig(dim=8, window=3, negatives=3, epochs=2),
            rng=0,
            inject=False,
        )
        assert vectors.tag_words == set()
        assert "d50.0" not in vectors

    def test_deterministic(self):
        config = CbowConfig(dim=8, window=3, negatives=3, epochs=2)
        a = pretrain_word_vectors(self.build_corpus(), config, rng=9)
        b = pretrain_word_vectors(self.build_corpus(), config, rng=9)
        np.testing.assert_array_equal(
            a.vector_of("anemia"), b.vector_of("anemia")
        )
