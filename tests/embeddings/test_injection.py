"""Tests for concept-id injection (paper Section 4.2)."""

import pytest

from repro.embeddings.injection import cid_token, inject_cid, injected_sequences
from repro.kb.corpus import SnippetCorpus


class TestInjectCid:
    def test_paper_example(self):
        # "protein deficiency anemia" labeled D53.0 becomes
        # "D53.0 protein D53.0 deficiency D53.0 anemia".
        result = inject_cid(["protein", "deficiency", "anemia"], "D53.0")
        assert result == [
            "d53.0", "protein", "d53.0", "deficiency", "d53.0", "anemia",
        ]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            inject_cid([], "D53.0")

    def test_cid_token_normalisation(self):
        assert cid_token("D50-D89") == "d50_d89"
        assert cid_token("N18.5") == "n18.5"


class TestInjectedSequences:
    def test_tagged_injected_untagged_unchanged(self):
        corpus = SnippetCorpus()
        corpus.add("protein deficiency anemia", cid="D53.0")
        corpus.add("vitamin c def anemia")  # genuinely unlabeled
        sequences, cid_tokens = injected_sequences(corpus)
        assert ["d53.0", "protein", "d53.0", "deficiency", "d53.0", "anemia"] in sequences
        assert ["vitamin", "c", "def", "anemia"] in sequences
        assert cid_tokens == {"d53.0"}

    def test_word_contexts_diverge_after_injection(self):
        """The point of injection: snippets of different concepts no
        longer share contexts even when they share words."""
        corpus = SnippetCorpus()
        corpus.add("protein deficiency anemia", cid="D53.0")
        corpus.add("iron deficiency anemia", cid="D50.0")
        sequences, _ = injected_sequences(corpus)
        first, second = sequences
        # Before injection, "deficiency anemia" co-occurs identically;
        # after, each word's neighbours include its own cid only.
        assert "d53.0" in first and "d53.0" not in second
        assert "d50.0" in second and "d50.0" not in first
