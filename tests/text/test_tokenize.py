"""Tests for snippet tokenisation and normalisation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text.tokenize import (
    Tokenizer,
    detokenize,
    normalize_text,
    shared_words,
    tokenize,
)


class TestNormalizeText:
    def test_lowercases(self):
        assert normalize_text("Chronic Kidney Disease") == "chronic kidney disease"

    def test_removes_paper_punctuation(self):
        # Footnote 9: ',' and ';' removed.
        assert normalize_text("anemia, chronic; severe") == "anemia chronic severe"

    def test_squeezes_whitespace(self):
        assert normalize_text("  a   b  ") == "a b"

    def test_parentheses_and_slashes(self):
        assert normalize_text("b/l (severe)") == "b l severe"


class TestTokenize:
    def test_paper_query_ckd5(self):
        assert tokenize("ckd 5") == ["ckd", "5"]

    def test_keeps_percent(self):
        assert tokenize("hypertension ef 75%") == ["hypertension", "ef", "75%"]

    def test_apostrophe_shorthand(self):
        # "2'" (clinical shorthand for secondary) keeps its digit.
        assert tokenize("fe def anemia 2' to menorrhagia") == [
            "fe", "def", "anemia", "2", "to", "menorrhagia",
        ]

    def test_empty_string(self):
        assert tokenize("") == []

    def test_punctuation_only(self):
        assert tokenize(",;:-()") == []

    @given(st.text(max_size=80))
    def test_never_raises_and_yields_nonempty_tokens(self, text):
        tokens = tokenize(text)
        assert all(token for token in tokens)

    @given(st.text(alphabet="abcdefghij ", min_size=1, max_size=40))
    def test_idempotent_on_clean_text(self, text):
        tokens = tokenize(text)
        assert tokenize(detokenize(tokens)) == tokens


class TestTokenizer:
    def test_stopword_removal(self):
        tokenizer = Tokenizer(remove_stopwords=True)
        assert tokenizer("pain in the abdomen") == ["pain", "abdomen"]

    def test_clinical_modifiers_are_not_stopwords(self):
        tokenizer = Tokenizer(remove_stopwords=True)
        assert "chronic" in tokenizer("chronic pain of the knee")

    def test_drop_numbers(self):
        tokenizer = Tokenizer(keep_numbers=False)
        assert tokenizer("ckd 5") == ["ckd"]

    def test_min_token_length(self):
        tokenizer = Tokenizer(min_token_length=3)
        assert tokenizer("ckd of 5 stage") == ["ckd", "stage"]

    def test_invalid_min_length(self):
        with pytest.raises(ValueError):
            Tokenizer(min_token_length=0)

    def test_tokenize_all(self):
        tokenizer = Tokenizer()
        assert tokenizer.tokenize_all(["a b", "c"]) == [["a", "b"], ["c"]]


class TestSharedWords:
    def test_order_follows_left(self):
        assert shared_words(["b", "a", "c"], ["a", "b"]) == ("b", "a")

    def test_deduplicates(self):
        assert shared_words(["a", "a", "b"], ["a"]) == ("a",)

    def test_disjoint(self):
        assert shared_words(["x"], ["y"]) == ()
