"""Tests for n-gram extraction and similarity."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text.ngrams import char_ngrams, ngram_jaccard, ngram_profile, word_ngrams

short_text = st.text(alphabet="abcd", max_size=10)


class TestCharNgrams:
    def test_padded_bigrams(self):
        assert char_ngrams("ca") == ["#c", "ca", "a#"]

    def test_unpadded(self):
        assert char_ngrams("cab", pad=False) == ["ca", "ab"]

    def test_short_string(self):
        assert char_ngrams("", n=3, pad=False) == []
        assert char_ngrams("a", n=3, pad=False) == ["a"]

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            char_ngrams("abc", n=0)

    @given(short_text, st.integers(min_value=1, max_value=4))
    def test_count_formula(self, text, n):
        grams = char_ngrams(text, n=n, pad=False)
        if len(text) >= n:
            assert len(grams) == len(text) - n + 1


class TestWordNgrams:
    def test_bigrams(self):
        assert word_ngrams(["a", "b", "c"]) == [("a", "b"), ("b", "c")]

    def test_too_short(self):
        assert word_ngrams(["only"], n=2) == []

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            word_ngrams(["a"], n=0)


class TestJaccard:
    def test_identical(self):
        assert ngram_jaccard("anemia", "anemia") == 1.0

    def test_disjoint(self):
        assert ngram_jaccard("aaa", "bbb") == 0.0

    def test_both_empty(self):
        assert ngram_jaccard("", "") == 1.0

    @given(short_text, short_text)
    def test_in_unit_interval_and_symmetric(self, left, right):
        value = ngram_jaccard(left, right)
        assert 0.0 <= value <= 1.0
        assert value == ngram_jaccard(right, left)

    def test_profile_is_multiset(self):
        profile = ngram_profile("aaa")
        assert profile["aa"] == 2
