"""Tests for edit distances (incl. hypothesis metric properties)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text.edit_distance import (
    damerau_levenshtein,
    levenshtein,
    normalized_levenshtein,
)

short_text = st.text(alphabet="abcde", max_size=8)


class TestLevenshtein:
    def test_paper_typo_example(self):
        # Section 5: "neuropaty" is a typo of "neuropathy".
        assert levenshtein("neuropaty", "neuropathy") == 1

    def test_identity(self):
        assert levenshtein("anemia", "anemia") == 0

    def test_empty_cases(self):
        assert levenshtein("", "abc") == 3
        assert levenshtein("abc", "") == 3

    def test_substitution_insertion_deletion(self):
        assert levenshtein("cat", "cut") == 1
        assert levenshtein("cat", "cart") == 1
        assert levenshtein("cart", "cat") == 1

    def test_band_early_exit(self):
        assert levenshtein("aaaa", "bbbb", max_distance=2) == 3

    def test_band_length_shortcut(self):
        assert levenshtein("a", "abcdef", max_distance=2) == 3

    def test_band_exact_when_within(self):
        assert levenshtein("kitten", "sitting", max_distance=10) == 3

    @given(short_text, short_text)
    def test_symmetry(self, left, right):
        assert levenshtein(left, right) == levenshtein(right, left)

    @given(short_text, short_text, short_text)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @given(short_text, short_text)
    def test_bounded_by_longer_length(self, left, right):
        assert levenshtein(left, right) <= max(len(left), len(right))

    @given(short_text, short_text)
    def test_zero_iff_equal(self, left, right):
        assert (levenshtein(left, right) == 0) == (left == right)


class TestDamerauLevenshtein:
    def test_transposition_is_one(self):
        assert damerau_levenshtein("anemia", "aenmia") == 1
        assert levenshtein("anemia", "aenmia") == 2

    def test_identity(self):
        assert damerau_levenshtein("x", "x") == 0

    @given(short_text, short_text)
    def test_never_exceeds_levenshtein(self, left, right):
        assert damerau_levenshtein(left, right) <= levenshtein(left, right)

    @given(short_text, short_text)
    def test_symmetry(self, left, right):
        assert damerau_levenshtein(left, right) == damerau_levenshtein(right, left)


class TestNormalized:
    def test_range(self):
        assert normalized_levenshtein("abc", "xyz") == 1.0
        assert normalized_levenshtein("abc", "abc") == 0.0

    def test_both_empty(self):
        assert normalized_levenshtein("", "") == 0.0

    @given(short_text, short_text)
    def test_in_unit_interval(self, left, right):
        value = normalized_levenshtein(left, right)
        assert 0.0 <= value <= 1.0
