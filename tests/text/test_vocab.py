"""Tests for the Vocabulary."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text.vocab import (
    BOS_TOKEN,
    EOS_TOKEN,
    PAD_TOKEN,
    SPECIAL_TOKENS,
    UNK_TOKEN,
    Vocabulary,
)

words = st.text(alphabet="abcdefg", min_size=1, max_size=6)


class TestConstruction:
    def test_specials_occupy_first_ids(self):
        vocab = Vocabulary()
        assert vocab.pad_id == 0
        assert vocab.bos_id == 1
        assert vocab.eos_id == 2
        assert vocab.unk_id == 3
        assert len(vocab) == 4

    def test_add_is_idempotent(self):
        vocab = Vocabulary()
        first = vocab.add("anemia")
        second = vocab.add("anemia")
        assert first == second
        assert vocab.count_of("anemia") == 2

    def test_add_empty_rejected(self):
        with pytest.raises(ValueError):
            Vocabulary().add("")

    def test_from_corpus_min_count(self):
        vocab = Vocabulary.from_corpus(
            [["a", "a", "b"], ["a", "c"]], min_count=2
        )
        assert "a" in vocab
        assert "b" not in vocab
        assert "c" not in vocab

    def test_from_corpus_max_size_keeps_most_frequent(self):
        vocab = Vocabulary.from_corpus(
            [["a"] * 5 + ["b"] * 3 + ["c"]], max_size=len(SPECIAL_TOKENS) + 2
        )
        assert "a" in vocab and "b" in vocab and "c" not in vocab

    def test_from_corpus_max_size_too_small(self):
        with pytest.raises(ValueError):
            Vocabulary.from_corpus([["a"]], max_size=2)

    def test_from_corpus_invalid_min_count(self):
        with pytest.raises(ValueError):
            Vocabulary.from_corpus([["a"]], min_count=0)

    def test_deterministic_ids_via_tie_break(self):
        a = Vocabulary.from_corpus([["z", "y", "x"]])
        b = Vocabulary.from_corpus([["x", "z", "y"]])
        assert a.words == b.words


class TestLookup:
    def test_unknown_maps_to_unk(self):
        vocab = Vocabulary()
        vocab.add("known")
        assert vocab.id_of("unknown") == vocab.unk_id

    def test_unknown_without_specials_raises(self):
        vocab = Vocabulary(include_specials=False)
        vocab.add("known")
        with pytest.raises(KeyError):
            vocab.id_of("unknown")

    def test_word_of_out_of_range(self):
        with pytest.raises(IndexError):
            Vocabulary().word_of(99)

    def test_encode_decode_roundtrip(self):
        vocab = Vocabulary()
        vocab.add_all(["iron", "deficiency", "anemia"])
        ids = vocab.encode(["iron", "anemia"])
        assert vocab.decode(ids) == ["iron", "anemia"]

    def test_decode_skips_specials_by_default(self):
        vocab = Vocabulary()
        vocab.add("x")
        ids = [vocab.bos_id, vocab.id_of("x"), vocab.eos_id]
        assert vocab.decode(ids) == ["x"]
        assert vocab.decode(ids, skip_specials=False) == [
            BOS_TOKEN, "x", EOS_TOKEN,
        ]

    def test_iteration_order_is_id_order(self):
        vocab = Vocabulary()
        vocab.add("b")
        vocab.add("a")
        listed = list(vocab)
        assert listed.index("b") < listed.index("a")


class TestSerialization:
    def test_roundtrip(self):
        vocab = Vocabulary()
        vocab.add_all(["alpha", "beta", "alpha"])
        restored = Vocabulary.from_dict(vocab.to_dict())
        assert restored.words == vocab.words
        assert restored.count_of("alpha") == 2
        assert restored.pad_id == vocab.pad_id

    @given(st.lists(words, min_size=1, max_size=30))
    def test_roundtrip_property(self, corpus_words):
        vocab = Vocabulary()
        vocab.add_all(corpus_words)
        restored = Vocabulary.from_dict(vocab.to_dict())
        assert restored.words == vocab.words
        for word in corpus_words:
            assert restored.id_of(word) == vocab.id_of(word)


class TestProperties:
    @given(st.lists(st.lists(words, min_size=1, max_size=6), min_size=1, max_size=10))
    def test_ids_are_contiguous_and_bijective(self, corpus):
        vocab = Vocabulary.from_corpus(corpus)
        assert sorted(vocab.encode(list(vocab.words))) == list(range(len(vocab)))
        for word_id in range(len(vocab)):
            assert vocab.id_of(vocab.word_of(word_id)) == word_id

    def test_unk_and_pad_constants(self):
        assert PAD_TOKEN in SPECIAL_TOKENS and UNK_TOKEN in SPECIAL_TOKENS
