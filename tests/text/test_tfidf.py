"""Tests for the TF-IDF inverted index."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text.tfidf import TfIdfIndex, TfIdfMatch
from repro.utils.errors import NotFittedError

token = st.text(alphabet="abcdef", min_size=1, max_size=4)
document = st.lists(token, min_size=1, max_size=8)


def build_index():
    return TfIdfIndex().fit(
        [
            ("D50.0", ["iron", "deficiency", "anemia", "blood", "loss"]),
            ("D53.2", ["scorbutic", "anemia"]),
            ("N18.5", ["chronic", "kidney", "disease", "stage", "5"]),
            ("R10.9", ["unspecified", "abdominal", "pain"]),
        ]
    )


class TestSearch:
    def test_exact_match_ranks_first(self):
        index = build_index()
        results = index.search(["scorbutic", "anemia"], k=3)
        assert results[0].key == "D53.2"

    def test_shared_rare_word_beats_common_word(self):
        index = build_index()
        results = index.search(["kidney"], k=2)
        assert results[0].key == "N18.5"

    def test_no_overlap_returns_empty(self):
        index = build_index()
        assert index.search(["menorrhagia"], k=5) == []

    def test_fewer_than_k(self):
        index = build_index()
        results = index.search(["anemia"], k=10)
        assert {match.key for match in results} == {"D50.0", "D53.2"}

    def test_scores_are_cosines(self):
        index = build_index()
        for match in index.search(["anemia", "blood"], k=4):
            assert 0.0 < match.score <= 1.0 + 1e-9

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            build_index().search(["anemia"], k=0)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            TfIdfIndex().search(["x"])

    def test_deterministic_tie_break(self):
        index = TfIdfIndex().fit([("a", ["x"]), ("b", ["x"])])
        first = index.search(["x"], k=2)
        second = index.search(["x"], k=2)
        assert [m.key for m in first] == [m.key for m in second]


class TestStatistics:
    def test_document_frequency(self):
        index = build_index()
        assert index.document_frequency("anemia") == 2
        assert index.document_frequency("missing") == 0

    def test_idf_decreases_with_df(self):
        index = build_index()
        assert index.idf("anemia") < index.idf("kidney")

    def test_postings_examined(self):
        index = build_index()
        assert index.postings_examined(["anemia"]) == 2
        assert index.postings_examined(["anemia", "kidney"]) == 3
        assert index.postings_examined(["nothing"]) == 0

    def test_len_and_vocabulary(self):
        index = build_index()
        assert len(index) == 4
        assert "anemia" in index.vocabulary

    def test_unfitted_statistics_raise(self):
        with pytest.raises(NotFittedError):
            TfIdfIndex().postings_examined(["x"])
        with pytest.raises(NotFittedError):
            TfIdfIndex().idf("x")


class TestProperties:
    @given(st.lists(document, min_size=1, max_size=12))
    def test_self_query_retrieves_self(self, documents):
        keyed = [(i, doc) for i, doc in enumerate(documents)]
        index = TfIdfIndex().fit(keyed)
        for key, doc in keyed:
            results = index.search(doc, k=len(documents))
            assert key in {match.key for match in results}

    @given(st.lists(document, min_size=2, max_size=10), document)
    def test_scores_sorted_descending(self, documents, query):
        index = TfIdfIndex().fit(list(enumerate(documents)))
        results = index.search(query, k=len(documents))
        scores = [match.score for match in results]
        assert scores == sorted(scores, reverse=True)
