"""Tests for structural-context paths (paper Definition 4.1)."""

import pytest

from repro.ontology.concept import Concept
from repro.ontology.ontology import Ontology
from repro.ontology.paths import context_cids, structural_context, validate_tree
from repro.utils.errors import ConfigurationError


class TestStructuralContext:
    def test_paper_example_beta1(self, figure1_ontology):
        # "Given a depth β = 1, the structural context of concept D50.0
        # is <D50.0, D50>."
        assert context_cids(figure1_ontology, "D50.0", beta=1) == ("D50.0", "D50")

    def test_duplication_when_too_shallow(self, figure1_ontology):
        # D50.0 is at level 2; β = 3 duplicates the first-level concept.
        assert context_cids(figure1_ontology, "D50.0", beta=3) == (
            "D50.0", "D50", "D50", "D50",
        )

    def test_first_level_concept_duplicates_itself(self, figure1_ontology):
        assert context_cids(figure1_ontology, "D50", beta=2) == (
            "D50", "D50", "D50",
        )

    def test_beta_zero(self, figure1_ontology):
        assert context_cids(figure1_ontology, "D50.0", beta=0) == ("D50.0",)

    def test_deep_chain(self):
        ontology = Ontology()
        ontology.add(Concept("L20", "atopic dermatitis"))
        ontology.add(Concept("L20.8", "other atopic dermatitis"), "L20")
        ontology.add(Concept("L20.84", "intrinsic eczema"), "L20.8")
        assert context_cids(ontology, "L20.84", beta=2) == (
            "L20.84", "L20.8", "L20",
        )
        assert context_cids(ontology, "L20.84", beta=3) == (
            "L20.84", "L20.8", "L20", "L20",
        )

    def test_length_is_beta_plus_one(self, figure1_ontology):
        for beta in range(5):
            path = structural_context(figure1_ontology, "N18.5", beta)
            assert len(path) == beta + 1

    def test_negative_beta_rejected(self, figure1_ontology):
        with pytest.raises(ConfigurationError):
            structural_context(figure1_ontology, "D50.0", beta=-1)

    def test_unknown_concept(self, figure1_ontology):
        with pytest.raises(KeyError):
            structural_context(figure1_ontology, "Z99", beta=1)


class TestValidateTree:
    def test_valid_tree_passes(self, figure1_ontology):
        validate_tree(figure1_ontology)

    def test_synthetic_ontologies_pass(self):
        from repro.ontology.icd import (
            build_icd10_like_ontology,
            build_icd9_like_ontology,
        )

        validate_tree(build_icd10_like_ontology(rng=0))
        validate_tree(build_icd9_like_ontology(rng=0))
