"""Hypothesis property tests over randomly generated ontologies."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ontology.concept import Concept
from repro.ontology.ontology import Ontology
from repro.ontology.paths import structural_context, validate_tree


@st.composite
def random_ontology(draw):
    """A random tree: each concept's parent is any earlier concept
    (or none), which guarantees acyclicity by construction."""
    size = draw(st.integers(min_value=1, max_value=25))
    parent_picks = [
        draw(st.integers(min_value=-1, max_value=index - 1))
        for index in range(size)
    ]
    ontology = Ontology()
    for index, parent in enumerate(parent_picks):
        ontology.add(
            Concept(f"C{index}", f"concept number {index}"),
            parent_cid=f"C{parent}" if parent >= 0 else None,
        )
    return ontology


@settings(max_examples=50, deadline=None)
@given(random_ontology())
def test_tree_invariants_always_hold(ontology):
    validate_tree(ontology)
    # Every concept is either fine-grained or an ancestor of one.
    fine = {concept.cid for concept in ontology.fine_grained()}
    covered = set(fine)
    for cid in fine:
        covered.update(a.cid for a in ontology.ancestors_of(cid))
    assert covered == {concept.cid for concept in ontology}


@settings(max_examples=50, deadline=None)
@given(random_ontology(), st.integers(min_value=0, max_value=5))
def test_structural_context_length_and_membership(ontology, beta):
    for concept in ontology.fine_grained():
        path = structural_context(ontology, concept.cid, beta)
        assert len(path) == beta + 1
        assert path[0] is ontology.get(concept.cid)
        ancestors = {a.cid for a in ontology.ancestors_of(concept.cid)}
        ancestors.add(concept.cid)  # first-level concepts pad with self
        assert all(entry.cid in ancestors for entry in path[1:])
        # Padding duplicates the shallowest element only.
        real_depth = len(ontology.ancestors_of(concept.cid))
        if beta > real_depth:
            chain = ontology.ancestors_of(concept.cid)
            filler = chain[-1].cid if chain else concept.cid
            assert all(entry.cid == filler for entry in path[real_depth + 1 :])


@settings(max_examples=30, deadline=None)
@given(random_ontology(), st.data())
def test_restriction_preserves_structure(ontology, data):
    fine = [concept.cid for concept in ontology.fine_grained()]
    keep = data.draw(
        st.lists(st.sampled_from(fine), min_size=1, max_size=len(fine), unique=True)
    )
    restricted = ontology.restricted_to(keep)
    validate_tree(restricted)
    for cid in keep:
        assert cid in restricted
        assert restricted.depth_of(cid) == ontology.depth_of(cid)
        original_chain = [a.cid for a in ontology.ancestors_of(cid)]
        restricted_chain = [a.cid for a in restricted.ancestors_of(cid)]
        assert restricted_chain == original_chain
