"""Tests for ontology JSON persistence."""

import json

import pytest

from repro.ontology.icd import build_icd10_like_ontology
from repro.ontology.loaders import load_ontology_json, save_ontology_json
from repro.utils.errors import DataError


class TestRoundTrip:
    def test_figure1_roundtrip(self, figure1_ontology, tmp_path):
        path = tmp_path / "ontology.json"
        save_ontology_json(figure1_ontology, path)
        loaded = load_ontology_json(path)
        assert {c.cid for c in loaded} == {c.cid for c in figure1_ontology}
        assert loaded.parent_of("D50.0").cid == "D50"
        assert loaded.get("N18.5").description == (
            figure1_ontology.get("N18.5").description
        )

    def test_synthetic_roundtrip(self, tmp_path):
        ontology = build_icd10_like_ontology(rng=4, categories_per_family=2)
        path = tmp_path / "icd.json"
        save_ontology_json(ontology, path)
        loaded = load_ontology_json(path)
        assert len(loaded) == len(ontology)
        assert len(loaded.fine_grained()) == len(ontology.fine_grained())


class TestErrors:
    def test_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(DataError, match="not valid JSON"):
            load_ontology_json(path)

    def test_non_object(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]", encoding="utf-8")
        with pytest.raises(DataError, match="JSON object"):
            load_ontology_json(path)

    def test_missing_keys(self, tmp_path):
        path = tmp_path / "partial.json"
        path.write_text(json.dumps({"concepts": []}), encoding="utf-8")
        with pytest.raises(DataError, match="missing key"):
            load_ontology_json(path)

    def test_cyclic_file_rejected(self, tmp_path):
        payload = {
            "concepts": [
                {"cid": "A", "description": "a"},
                {"cid": "B", "description": "b"},
            ],
            "edges": [["A", "B"], ["B", "A"]],
        }
        path = tmp_path / "cycle.json"
        path.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.raises(DataError):
            load_ontology_json(path)
