"""Tests for the tree-structured ontology."""

import pytest

from repro.ontology.concept import Concept
from repro.ontology.ontology import ROOT_CID, Ontology
from repro.utils.errors import DataError


class TestAdd:
    def test_duplicate_cid_rejected(self, figure1_ontology):
        with pytest.raises(DataError):
            figure1_ontology.add(Concept("D50", "duplicate"))

    def test_unknown_parent_rejected(self):
        ontology = Ontology()
        with pytest.raises(DataError):
            ontology.add(Concept("X.1", "child"), parent_cid="X")

    def test_reserved_root_cid_rejected(self):
        with pytest.raises(DataError):
            Ontology().add(Concept(ROOT_CID, "root"))


class TestStructure:
    def test_fine_grained_matches_paper(self, figure1_ontology):
        fine = {concept.cid for concept in figure1_ontology.fine_grained()}
        # Paper Section 2.1: D50.0, D53.0, D53.2, N18.5, N18.9, R10.0,
        # R10.9 are the fine-grained concepts of Figure 1(b).
        assert fine == {
            "D50.0", "D53.0", "D53.2", "N18.5", "N18.9", "R10.0", "R10.9",
        }

    def test_is_fine_grained(self, figure1_ontology):
        assert figure1_ontology.is_fine_grained("D50.0")
        assert not figure1_ontology.is_fine_grained("D50")

    def test_parent_and_children(self, figure1_ontology):
        assert figure1_ontology.parent_of("D53.0").cid == "D53"
        assert figure1_ontology.parent_of("D53") is None
        children = {c.cid for c in figure1_ontology.children_of("D53")}
        assert children == {"D53.0", "D53.2"}

    def test_depths(self, figure1_ontology):
        assert figure1_ontology.depth_of("D50") == 1
        assert figure1_ontology.depth_of("D50.0") == 2
        assert figure1_ontology.max_depth() == 2

    def test_ancestors(self, figure1_ontology):
        assert [c.cid for c in figure1_ontology.ancestors_of("D50.0")] == ["D50"]
        assert figure1_ontology.ancestors_of("D50") == ()

    def test_roots(self, figure1_ontology):
        assert {c.cid for c in figure1_ontology.roots()} == {
            "D50", "D53", "N18", "R10",
        }

    def test_subtree_preorder(self, figure1_ontology):
        cids = [c.cid for c in figure1_ontology.subtree_of("D53")]
        assert cids == ["D53", "D53.0", "D53.2"]

    def test_get_unknown_raises(self, figure1_ontology):
        with pytest.raises(KeyError):
            figure1_ontology.get("Z99")

    def test_contains_len_iter(self, figure1_ontology):
        assert "D50" in figure1_ontology
        assert "Z99" not in figure1_ontology
        assert len(figure1_ontology) == 11
        assert len(list(figure1_ontology)) == 11

    def test_describe(self, figure1_ontology):
        stats = figure1_ontology.describe()
        assert stats == {
            "concepts": 11, "fine_grained": 7, "max_depth": 2, "roots": 4,
        }


class TestFromEdges:
    def test_builds_regardless_of_order(self):
        concepts = [
            Concept("A.1", "child one"),
            Concept("A", "parent"),
            Concept("A.1.a", "grandchild"),
        ]
        edges = [("A.1", "A.1.a"), ("A", "A.1")]
        ontology = Ontology.from_edges(concepts, edges)
        assert ontology.depth_of("A.1.a") == 3

    def test_cycle_detected(self):
        concepts = [Concept("A", "a"), Concept("B", "b")]
        with pytest.raises(DataError, match="cycle"):
            Ontology.from_edges(concepts, [("A", "B"), ("B", "A")])

    def test_multi_parent_rejected(self):
        concepts = [Concept("A", "a"), Concept("B", "b"), Concept("C", "c")]
        with pytest.raises(DataError, match="multiple parents"):
            Ontology.from_edges(concepts, [("A", "C"), ("B", "C")])

    def test_unknown_edge_endpoint(self):
        with pytest.raises(DataError):
            Ontology.from_edges([Concept("A", "a")], [("A", "missing")])


class TestRestrictedTo:
    def test_keeps_ancestors(self, figure1_ontology):
        restricted = figure1_ontology.restricted_to(["D50.0"])
        assert set(c.cid for c in restricted) == {"D50", "D50.0"}
        assert restricted.parent_of("D50.0").cid == "D50"

    def test_unknown_cid_raises(self, figure1_ontology):
        with pytest.raises(KeyError):
            figure1_ontology.restricted_to(["nope"])

    def test_restriction_preserves_depths(self, figure1_ontology):
        restricted = figure1_ontology.restricted_to(["N18.5", "N18.9"])
        assert restricted.depth_of("N18.5") == figure1_ontology.depth_of("N18.5")
