"""Tests for the Concept data type."""

import pytest

from repro.ontology.concept import Concept
from repro.utils.errors import DataError


class TestConcept:
    def test_words_derived_from_description(self):
        concept = Concept("N18.5", "Chronic Kidney Disease, Stage 5")
        assert concept.words == ("chronic", "kidney", "disease", "stage", "5")

    def test_explicit_words_respected(self):
        concept = Concept("X", "ignored text", words=("given", "words"))
        assert concept.words == ("given", "words")

    def test_empty_cid_rejected(self):
        with pytest.raises(DataError):
            Concept("", "description")

    def test_empty_description_rejected(self):
        with pytest.raises(DataError):
            Concept("X", "   ")

    def test_punctuation_only_description_rejected(self):
        with pytest.raises(DataError):
            Concept("X", ",;")

    def test_equality_ignores_words_cache(self):
        a = Concept("D50", "iron deficiency anemia")
        b = Concept("D50", "iron deficiency anemia", words=("other",))
        assert a == b

    def test_frozen(self):
        concept = Concept("D50", "iron deficiency anemia")
        with pytest.raises(AttributeError):
            concept.cid = "D51"  # type: ignore[misc]

    def test_str(self):
        assert str(Concept("D50", "iron deficiency anemia")) == (
            "D50: iron deficiency anemia"
        )
