"""Tests for the synthetic ICD ontology builders."""

import pytest

from repro.ontology.icd import (
    DEFAULT_FAMILIES,
    SyntheticIcdSpec,
    build_icd10_like_ontology,
    build_icd9_like_ontology,
    build_synthetic_icd,
)
from repro.utils.errors import ConfigurationError


class TestSpecValidation:
    def test_defaults_valid(self):
        SyntheticIcdSpec()

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(categories_per_family=0),
            dict(leaves_per_category=0),
            dict(deep_fraction=1.5),
            dict(deep_fraction=-0.1),
            dict(description_style="fancy"),
            dict(families=()),
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            SyntheticIcdSpec(**kwargs)


class TestIcd10Like:
    def test_deterministic_given_seed(self):
        a = build_icd10_like_ontology(rng=5)
        b = build_icd10_like_ontology(rng=5)
        assert [c.cid for c in a] == [c.cid for c in b]
        assert [c.description for c in a] == [c.description for c in b]

    def test_different_seeds_differ(self):
        a = build_icd10_like_ontology(rng=5)
        b = build_icd10_like_ontology(rng=6)
        assert [c.description for c in a] != [c.description for c in b]

    def test_code_shapes(self):
        ontology = build_icd10_like_ontology(rng=1)
        for leaf in ontology.fine_grained():
            # Alphanumeric: letter + digits + '.' + digits.
            assert leaf.cid[0].isalpha()
            assert "." in leaf.cid

    def test_sibling_overlap_is_fine_grained(self):
        """Sibling leaves share the category base and differ in
        qualifiers — the paper's 'minor concept meaning differences'."""
        ontology = build_icd10_like_ontology(rng=2)
        for leaf in ontology.fine_grained():
            parent = ontology.parent_of(leaf.cid)
            siblings = [
                c for c in ontology.children_of(parent.cid) if c.cid != leaf.cid
            ]
            if not siblings:
                continue
            shared = set(leaf.words) & set(siblings[0].words)
            assert shared, f"{leaf.cid} shares no words with its sibling"

    def test_counts_scale_with_parameters(self):
        small = build_icd10_like_ontology(
            rng=1, categories_per_family=2, leaves_per_category=2
        )
        large = build_icd10_like_ontology(
            rng=1, categories_per_family=5, leaves_per_category=5
        )
        assert len(large.fine_grained()) > len(small.fine_grained())


class TestIcd9Like:
    def test_numeric_codes(self):
        ontology = build_icd9_like_ontology(rng=1)
        for leaf in ontology.fine_grained():
            category = leaf.cid.split(".")[0]
            assert category.isdigit()

    def test_shallower_than_icd10(self):
        icd9 = build_icd9_like_ontology(rng=1)
        icd10 = build_icd10_like_ontology(rng=1)
        assert icd9.max_depth() <= icd10.max_depth()

    def test_shorter_descriptions_than_icd10(self):
        """The paper attributes hospital-x vs MIMIC timing gaps to
        ICD-10 descriptions being longer than ICD-9's."""
        icd9 = build_icd9_like_ontology(rng=1)
        icd10 = build_icd10_like_ontology(rng=1)

        def mean_len(ontology):
            leaves = ontology.fine_grained()
            return sum(len(c.words) for c in leaves) / len(leaves)

        assert mean_len(icd9) < mean_len(icd10)


class TestUniqueness:
    def test_all_cids_unique_across_spec_grid(self):
        for deep_fraction in (0.0, 0.5, 1.0):
            spec = SyntheticIcdSpec(
                families=DEFAULT_FAMILIES[:4],
                categories_per_family=4,
                leaves_per_category=4,
                deep_fraction=deep_fraction,
            )
            ontology = build_synthetic_icd(spec, rng=3)
            cids = [c.cid for c in ontology]
            assert len(cids) == len(set(cids))
