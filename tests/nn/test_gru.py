"""Finite-difference gradient checks and behaviour tests for the GRU."""

import numpy as np
import pytest

from repro.nn.gru import GRUCell, GRUEncoder

EPS = 1e-5
TOL = 1e-6


def central_difference(function, array, epsilon=EPS):
    grad = np.zeros_like(array)
    flat = array.ravel()
    grad_flat = grad.ravel()
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + epsilon
        upper = function()
        flat[index] = original - epsilon
        lower = function()
        flat[index] = original
        grad_flat[index] = (upper - lower) / (2 * epsilon)
    return grad


def scalar_loss(output, weights):
    return float((output * weights).sum())


class TestGRUGradients:
    @pytest.mark.parametrize("steps", [1, 4])
    def test_bptt_all_parameters(self, steps):
        rng = np.random.default_rng(4)
        encoder = GRUEncoder(3, 5, rng=rng)
        inputs = rng.normal(size=(steps, 3))
        probe = rng.normal(size=(steps, 5))
        final_probe = rng.normal(size=5)

        def loss():
            states, _ = encoder.forward(inputs)
            return scalar_loss(states, probe) + scalar_loss(
                states[-1], final_probe
            )

        states, caches = encoder.forward(inputs)
        encoder.zero_grad()
        d_inputs, _, _ = encoder.backward(probe, caches, d_h_final=final_probe)

        np.testing.assert_allclose(
            d_inputs, central_difference(loss, inputs), atol=TOL
        )
        for name, parameter in encoder.named_parameters():
            numeric = central_difference(loss, parameter.value)
            np.testing.assert_allclose(
                parameter.grad, numeric, atol=TOL, err_msg=f"parameter {name}"
            )

    def test_initial_state_grad(self):
        rng = np.random.default_rng(5)
        encoder = GRUEncoder(2, 3, rng=rng)
        inputs = rng.normal(size=(3, 2))
        h0 = rng.normal(size=3)
        probe = rng.normal(size=(3, 3))

        def loss():
            states, _ = encoder.forward(inputs, h0=h0)
            return scalar_loss(states, probe)

        _, caches = encoder.forward(inputs, h0=h0)
        encoder.zero_grad()
        _, dh0, dc0 = encoder.backward(probe, caches)
        np.testing.assert_allclose(dh0, central_difference(loss, h0), atol=TOL)
        np.testing.assert_array_equal(dc0, np.zeros(3))

    def test_cell_slot_gradient_folds_into_hidden(self):
        """The LSTM-compat cell slot: gradient on d_c_final must act
        exactly like extra gradient on d_h_final."""
        rng = np.random.default_rng(6)
        encoder = GRUEncoder(2, 3, rng=rng)
        inputs = rng.normal(size=(2, 2))
        probe = rng.normal(size=3)
        _, caches = encoder.forward(inputs)
        encoder.zero_grad()
        a, _, _ = encoder.backward(np.zeros((2, 3)), caches, d_h_final=probe)
        grads_a = {n: p.grad.copy() for n, p in encoder.named_parameters()}
        encoder.zero_grad()
        _, caches = encoder.forward(inputs)
        b, _, _ = encoder.backward(np.zeros((2, 3)), caches, d_c_final=probe)
        np.testing.assert_allclose(a, b)
        for name, parameter in encoder.named_parameters():
            np.testing.assert_allclose(parameter.grad, grads_a[name])


class TestGRUBehaviour:
    def test_fewer_parameters_than_lstm(self):
        from repro.nn.lstm import LSTMEncoder

        gru = GRUEncoder(8, 8, rng=0)
        lstm = LSTMEncoder(8, 8, rng=0)
        assert gru.parameter_count() < lstm.parameter_count()

    def test_cache_cell_property(self):
        cell = GRUCell(2, 3, rng=0)
        h, c = cell.initial_state()
        h1, c1, cache = cell.step(np.ones(2), h, c)
        np.testing.assert_array_equal(cache.c, cache.h)
        np.testing.assert_array_equal(h1, c1)

    def test_shape_validation(self):
        encoder = GRUEncoder(3, 4, rng=0)
        with pytest.raises(ValueError):
            encoder.forward(np.zeros((0, 3)))
        with pytest.raises(ValueError):
            encoder.forward(np.zeros((2, 5)))
        _, caches = encoder.forward(np.zeros((2, 3)))
        with pytest.raises(ValueError):
            encoder.backward(np.zeros((3, 4)), caches)

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            GRUCell(0, 3)


class TestComAidWithGRU:
    def test_gru_comaid_gradients(self):
        """End-to-end gradcheck of COM-AID with GRU cells."""
        from repro.core.comaid import ComAid
        from repro.core.config import ComAidConfig
        from repro.text.vocab import Vocabulary

        vocab = Vocabulary()
        vocab.add_all(["iron", "anemia", "blood", "loss", "chronic"])
        model = ComAid(ComAidConfig(dim=5, beta=1, cell="gru"), vocab, rng=0)
        concept = vocab.encode(["iron", "anemia"])
        ancestors = [vocab.encode(["iron"])]
        query = vocab.encode(["blood", "loss"])

        cache = model.forward(concept, ancestors, query)
        model.zero_grad()
        model.backward(cache)

        rng = np.random.default_rng(1)
        for name, parameter in model.named_parameters():
            flat = parameter.value.ravel()
            analytic = parameter.grad.ravel()
            sample = rng.choice(flat.size, size=min(8, flat.size), replace=False)
            for index in sample:
                original = flat[index]
                flat[index] = original + EPS
                upper = model.forward(concept, ancestors, query).loss
                flat[index] = original - EPS
                lower = model.forward(concept, ancestors, query).loss
                flat[index] = original
                numeric = (upper - lower) / (2 * EPS)
                assert analytic[index] == pytest.approx(numeric, abs=1e-5), (
                    f"{name}[{index}]"
                )

    def test_invalid_cell_name(self):
        from repro.core.config import ComAidConfig
        from repro.utils.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            ComAidConfig(cell="transformer")
