"""Tests for Parameter/Module plumbing, optimisers, clipping, and
serialisation."""

import numpy as np
import pytest

from repro.nn import (
    SGD,
    Adagrad,
    Adam,
    Embedding,
    Linear,
    LSTMEncoder,
    Module,
    Parameter,
    clip_global_norm,
    global_norm,
    load_module,
    save_module,
)
from repro.nn.optim import make_optimizer


class ToyModel(Module):
    def __init__(self):
        self.layer = Linear(3, 2, rng=0)
        self.table = Embedding(5, 3, rng=1)
        self.scale = Parameter(np.ones(1))


class TestModule:
    def test_named_parameters_flatten_tree(self):
        model = ToyModel()
        names = {name for name, _ in model.named_parameters()}
        assert names == {
            "layer.weight", "layer.bias", "table.weight", "scale",
        }

    def test_parameter_count(self):
        model = ToyModel()
        assert model.parameter_count() == 2 * 3 + 2 + 5 * 3 + 1

    def test_zero_grad(self):
        model = ToyModel()
        model.scale.grad += 5.0
        model.zero_grad()
        assert model.scale.grad[0] == 0.0

    def test_state_dict_roundtrip(self):
        model = ToyModel()
        state = model.state_dict()
        other = ToyModel()
        other.scale.value[:] = 99.0
        other.load_state_dict(state)
        np.testing.assert_array_equal(other.scale.value, model.scale.value)

    def test_state_dict_is_a_copy(self):
        model = ToyModel()
        state = model.state_dict()
        state["scale"][0] = -1.0
        assert model.scale.value[0] == 1.0

    def test_load_rejects_missing_and_unexpected(self):
        model = ToyModel()
        state = model.state_dict()
        del state["scale"]
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_load_rejects_bad_shapes(self):
        model = ToyModel()
        state = model.state_dict()
        state["scale"] = np.ones(2)
        with pytest.raises(ValueError):
            model.load_state_dict(state)


class TestOptimizers:
    def quadratic_problem(self):
        parameter = Parameter(np.array([5.0, -3.0]))
        return parameter

    def run_steps(self, optimizer, parameter, steps=200):
        for _ in range(steps):
            optimizer.zero_grad()
            parameter.grad += 2 * parameter.value  # d/dx of x^2
            optimizer.step()
        return np.abs(parameter.value).max()

    def test_sgd_converges(self):
        parameter = self.quadratic_problem()
        assert self.run_steps(SGD([parameter], lr=0.1), parameter) < 1e-3

    def test_sgd_momentum_converges(self):
        parameter = self.quadratic_problem()
        optimizer = SGD([parameter], lr=0.05, momentum=0.9)
        assert self.run_steps(optimizer, parameter) < 1e-3

    def test_adagrad_converges(self):
        parameter = self.quadratic_problem()
        assert self.run_steps(Adagrad([parameter], lr=0.7), parameter) < 1e-2

    def test_adam_converges(self):
        parameter = self.quadratic_problem()
        assert self.run_steps(Adam([parameter], lr=0.2), parameter, 400) < 1e-3

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.0)

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.1, momentum=1.0)

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], lr=0.1, beta1=1.0)

    def test_empty_parameters(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_factory(self):
        parameter = Parameter(np.zeros(2))
        assert isinstance(make_optimizer("sgd", [parameter], 0.1), SGD)
        assert isinstance(make_optimizer("ADAM", [parameter], 0.1), Adam)
        with pytest.raises(ValueError):
            make_optimizer("rmsprop", [parameter], 0.1)


class TestClipping:
    def test_global_norm_value(self):
        a = Parameter(np.zeros(2))
        a.grad += np.array([3.0, 4.0])
        assert global_norm([a]) == pytest.approx(5.0)

    def test_clip_rescales(self):
        a = Parameter(np.zeros(2))
        a.grad += np.array([3.0, 4.0])
        norm = clip_global_norm([a], max_norm=1.0)
        assert norm == pytest.approx(5.0)
        assert global_norm([a]) == pytest.approx(1.0, rel=1e-6)

    def test_no_clip_when_under(self):
        a = Parameter(np.zeros(2))
        a.grad += np.array([0.3, 0.4])
        clip_global_norm([a], max_norm=1.0)
        np.testing.assert_allclose(a.grad, [0.3, 0.4])

    def test_invalid_max_norm(self):
        with pytest.raises(ValueError):
            clip_global_norm([Parameter(np.zeros(1))], max_norm=0.0)


class TestSerialization:
    def test_roundtrip(self, tmp_path):
        model = ToyModel()
        path = tmp_path / "model.npz"
        save_module(model, path)
        other = ToyModel()
        other.layer.weight.value[:] = 0.0
        load_module(other, path)
        np.testing.assert_array_equal(
            other.layer.weight.value, model.layer.weight.value
        )

    def test_lstm_roundtrip(self, tmp_path):
        encoder = LSTMEncoder(4, 6, rng=2)
        path = tmp_path / "lstm.npz"
        save_module(encoder, path)
        clone = LSTMEncoder(4, 6, rng=99)
        load_module(clone, path)
        inputs = np.random.default_rng(0).normal(size=(3, 4))
        original, _ = encoder.forward(inputs)
        restored, _ = clone.forward(inputs)
        np.testing.assert_allclose(original, restored)

    def test_shape_mismatch_rejected(self, tmp_path):
        model = ToyModel()
        path = tmp_path / "model.npz"
        save_module(model, path)
        wrong = LSTMEncoder(2, 2, rng=0)
        with pytest.raises(KeyError):
            load_module(wrong, path)
