"""Layer-level equivalence of the batched inference primitives.

Every vectorized op introduced for batched Phase-II scoring is checked
against its sequential reference applied row-wise: ``step_batch`` vs
``step``, ``forward_batch`` vs ``forward``, masked batched attention vs
per-row attention over the unpadded memory, and the batched softmax /
log-prob helpers vs their 1-D counterparts.  Includes gradcheck-style
finite-difference spot checks that the batched step computes the same
smooth function (same directional derivatives), not merely the same
values at the sampled points.
"""

import numpy as np
import pytest

from repro.nn.attention import Attention
from repro.nn.functional import (
    batched_target_log_probs,
    masked_softmax,
    softmax,
    softmax_cross_entropy,
)
from repro.nn.gru import GRUCell, GRUEncoder
from repro.nn.lstm import LSTMCell, LSTMEncoder

RNG = np.random.default_rng(20180611)


def _rows(shape):
    return RNG.standard_normal(shape)


class TestLSTMStepBatch:
    def setup_method(self):
        self.cell = LSTMCell(5, 7, rng=1)

    def test_rows_match_sequential_step(self):
        batch = 6
        x, h0, c0 = _rows((batch, 5)), _rows((batch, 7)), _rows((batch, 7))
        h_batch, c_batch = self.cell.step_batch(x, h0, c0)
        assert h_batch.shape == (batch, 7) and c_batch.shape == (batch, 7)
        for row in range(batch):
            h, c, _ = self.cell.step(x[row], h0[row], c0[row])
            np.testing.assert_allclose(h_batch[row], h, rtol=0, atol=1e-12)
            np.testing.assert_allclose(c_batch[row], c, rtol=0, atol=1e-12)

    def test_single_row_batch(self):
        x, h0, c0 = _rows((1, 5)), _rows((1, 7)), _rows((1, 7))
        h_batch, c_batch = self.cell.step_batch(x, h0, c0)
        h, c, _ = self.cell.step(x[0], h0[0], c0[0])
        np.testing.assert_allclose(h_batch[0], h, atol=1e-12)
        np.testing.assert_allclose(c_batch[0], c, atol=1e-12)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            self.cell.step_batch(_rows((3, 4)), _rows((3, 7)), _rows((3, 7)))
        with pytest.raises(ValueError):
            self.cell.step_batch(_rows((3, 5)), _rows((2, 7)), _rows((3, 7)))
        with pytest.raises(ValueError):
            self.cell.step_batch(_rows(5), _rows(7), _rows(7))

    def test_finite_difference_directions_match_step(self):
        # Gradcheck-style: the batched op's numerical directional
        # derivative w.r.t. its inputs equals the sequential step's, so
        # the two compute the same differentiable function, not just the
        # same values at the sampled points.
        x, h0, c0 = _rows((3, 5)), _rows((3, 7)), _rows((3, 7))
        dx, dh, dc = _rows((3, 5)), _rows((3, 7)), _rows((3, 7))
        eps = 1e-6
        plus_b, _ = self.cell.step_batch(x + eps * dx, h0 + eps * dh, c0 + eps * dc)
        minus_b, _ = self.cell.step_batch(x - eps * dx, h0 - eps * dh, c0 - eps * dc)
        jvp_batch = (plus_b - minus_b) / (2 * eps)
        for row in range(3):
            plus, _, _ = self.cell.step(
                x[row] + eps * dx[row], h0[row] + eps * dh[row], c0[row] + eps * dc[row]
            )
            minus, _, _ = self.cell.step(
                x[row] - eps * dx[row], h0[row] - eps * dh[row], c0[row] - eps * dc[row]
            )
            np.testing.assert_allclose(
                jvp_batch[row], (plus - minus) / (2 * eps), rtol=0, atol=1e-9
            )


class TestLSTMForwardBatch:
    def setup_method(self):
        self.encoder = LSTMEncoder(4, 6, rng=2)

    def test_rows_match_sequential_forward(self):
        batch, steps = 5, 9
        inputs = _rows((batch, steps, 4))
        h0, c0 = _rows((batch, 6)), _rows((batch, 6))
        states = self.encoder.forward_batch(inputs, h0=h0, c0=c0)
        assert states.shape == (batch, steps, 6)
        for row in range(batch):
            reference, _ = self.encoder.forward(
                inputs[row], h0=h0[row], c0=c0[row]
            )
            np.testing.assert_allclose(states[row], reference, atol=1e-12)

    def test_default_zero_initial_state(self):
        inputs = _rows((3, 4, 4))
        states = self.encoder.forward_batch(inputs)
        for row in range(3):
            reference, _ = self.encoder.forward(inputs[row])
            np.testing.assert_allclose(states[row], reference, atol=1e-12)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            self.encoder.forward_batch(np.empty((0, 3, 4)))
        with pytest.raises(ValueError):
            self.encoder.forward_batch(np.empty((2, 0, 4)))
        with pytest.raises(ValueError):
            self.encoder.forward_batch(_rows((2, 3)))


class TestGRUBatch:
    def setup_method(self):
        self.cell = GRUCell(5, 7, rng=3)
        self.encoder = GRUEncoder(4, 6, rng=4)

    def test_step_batch_rows_match(self):
        batch = 6
        x, h0 = _rows((batch, 5)), _rows((batch, 7))
        h_batch, state = self.cell.step_batch(x, h0)
        assert state is h_batch  # GRU: the "cell" slot is the hidden state
        for row in range(batch):
            h, _, _ = self.cell.step(x[row], h0[row])
            np.testing.assert_allclose(h_batch[row], h, rtol=0, atol=1e-12)

    def test_step_batch_ignores_cell_slot(self):
        x, h0 = _rows((2, 5)), _rows((2, 7))
        with_c, _ = self.cell.step_batch(x, h0, _rows((2, 7)))
        without_c, _ = self.cell.step_batch(x, h0)
        np.testing.assert_array_equal(with_c, without_c)

    def test_forward_batch_rows_match(self):
        inputs = _rows((4, 7, 4))
        h0 = _rows((4, 6))
        states = self.encoder.forward_batch(inputs, h0=h0, c0=_rows((4, 6)))
        for row in range(4):
            reference, _ = self.encoder.forward(inputs[row], h0=h0[row])
            np.testing.assert_allclose(states[row], reference, atol=1e-12)


class TestBatchedAttention:
    def setup_method(self):
        self.attention = Attention()

    def test_masked_rows_match_unpadded_sequential(self):
        dim, batch, width = 6, 5, 8
        lengths = [8, 1, 3, 5, 8]
        queries = _rows((batch, dim))
        memories = [_rows((n, dim)) for n in lengths]
        padded = np.zeros((batch, width, dim))
        mask = np.zeros((batch, width), dtype=bool)
        for row, memory in enumerate(memories):
            padded[row, : lengths[row]] = memory
            mask[row, : lengths[row]] = True
        contexts, weights = self.attention.forward_batch(queries, padded, mask)
        for row, memory in enumerate(memories):
            context, reference_weights, _ = self.attention.forward(
                queries[row], memory
            )
            np.testing.assert_allclose(contexts[row], context, atol=1e-12)
            np.testing.assert_allclose(
                weights[row, : lengths[row]], reference_weights, atol=1e-12
            )
            # Padding carries exactly zero attention mass.
            assert np.all(weights[row, lengths[row] :] == 0.0)

    def test_no_mask_means_uniform_lengths(self):
        queries = _rows((3, 4))
        memory = _rows((3, 5, 4))
        contexts, weights = self.attention.forward_batch(queries, memory)
        for row in range(3):
            context, reference_weights, _ = self.attention.forward(
                queries[row], memory[row]
            )
            np.testing.assert_allclose(contexts[row], context, atol=1e-12)
            np.testing.assert_allclose(weights[row], reference_weights, atol=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            self.attention.forward_batch(_rows((2, 4)), _rows((2, 4)))
        with pytest.raises(ValueError):
            self.attention.forward_batch(_rows((2, 4)), _rows((3, 5, 4)))
        with pytest.raises(ValueError):
            self.attention.forward_batch(_rows((2, 4)), np.empty((2, 0, 4)))


class TestBatchedFunctional:
    def test_masked_softmax_equals_compacted_softmax(self):
        scores = _rows((4, 7))
        mask = np.zeros((4, 7), dtype=bool)
        lengths = [7, 2, 4, 1]
        for row, n in enumerate(lengths):
            mask[row, :n] = True
        out = masked_softmax(scores, mask)
        for row, n in enumerate(lengths):
            np.testing.assert_allclose(
                out[row, :n], softmax(scores[row, :n]), atol=1e-15
            )
            assert np.all(out[row, n:] == 0.0)
        np.testing.assert_allclose(out.sum(axis=-1), 1.0, atol=1e-12)

    def test_masked_softmax_none_mask_is_softmax(self):
        scores = _rows((3, 5))
        np.testing.assert_array_equal(
            masked_softmax(scores, None), softmax(scores)
        )

    def test_masked_softmax_rejects_empty_rows(self):
        mask = np.ones((2, 3), dtype=bool)
        mask[1] = False
        with pytest.raises(ValueError):
            masked_softmax(_rows((2, 3)), mask)

    def test_masked_softmax_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            masked_softmax(_rows((2, 3)), np.ones((2, 4), dtype=bool))

    def test_batched_target_log_probs_match_cross_entropy(self):
        logits = _rows((5, 11))
        targets = np.array([0, 10, 3, 7, 5])
        log_probs = batched_target_log_probs(logits, targets)
        for row in range(5):
            loss, _ = softmax_cross_entropy(logits[row], int(targets[row]))
            np.testing.assert_allclose(log_probs[row], -loss, atol=1e-12)

    def test_batched_target_log_probs_validation(self):
        with pytest.raises(ValueError):
            batched_target_log_probs(_rows(4), np.array([0]))
        with pytest.raises(ValueError):
            batched_target_log_probs(_rows((2, 4)), np.array([0]))
        with pytest.raises(IndexError):
            batched_target_log_probs(_rows((2, 4)), np.array([0, 4]))
