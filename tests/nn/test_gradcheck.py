"""Finite-difference gradient checks for every nn building block.

These are the foundation of trust for the whole model: COM-AID's
backward pass is hand-derived, so each layer's analytic gradients are
compared against central differences on small random problems.
"""

import numpy as np
import pytest

from repro.nn import (
    Attention,
    Embedding,
    Linear,
    LSTMEncoder,
    softmax_cross_entropy,
)

EPS = 1e-5
TOL = 1e-6


def central_difference(function, array, epsilon=EPS):
    """Numerically estimate d function / d array (function returns a scalar)."""
    grad = np.zeros_like(array)
    flat = array.ravel()
    grad_flat = grad.ravel()
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + epsilon
        upper = function()
        flat[index] = original - epsilon
        lower = function()
        flat[index] = original
        grad_flat[index] = (upper - lower) / (2 * epsilon)
    return grad


def scalar_loss(output, weights):
    """A fixed random projection turning any output into a scalar."""
    return float((output * weights).sum())


class TestLinearGradients:
    def test_weight_bias_and_input_grads(self):
        rng = np.random.default_rng(0)
        layer = Linear(5, 3, rng=rng)
        x = rng.normal(size=5)
        probe = rng.normal(size=3)

        out = layer.forward(x)
        layer.zero_grad()
        dx = layer.backward(x, probe)

        num_w = central_difference(
            lambda: scalar_loss(layer.forward(x), probe), layer.weight.value
        )
        num_b = central_difference(
            lambda: scalar_loss(layer.forward(x), probe), layer.bias.value
        )
        num_x = central_difference(
            lambda: scalar_loss(layer.forward(x), probe), x
        )
        assert out.shape == (3,)
        np.testing.assert_allclose(layer.weight.grad, num_w, atol=TOL)
        np.testing.assert_allclose(layer.bias.grad, num_b, atol=TOL)
        np.testing.assert_allclose(dx, num_x, atol=TOL)

    def test_batched_input_grads(self):
        rng = np.random.default_rng(1)
        layer = Linear(4, 2, rng=rng)
        x = rng.normal(size=(3, 4))
        probe = rng.normal(size=(3, 2))

        layer.zero_grad()
        dx = layer.backward(x, probe)
        num_x = central_difference(
            lambda: scalar_loss(layer.forward(x), probe), x
        )
        num_w = central_difference(
            lambda: scalar_loss(layer.forward(x), probe), layer.weight.value
        )
        np.testing.assert_allclose(dx, num_x, atol=TOL)
        np.testing.assert_allclose(layer.weight.grad, num_w, atol=TOL)


class TestEmbeddingGradients:
    def test_scatter_add_matches_numeric(self):
        rng = np.random.default_rng(2)
        table = Embedding(7, 3, rng=rng)
        ids = [2, 5, 2]  # repeated id exercises accumulation
        probe = rng.normal(size=(3, 3))

        table.zero_grad()
        table.backward(ids, probe)
        numeric = central_difference(
            lambda: scalar_loss(table.forward(ids), probe), table.weight.value
        )
        np.testing.assert_allclose(table.weight.grad, numeric, atol=TOL)


class TestAttentionGradients:
    def test_query_and_memory_grads(self):
        rng = np.random.default_rng(3)
        attention = Attention()
        query = rng.normal(size=4)
        memory = rng.normal(size=(6, 4))
        probe = rng.normal(size=4)

        def loss():
            context, _, _ = attention.forward(query, memory)
            return scalar_loss(context, probe)

        _, _, cache = attention.forward(query, memory)
        d_query, d_memory = attention.backward(probe, cache)
        np.testing.assert_allclose(
            d_query, central_difference(loss, query), atol=TOL
        )
        np.testing.assert_allclose(
            d_memory, central_difference(loss, memory), atol=TOL
        )


class TestLSTMGradients:
    @pytest.mark.parametrize("steps", [1, 4])
    def test_bptt_all_parameters(self, steps):
        rng = np.random.default_rng(4)
        encoder = LSTMEncoder(3, 5, rng=rng)
        inputs = rng.normal(size=(steps, 3))
        probe = rng.normal(size=(steps, 5))
        final_probe = rng.normal(size=5)

        def loss():
            states, _ = encoder.forward(inputs)
            return scalar_loss(states, probe) + scalar_loss(
                states[-1], final_probe
            )

        states, caches = encoder.forward(inputs)
        encoder.zero_grad()
        d_inputs, _, _ = encoder.backward(
            probe, caches, d_h_final=final_probe
        )

        np.testing.assert_allclose(
            d_inputs, central_difference(loss, inputs), atol=TOL
        )
        for name, parameter in encoder.named_parameters():
            numeric = central_difference(loss, parameter.value)
            np.testing.assert_allclose(
                parameter.grad, numeric, atol=TOL, err_msg=f"parameter {name}"
            )

    def test_initial_state_grads(self):
        rng = np.random.default_rng(5)
        encoder = LSTMEncoder(2, 3, rng=rng)
        inputs = rng.normal(size=(3, 2))
        h0 = rng.normal(size=3)
        c0 = rng.normal(size=3)
        probe = rng.normal(size=(3, 3))

        def loss():
            states, _ = encoder.forward(inputs, h0=h0, c0=c0)
            return scalar_loss(states, probe)

        _, caches = encoder.forward(inputs, h0=h0, c0=c0)
        encoder.zero_grad()
        _, dh0, dc0 = encoder.backward(probe, caches)
        np.testing.assert_allclose(dh0, central_difference(loss, h0), atol=TOL)
        np.testing.assert_allclose(dc0, central_difference(loss, c0), atol=TOL)


class TestSoftmaxCrossEntropy:
    def test_dlogits_matches_numeric(self):
        rng = np.random.default_rng(6)
        logits = rng.normal(size=9)
        target = 4

        loss, dlogits = softmax_cross_entropy(logits, target)

        def loss_only():
            value, _ = softmax_cross_entropy(logits, target)
            return value

        assert loss > 0
        np.testing.assert_allclose(
            dlogits, central_difference(loss_only, logits), atol=TOL
        )

    def test_rejects_bad_target(self):
        with pytest.raises(IndexError):
            softmax_cross_entropy(np.zeros(3), 3)
