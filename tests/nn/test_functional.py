"""Tests for activation/loss primitives and initialisers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn.functional import (
    log_softmax,
    one_hot,
    sigmoid,
    sigmoid_grad,
    softmax,
    softmax_cross_entropy,
    tanh_grad,
)
from repro.nn.initializers import glorot_uniform, orthogonal, uniform, zeros

finite_vectors = arrays(
    np.float64,
    st.integers(min_value=1, max_value=12),
    elements=st.floats(min_value=-50, max_value=50),
)


class TestSigmoid:
    def test_midpoint(self):
        assert sigmoid(np.zeros(1))[0] == pytest.approx(0.5)

    def test_extreme_values_stable(self):
        values = sigmoid(np.array([-1000.0, 1000.0]))
        assert values[0] == pytest.approx(0.0)
        assert values[1] == pytest.approx(1.0)
        assert np.isfinite(values).all()

    @given(finite_vectors)
    def test_range_and_monotonicity(self, x):
        y = sigmoid(np.sort(x))
        assert ((y >= 0) & (y <= 1)).all()
        assert (np.diff(y) >= -1e-12).all()

    def test_grad_formula(self):
        y = sigmoid(np.array([0.3]))
        assert sigmoid_grad(y)[0] == pytest.approx(y[0] * (1 - y[0]))


class TestSoftmax:
    @given(finite_vectors)
    def test_sums_to_one(self, logits):
        probabilities = softmax(logits)
        assert probabilities.sum() == pytest.approx(1.0)
        assert (probabilities >= 0).all()

    def test_shift_invariance(self):
        logits = np.array([1.0, 2.0, 3.0])
        np.testing.assert_allclose(softmax(logits), softmax(logits + 100))

    def test_extreme_stability(self):
        probabilities = softmax(np.array([1e9, 0.0, -1e9]))
        assert np.isfinite(probabilities).all()

    @given(finite_vectors)
    def test_log_softmax_consistent(self, logits):
        np.testing.assert_allclose(
            np.exp(log_softmax(logits)), softmax(logits), atol=1e-12
        )

    def test_axis_handling(self):
        matrix = np.array([[1.0, 2.0], [3.0, 1.0]])
        rows = softmax(matrix, axis=1)
        np.testing.assert_allclose(rows.sum(axis=1), [1.0, 1.0])


class TestCrossEntropy:
    def test_uniform_loss(self):
        loss, _ = softmax_cross_entropy(np.zeros(4), 2)
        assert loss == pytest.approx(np.log(4))

    def test_requires_1d(self):
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.zeros((2, 2)), 0)

    def test_gradient_sums_to_zero(self):
        _, grad = softmax_cross_entropy(np.array([0.5, -0.2, 1.0]), 1)
        assert grad.sum() == pytest.approx(0.0)

    def test_one_hot(self):
        vector = one_hot(2, 4)
        np.testing.assert_array_equal(vector, [0, 0, 1, 0])
        with pytest.raises(IndexError):
            one_hot(4, 4)

    def test_tanh_grad(self):
        y = np.tanh(np.array([0.7]))
        assert tanh_grad(y)[0] == pytest.approx(1 - y[0] ** 2)


class TestInitializers:
    def test_zeros(self):
        assert zeros((2, 3)).sum() == 0.0

    def test_uniform_bounds_and_determinism(self):
        a = uniform((100,), scale=0.05, rng=3)
        b = uniform((100,), scale=0.05, rng=3)
        assert (np.abs(a) <= 0.05).all()
        np.testing.assert_array_equal(a, b)

    def test_uniform_invalid_scale(self):
        with pytest.raises(ValueError):
            uniform((2,), scale=0.0)

    def test_glorot_scale_shrinks_with_fanin(self):
        small = glorot_uniform((4, 4), rng=0)
        large = glorot_uniform((400, 400), rng=0)
        assert np.abs(large).max() < np.abs(small).max()

    @pytest.mark.parametrize("shape", [(5, 5), (7, 3), (3, 7)])
    def test_orthogonal_columns(self, shape):
        matrix = orthogonal(shape, rng=1)
        assert matrix.shape == shape
        rows, cols = shape
        if rows >= cols:
            product = matrix.T @ matrix
            np.testing.assert_allclose(product, np.eye(cols), atol=1e-10)
        else:
            product = matrix @ matrix.T
            np.testing.assert_allclose(product, np.eye(rows), atol=1e-10)

    def test_orthogonal_rejects_non_2d(self):
        with pytest.raises(ValueError):
            orthogonal((3,), rng=0)  # type: ignore[arg-type]
