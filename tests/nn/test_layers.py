"""Behavioural tests for layers (shapes, validation, determinism).

Gradient correctness is covered by test_gradcheck.py; these cover the
API contracts.
"""

import numpy as np
import pytest

from repro.nn import Attention, Embedding, Linear, LSTMCell, LSTMEncoder


class TestLinear:
    def test_shapes(self):
        layer = Linear(4, 3, rng=0)
        assert layer.forward(np.zeros(4)).shape == (3,)
        assert layer.forward(np.zeros((5, 4))).shape == (5, 3)

    def test_wrong_input_dim(self):
        with pytest.raises(ValueError):
            Linear(4, 3, rng=0).forward(np.zeros(5))

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            Linear(0, 3)

    def test_bias_starts_zero(self):
        layer = Linear(4, 3, rng=0)
        np.testing.assert_array_equal(layer.bias.value, np.zeros(3))


class TestEmbedding:
    def test_forward_copies(self):
        table = Embedding(4, 3, rng=0)
        rows = table.forward([1, 2])
        rows[0, 0] = 999.0
        assert table.weight.value[1, 0] != 999.0

    def test_out_of_range(self):
        table = Embedding(4, 3, rng=0)
        with pytest.raises(IndexError):
            table.forward([4])
        with pytest.raises(IndexError):
            table.forward([-1])

    def test_backward_shape_validation(self):
        table = Embedding(4, 3, rng=0)
        with pytest.raises(ValueError):
            table.backward([0], np.zeros((2, 3)))

    def test_load_pretrained(self):
        table = Embedding(4, 3, rng=0)
        vectors = np.arange(6, dtype=float).reshape(2, 3)
        table.load_pretrained(vectors, [1, 3])
        np.testing.assert_array_equal(table.weight.value[1], [0, 1, 2])
        np.testing.assert_array_equal(table.weight.value[3], [3, 4, 5])

    def test_load_pretrained_shape_check(self):
        table = Embedding(4, 3, rng=0)
        with pytest.raises(ValueError):
            table.load_pretrained(np.zeros((1, 2)), [0])

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            Embedding(0, 3)
        with pytest.raises(ValueError):
            Embedding(3, 0)


class TestLSTM:
    def test_forget_bias_initialised_to_one(self):
        cell = LSTMCell(3, 4, rng=0)
        hidden = cell.hidden_dim
        np.testing.assert_array_equal(
            cell.bias.value[hidden : 2 * hidden], np.ones(hidden)
        )

    def test_step_shapes(self):
        cell = LSTMCell(3, 4, rng=0)
        h, c = cell.initial_state()
        h1, c1, cache = cell.step(np.zeros(3), h, c)
        assert h1.shape == (4,) and c1.shape == (4,)
        assert cache.x.shape == (3,)

    def test_encoder_rejects_empty_sequence(self):
        encoder = LSTMEncoder(3, 4, rng=0)
        with pytest.raises(ValueError):
            encoder.forward(np.zeros((0, 3)))

    def test_encoder_rejects_wrong_width(self):
        encoder = LSTMEncoder(3, 4, rng=0)
        with pytest.raises(ValueError):
            encoder.forward(np.zeros((2, 5)))

    def test_hidden_states_bounded(self):
        encoder = LSTMEncoder(3, 4, rng=0)
        states, _ = encoder.forward(
            np.random.default_rng(0).normal(size=(10, 3)) * 100
        )
        assert (np.abs(states) <= 1.0).all()  # |o * tanh(c)| <= 1

    def test_deterministic_given_seed(self):
        inputs = np.random.default_rng(1).normal(size=(4, 3))
        a, _ = LSTMEncoder(3, 4, rng=7).forward(inputs)
        b, _ = LSTMEncoder(3, 4, rng=7).forward(inputs)
        np.testing.assert_array_equal(a, b)

    def test_backward_shape_validation(self):
        encoder = LSTMEncoder(3, 4, rng=0)
        _, caches = encoder.forward(np.zeros((2, 3)))
        with pytest.raises(ValueError):
            encoder.backward(np.zeros((3, 4)), caches)

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            LSTMCell(0, 4)


class TestAttention:
    def test_weights_form_distribution(self):
        attention = Attention()
        rng = np.random.default_rng(0)
        _, weights, _ = attention.forward(rng.normal(size=4), rng.normal(size=(6, 4)))
        assert weights.shape == (6,)
        assert weights.sum() == pytest.approx(1.0)
        assert (weights >= 0).all()

    def test_context_in_memory_convex_hull_single_row(self):
        attention = Attention()
        memory = np.array([[1.0, 2.0, 3.0]])
        context, weights, _ = attention.forward(np.zeros(3), memory)
        np.testing.assert_allclose(context, memory[0])
        assert weights[0] == pytest.approx(1.0)

    def test_attends_to_aligned_row(self):
        """The paper's intuition: the decoder attends to the most
        relevant encoder state (largest inner product)."""
        attention = Attention()
        query = np.array([1.0, 0.0])
        memory = np.array([[5.0, 0.0], [0.0, 5.0], [-5.0, 0.0]])
        _, weights, _ = attention.forward(query, memory)
        assert weights.argmax() == 0

    def test_empty_memory_rejected(self):
        with pytest.raises(ValueError):
            Attention().forward(np.zeros(3), np.zeros((0, 3)))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Attention().forward(np.zeros(3), np.zeros((2, 4)))

    def test_attention_is_parameter_free(self):
        assert Attention().parameters() == {}
