"""The stable v1 facade: resolution, helpers, and deprecation shims."""

import warnings

import pytest

import repro
import repro.api as api


class TestSurface:
    def test_api_version(self):
        # Minor bumps on compatible additions (1.1 added retrieval,
        # 1.2 the model lifecycle, 1.3 multi-process serving, 1.4
        # cross-process observability, 1.5 multi-tenant serving and
        # cross-ontology mapping); the major component is the /v1
        # route contract.
        assert api.API_VERSION == "1.5"
        assert api.API_VERSION.split(".")[0] == "1"

    def test_every_exported_name_resolves(self):
        for name in api.__all__:
            assert getattr(api, name) is not None, name

    def test_dir_lists_the_full_surface(self):
        listed = dir(api)
        for name in api.__all__:
            assert name in listed

    def test_unknown_attribute_raises_attribute_error(self):
        with pytest.raises(AttributeError):
            api.definitely_not_exported

    def test_helpers_are_callable(self):
        for helper in ("train", "load_linker", "link", "link_batch",
                       "compile_artifact"):
            assert callable(getattr(api, helper)), helper

    def test_exports_cover_the_core_lifecycle(self):
        for name in (
            "ComAidConfig", "TrainingConfig", "LinkerConfig", "ServingConfig",
            "RuntimeConfig", "ComAid", "ComAidTrainer", "NeuralConceptLinker",
            "LinkResult", "KnowledgeBase", "Ontology", "load_pipeline",
            "save_pipeline", "load_artifact", "ShardedConceptEngine",
            "LinkingService", "ReproError",
        ):
            assert name in api.__all__, name


class TestDeprecationShims:
    def test_top_level_import_warns_but_works(self):
        with pytest.warns(DeprecationWarning, match="repro.api"):
            linker_cls = repro.NeuralConceptLinker
        assert linker_cls is api.NeuralConceptLinker

    def test_every_legacy_name_still_resolves(self):
        for name in repro.__all__:
            if name == "__version__":
                continue
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                legacy = getattr(repro, name)
            assert legacy is getattr(api, name), name

    def test_repeat_access_keeps_warning(self):
        # The shim must not cache: each legacy access is a nudge.
        for _ in range(2):
            with pytest.warns(DeprecationWarning):
                repro.ComAidTrainer

    def test_version_attribute_is_not_deprecated(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert repro.__version__
