"""Shared fixtures: a tiny anemia/kidney ontology and derived objects.

The fixture ontology mirrors the paper's Figure 1(b) fragment so tests
can assert against the paper's own running examples.
"""

import pytest

from repro.kb.knowledge_base import KnowledgeBase
from repro.ontology.concept import Concept
from repro.ontology.ontology import Ontology


@pytest.fixture
def figure1_ontology():
    """The paper's Figure 1(b) disease ontology fragment."""
    ontology = Ontology()
    ontology.add(Concept("D50", "iron deficiency anemia"))
    ontology.add(
        Concept("D50.0", "iron deficiency anemia secondary to blood loss"),
        parent_cid="D50",
    )
    ontology.add(Concept("D53", "other nutritional anemias"))
    ontology.add(Concept("D53.0", "protein deficiency anemia"), parent_cid="D53")
    ontology.add(Concept("D53.2", "scorbutic anemia"), parent_cid="D53")
    ontology.add(Concept("N18", "chronic kidney disease"))
    ontology.add(
        Concept("N18.5", "chronic kidney disease, stage 5"), parent_cid="N18"
    )
    ontology.add(
        Concept("N18.9", "chronic kidney disease, unspecified"), parent_cid="N18"
    )
    ontology.add(Concept("R10", "abdominal and pelvic pain"))
    ontology.add(Concept("R10.0", "acute abdomen"), parent_cid="R10")
    ontology.add(
        Concept("R10.9", "unspecified abdominal pain"), parent_cid="R10"
    )
    return ontology


@pytest.fixture
def figure3_kb(figure1_ontology):
    """A knowledge base holding the paper's Figure 3(a) labeled snippets."""
    kb = KnowledgeBase(figure1_ontology)
    kb.add_alias("D50.0", "anemia, chronic blood loss")
    kb.add_alias("D53.0", "protein deficiency anemia variant")
    kb.add_alias("D53.0", "amino acid deficiency anemia")
    kb.add_alias("D53.2", "vitamin c deficiency anemia")
    kb.add_alias("N18.5", "ckd stage 5")
    kb.add_alias("R10.0", "acute abdominal syndrome")
    kb.add_alias("R10.0", "pain abdomen")
    return kb
