"""Tests for the NOBLECoder-style dictionary linker."""

import pytest

from repro.baselines.noblecoder import NobleCoderLinker
from repro.utils.errors import ConfigurationError


class TestDictionary:
    def test_term_count_includes_aliases(self, figure1_ontology, figure3_kb):
        bare = NobleCoderLinker(figure1_ontology)
        rich = NobleCoderLinker(figure1_ontology, kb=figure3_kb)
        assert rich.term_count > bare.term_count

    def test_invalid_threshold(self, figure1_ontology):
        with pytest.raises(ConfigurationError):
            NobleCoderLinker(figure1_ontology, partial_threshold=0.0)


class TestLinking:
    def test_exact_term_links(self, figure1_ontology):
        linker = NobleCoderLinker(figure1_ontology)
        ranked = linker.rank("scorbutic anemia")
        assert ranked[0][0] == "D53.2"

    def test_out_of_dictionary_word_fails(self, figure1_ontology):
        """The paper's q1 analysis: NOBLECoder cannot link 'ckd 5'
        because 'ckd' is not in the word-to-term dictionary."""
        linker = NobleCoderLinker(figure1_ontology)
        ranked = linker.rank("ckd 5")
        assert all(cid != "N18.5" for cid, _ in ranked) or not ranked

    def test_alias_in_dictionary_recovers(self, figure1_ontology, figure3_kb):
        linker = NobleCoderLinker(
            figure1_ontology, kb=figure3_kb, partial_threshold=1.0
        )
        ranked = linker.rank("ckd stage 5")
        assert ranked and ranked[0][0] == "N18.5"

    def test_full_match_mode_strict(self, figure1_ontology):
        linker = NobleCoderLinker(figure1_ontology, partial_threshold=1.0)
        # Only one word of the three-word term present -> no link.
        assert linker.rank("anemia") == []

    def test_partial_mode_recovers(self, figure1_ontology):
        linker = NobleCoderLinker(figure1_ontology, partial_threshold=0.4)
        ranked = linker.rank("anemia")
        assert ranked  # several anemia concepts match partially

    def test_multiple_concepts_for_straddling_query(self, figure1_ontology):
        """Paper: q5's words match two different concepts' terms
        simultaneously; NC returns both."""
        linker = NobleCoderLinker(figure1_ontology, partial_threshold=0.4)
        ranked = linker.rank("anemia abdominal pain")
        cids = {cid for cid, _ in ranked}
        assert any(cid.startswith("D5") for cid in cids)
        assert any(cid.startswith("R10") for cid in cids)

    def test_empty_query(self, figure1_ontology):
        assert NobleCoderLinker(figure1_ontology).rank("") == []

    def test_link_convenience(self, figure1_ontology):
        linker = NobleCoderLinker(figure1_ontology)
        assert linker.link("scorbutic anemia") == "D53.2"
        assert linker.link("zzz") == ""

    def test_k_respected(self, figure1_ontology):
        linker = NobleCoderLinker(figure1_ontology, partial_threshold=0.2)
        assert len(linker.rank("anemia pain disease", k=2)) <= 2
