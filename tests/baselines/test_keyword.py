"""Tests for the keyword-only (Phase I) linker."""

from repro.baselines.keyword import KeywordLinker


class TestKeywordLinker:
    def test_ranks_by_tfidf(self, figure1_ontology):
        linker = KeywordLinker(figure1_ontology, rewrite_queries=False)
        ranked = linker.rank("scorbutic anemia")
        assert ranked[0][0] == "D53.2"

    def test_aliases_extend_recall(self, figure1_ontology, figure3_kb):
        bare = KeywordLinker(figure1_ontology, rewrite_queries=False)
        rich = KeywordLinker(
            figure1_ontology, kb=figure3_kb, rewrite_queries=False
        )
        assert bare.rank("ckd") == []
        assert rich.rank("ckd")[0][0] == "N18.5"

    def test_rewriting_repairs_typos(self, figure1_ontology):
        linker = KeywordLinker(figure1_ontology, rewrite_queries=True)
        ranked = linker.rank("scorbutic anemai")  # transposition typo
        assert ranked and ranked[0][0] == "D53.2"

    def test_empty_query(self, figure1_ontology):
        assert KeywordLinker(figure1_ontology).rank("") == []

    def test_k_respected(self, figure1_ontology):
        linker = KeywordLinker(figure1_ontology, rewrite_queries=False)
        assert len(linker.rank("anemia", k=2)) <= 2
