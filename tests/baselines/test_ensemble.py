"""Tests for the combined-annotator rank fusion."""

import pytest

from repro.baselines.ensemble import EnsembleLinker
from repro.baselines.noblecoder import NobleCoderLinker
from repro.baselines.pkduck import PkduckLinker
from repro.utils.errors import ConfigurationError


def constant_ranker(ranking):
    def rank(query, k):
        return ranking[:k]

    return rank


class TestFusion:
    def test_agreement_wins(self):
        ensemble = EnsembleLinker(
            [
                ("a", constant_ranker([("X", 1.0), ("Y", 0.5)])),
                ("b", constant_ranker([("X", 0.9), ("Z", 0.5)])),
            ]
        )
        ranked = ensemble.rank("anything", k=3)
        assert ranked[0][0] == "X"

    def test_weights_break_ties(self):
        ensemble = EnsembleLinker(
            [
                ("a", constant_ranker([("Y", 1.0)])),
                ("b", constant_ranker([("Z", 1.0)])),
            ],
            weights=[1.0, 3.0],
        )
        ranked = ensemble.rank("q", k=2)
        assert ranked[0][0] == "Z"

    def test_score_scale_free(self):
        """RRF ignores raw scores — only ranks matter."""
        ensemble = EnsembleLinker(
            [
                ("a", constant_ranker([("X", 1e9), ("Y", 1e8)])),
                ("b", constant_ranker([("Y", 0.002), ("X", 0.001)])),
            ]
        )
        scores = dict(ensemble.rank("q", k=2))
        assert scores["X"] == pytest.approx(scores["Y"])

    def test_absent_concept_contributes_nothing(self):
        ensemble = EnsembleLinker(
            [
                ("a", constant_ranker([("X", 1.0)])),
                ("b", constant_ranker([])),
            ]
        )
        ranked = ensemble.rank("q")
        assert [cid for cid, _ in ranked] == ["X"]

    def test_k_truncates(self):
        ensemble = EnsembleLinker(
            [("a", constant_ranker([("A", 3.0), ("B", 2.0), ("C", 1.0)]))]
        )
        assert len(ensemble.rank("q", k=2)) == 2


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(members=[]),
            dict(members=[("a", constant_ranker([]))], dampening=0.0),
            dict(members=[("a", constant_ranker([]))], pool_k=0),
            dict(members=[("a", constant_ranker([]))], weights=[1.0, 2.0]),
            dict(members=[("a", constant_ranker([]))], weights=[0.0]),
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            EnsembleLinker(**kwargs)


class TestWithRealLinkers:
    def test_from_linkers(self, figure1_ontology, figure3_kb):
        noble = NobleCoderLinker(figure1_ontology, kb=figure3_kb)
        pkduck = PkduckLinker(figure1_ontology, theta=0.2)
        ensemble = EnsembleLinker.from_linkers([noble, pkduck])
        assert ensemble.member_names == ["NC", "pkduck"]
        ranked = ensemble.rank("ckd stage 5", k=3)
        assert ranked and ranked[0][0] == "N18.5"

    def test_ensemble_at_least_as_robust_as_members(
        self, figure1_ontology, figure3_kb
    ):
        """A query only one member can link is still linked by the
        fusion — the combined-annotator value proposition."""
        noble = NobleCoderLinker(figure1_ontology)  # no aliases: misses 'ckd'
        pkduck = PkduckLinker(figure1_ontology, theta=0.2)  # rules bridge it
        ensemble = EnsembleLinker.from_linkers([noble, pkduck])
        assert noble.rank("ckd stage 5") == []
        assert ensemble.rank("ckd stage 5")[0][0] == "N18.5"
