"""Tests for the pkduck-style approximate string join."""

import pytest

from repro.baselines.pkduck import (
    PkduckLinker,
    default_rules,
    derive_strings,
    pkduck_similarity,
)
from repro.utils.errors import ConfigurationError


class TestDeriveStrings:
    def test_includes_original(self):
        closure = derive_strings(["anemia"])
        assert ("anemia",) in closure

    def test_word_rule_applies(self):
        closure = derive_strings(["chronic", "pain"])
        assert ("chr", "pain") in closure

    def test_phrase_rule_applies(self):
        closure = derive_strings(["chronic", "kidney", "disease"])
        assert ("ckd",) in closure

    def test_chained_applications(self):
        closure = derive_strings(
            ["chronic", "kidney", "disease", "severe"], max_applications=2
        )
        assert ("ckd", "sev") in closure

    def test_bounded(self):
        closure = derive_strings(
            ["chronic", "acute", "severe", "moderate", "disease", "disorder"],
            max_derived=10,
        )
        assert len(closure) <= 10


class TestSimilarity:
    def test_identical(self):
        assert pkduck_similarity(["a", "b"], ["a", "b"]) == 1.0

    def test_abbreviation_bridged(self):
        # 'ckd 5' vs 'chronic kidney disease 5': Jaccard without rules
        # is 1/5; with the acronym rule both derive to {ckd, 5}.
        similarity = pkduck_similarity(
            ["ckd", "5"], ["chronic", "kidney", "disease", "5"]
        )
        assert similarity == 1.0

    def test_synonyms_not_bridged(self):
        """pkduck's limitation per the paper: synonym substitution is
        not an abbreviation rule, so similarity stays low."""
        similarity = pkduck_similarity(
            ["gallstones"], ["cholelithiasis"]
        )
        assert similarity == 0.0

    def test_symmetric(self):
        left = ["chronic", "kidney", "disease"]
        right = ["ckd", "stage"]
        assert pkduck_similarity(left, right) == pkduck_similarity(right, left)


class TestLinker:
    def test_theta_validation(self, figure1_ontology):
        with pytest.raises(ConfigurationError):
            PkduckLinker(figure1_ontology, theta=0.0)
        with pytest.raises(ConfigurationError):
            PkduckLinker(figure1_ontology, theta=1.1)

    def test_links_via_abbreviation_rules(self, figure1_ontology):
        linker = PkduckLinker(figure1_ontology, theta=0.3)
        ranked = linker.rank("ckd stage 5")
        assert ranked and ranked[0][0] == "N18.5"

    def test_lower_theta_joins_more(self, figure1_ontology):
        strict = PkduckLinker(figure1_ontology, theta=0.8)
        loose = PkduckLinker(figure1_ontology, theta=0.1)
        query = "deficiency anemia"
        assert len(loose.rank(query, k=10)) >= len(strict.rank(query, k=10))

    def test_scores_meet_threshold(self, figure1_ontology):
        linker = PkduckLinker(figure1_ontology, theta=0.4)
        for _, score in linker.rank("chronic kidney disease stage 5", k=10):
            assert score >= 0.4

    def test_include_aliases_widens_strings(self, figure1_ontology, figure3_kb):
        bare = PkduckLinker(figure1_ontology)
        rich = PkduckLinker(figure1_ontology, kb=figure3_kb, include_aliases=True)
        assert rich.string_count > bare.string_count

    def test_empty_query(self, figure1_ontology):
        assert PkduckLinker(figure1_ontology).rank("") == []

    def test_dangling_words_depress_similarity(self, figure1_ontology):
        """Paper: dangling words make wrong short strings look better;
        at minimum they depress the true concept's similarity."""
        linker = PkduckLinker(figure1_ontology, theta=0.1)
        clean = dict(linker.rank("scorbutic anemia", k=5))
        noisy = dict(linker.rank("scorbutic anemia for investigation today", k=5))
        assert noisy.get("D53.2", 0.0) < clean.get("D53.2", 0.0)
