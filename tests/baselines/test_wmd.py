"""Tests for Word Mover's Distance."""

import numpy as np
import pytest

from repro.baselines.wmd import (
    WmdLinker,
    relaxed_word_movers_distance,
    word_movers_distance,
)
from repro.embeddings.similarity import WordVectors
from repro.utils.errors import ConfigurationError


@pytest.fixture
def vectors():
    words = ["kidney", "renal", "anemia", "iron", "pain", "abdominal",
             "chronic", "disease", "stage", "5", "scorbutic", "deficiency",
             "blood", "loss", "secondary", "to", "unspecified", "acute",
             "abdomen", "and", "pelvic", "other", "nutritional", "anemias",
             "protein"]
    rng = np.random.default_rng(0)
    matrix = rng.normal(size=(len(words), 6))
    # Make kidney/renal near-identical, anemia/iron close.
    matrix[1] = matrix[0] + 0.01
    matrix[3] = matrix[2] + 0.1
    return WordVectors(words, matrix)


class TestDistances:
    def test_identity_is_zero(self, vectors):
        assert word_movers_distance(["kidney", "pain"], ["kidney", "pain"], vectors) == pytest.approx(0.0, abs=1e-9)

    def test_synonym_nearly_zero(self, vectors):
        distance = word_movers_distance(["kidney"], ["renal"], vectors)
        assert distance < 0.05

    def test_symmetric(self, vectors):
        a = word_movers_distance(["kidney", "pain"], ["anemia"], vectors)
        b = word_movers_distance(["anemia"], ["kidney", "pain"], vectors)
        assert a == pytest.approx(b)

    def test_oov_only_is_infinite(self, vectors):
        assert word_movers_distance(["zzz"], ["kidney"], vectors) == float("inf")

    def test_relaxed_lower_bounds_exact(self, vectors):
        rng = np.random.default_rng(1)
        docs = [
            ["kidney", "pain", "chronic"],
            ["anemia", "iron", "deficiency"],
            ["acute", "abdomen"],
            ["blood", "loss", "secondary"],
        ]
        for _ in range(10):
            left = docs[rng.integers(len(docs))]
            right = docs[rng.integers(len(docs))]
            relaxed = relaxed_word_movers_distance(left, right, vectors)
            exact = word_movers_distance(left, right, vectors)
            assert relaxed <= exact + 1e-9

    def test_frequency_weighting(self, vectors):
        # Repeated words shift mass: duplicating a matched word cannot
        # increase the distance beyond the single-occurrence case by
        # much (the duplicate moves along the same route).
        single = word_movers_distance(["kidney", "pain"], ["renal", "pain"], vectors)
        repeated = word_movers_distance(
            ["kidney", "kidney", "pain"], ["renal", "renal", "pain"], vectors
        )
        assert repeated == pytest.approx(single, abs=0.05)


class TestLinker:
    def test_ranks_synonym_match_first(self, figure1_ontology, vectors):
        linker = WmdLinker(figure1_ontology, vectors, prune_to=10)
        ranked = linker.rank("renal disease chronic stage 5")
        assert ranked[0][0] in {"N18.5", "N18.9"}

    def test_scores_descend(self, figure1_ontology, vectors):
        linker = WmdLinker(figure1_ontology, vectors, prune_to=10)
        scores = [score for _, score in linker.rank("anemia blood loss", k=5)]
        assert scores == sorted(scores, reverse=True)

    def test_empty_query(self, figure1_ontology, vectors):
        assert WmdLinker(figure1_ontology, vectors).rank("") == []

    def test_all_oov_query(self, figure1_ontology, vectors):
        assert WmdLinker(figure1_ontology, vectors).rank("zzz qqq") == []

    def test_invalid_prune(self, figure1_ontology, vectors):
        with pytest.raises(ConfigurationError):
            WmdLinker(figure1_ontology, vectors, prune_to=0)
