"""Tests for the Doc2Vec and LR+ baselines."""

import pytest

from repro.baselines.doc2vec import Doc2VecConfig, Doc2VecLinker
from repro.baselines.lr_plus import (
    LrPlusConfig,
    LrPlusLinker,
    structural_features,
    textual_features,
)
from repro.utils.errors import ConfigurationError, NotFittedError


class TestDoc2VecConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(dim=0), dict(epochs=0), dict(negatives=0),
            dict(learning_rate=0.0), dict(infer_steps=0),
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            Doc2VecConfig(**kwargs)


class TestDoc2VecLinker:
    def test_requires_fit(self, figure1_ontology):
        linker = Doc2VecLinker(figure1_ontology, rng=0)
        with pytest.raises(NotFittedError):
            linker.rank("anemia")
        with pytest.raises(NotFittedError):
            linker.infer(["anemia"])

    def test_self_description_ranks_gold_high(self, figure1_ontology):
        config = Doc2VecConfig(dim=16, epochs=60, negatives=5, infer_steps=60)
        linker = Doc2VecLinker(figure1_ontology, config=config, rng=1).fit()
        ranked = linker.rank("chronic kidney disease stage 5", k=7)
        position = [cid for cid, _ in ranked].index("N18.5")
        assert position <= 2  # document similarity is coarse

    def test_empty_query(self, figure1_ontology):
        linker = Doc2VecLinker(
            figure1_ontology, config=Doc2VecConfig(dim=8, epochs=2), rng=0
        ).fit()
        assert linker.rank("") == []

    def test_scores_are_cosines(self, figure1_ontology):
        linker = Doc2VecLinker(
            figure1_ontology, config=Doc2VecConfig(dim=8, epochs=5), rng=0
        ).fit()
        for _, score in linker.rank("anemia", k=7):
            assert -1.0 - 1e-9 <= score <= 1.0 + 1e-9


class TestFeatures:
    def test_textual_features_identical_strings(self):
        features = textual_features(["iron", "anemia"], ["iron", "anemia"])
        bigram, prefix, suffix, numbers, acronym, overlap = features
        assert bigram == 1.0
        assert prefix == 1.0 and suffix == 1.0
        assert numbers == 1.0
        assert overlap == 1.0

    def test_shared_numbers_feature(self):
        # Paper: the 'sharing number' feature is why LR links 'ckd 5'.
        with_number = textual_features(["ckd", "5"], ["chronic", "disease", "5"])
        without = textual_features(["ckd", "5"], ["chronic", "disease", "4"])
        assert with_number[3] > without[3]

    def test_acronym_feature(self):
        features = textual_features(["ckd"], ["chronic", "kidney", "disease"])
        assert features[4] == 1.0
        features = textual_features(["abc"], ["chronic", "kidney", "disease"])
        assert features[4] == 0.0

    def test_structural_features_empty_ancestors(self):
        assert structural_features(["x"], []) == [0.0, 0.0, 0.0]

    def test_structural_overlap(self):
        features = structural_features(
            ["kidney", "disease"], ["chronic", "kidney", "disease"]
        )
        assert features[1] > 0.5


class TestLrPlusLinker:
    def test_requires_fit(self, figure1_ontology, figure3_kb):
        linker = LrPlusLinker(figure1_ontology, figure3_kb, rng=0)
        with pytest.raises(NotFittedError):
            linker.rank("anemia")

    def test_learns_to_score_aliases_high(self, figure1_ontology, figure3_kb):
        config = LrPlusConfig(epochs=80, learning_rate=1.0)
        linker = LrPlusLinker(
            figure1_ontology, figure3_kb, config=config, rng=1
        ).fit()
        # A trained LR+ should score an alias-like string higher against
        # its own concept than against an unrelated one.
        own = linker.score(["vitamin", "c", "deficiency", "anemia"], "D53.2")
        other = linker.score(["vitamin", "c", "deficiency", "anemia"], "R10.0")
        assert own > other

    def test_rank_restricted_to_candidates(self, figure1_ontology, figure3_kb):
        linker = LrPlusLinker(
            figure1_ontology, figure3_kb, candidate_k=3, rng=1
        ).fit()
        assert len(linker.rank("anemia deficiency", k=10)) <= 3

    def test_feature_weights_exposed(self, figure1_ontology, figure3_kb):
        linker = LrPlusLinker(figure1_ontology, figure3_kb, rng=1).fit()
        weights = linker.feature_weights
        assert "char_bigram_jaccard" in weights and "bias" in weights

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(epochs=0), dict(learning_rate=0.0),
            dict(l2=-1.0), dict(negatives_per_positive=0),
        ],
    )
    def test_invalid_config(self, kwargs):
        with pytest.raises(ConfigurationError):
            LrPlusConfig(**kwargs)

    def test_invalid_candidate_k(self, figure1_ontology, figure3_kb):
        with pytest.raises(ConfigurationError):
            LrPlusLinker(figure1_ontology, figure3_kb, candidate_k=0)
