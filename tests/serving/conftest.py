"""Shared serving-layer fixtures: one tiny trained pipeline per module.

Training is the expensive part, so the model is module-scoped; tests
that need private cache state build their own (cheap) linker around
the shared model.
"""

import threading

import pytest

from repro.core.config import (
    ComAidConfig,
    LinkerConfig,
    ServingConfig,
    TrainingConfig,
)
from repro.core.linker import NeuralConceptLinker
from repro.core.trainer import ComAidTrainer
from repro.engine.compile import compile_artifact
from repro.kb.knowledge_base import KnowledgeBase
from repro.ontology.concept import Concept
from repro.ontology.ontology import Ontology
from repro.serving.service import ProcPoolLinkingService


def build_figure1_ontology() -> Ontology:
    ontology = Ontology()
    ontology.add(Concept("D50", "iron deficiency anemia"))
    ontology.add(
        Concept("D50.0", "iron deficiency anemia secondary to blood loss"),
        parent_cid="D50",
    )
    ontology.add(Concept("D53", "other nutritional anemias"))
    ontology.add(Concept("D53.0", "protein deficiency anemia"), parent_cid="D53")
    ontology.add(Concept("D53.2", "scorbutic anemia"), parent_cid="D53")
    ontology.add(Concept("N18", "chronic kidney disease"))
    ontology.add(
        Concept("N18.5", "chronic kidney disease, stage 5"), parent_cid="N18"
    )
    ontology.add(
        Concept("N18.9", "chronic kidney disease, unspecified"), parent_cid="N18"
    )
    ontology.add(Concept("R10", "abdominal and pelvic pain"))
    ontology.add(Concept("R10.0", "acute abdomen"), parent_cid="R10")
    ontology.add(Concept("R10.9", "unspecified abdominal pain"), parent_cid="R10")
    return ontology


def build_figure3_kb(ontology: Ontology) -> KnowledgeBase:
    kb = KnowledgeBase(ontology)
    kb.add_alias("D50.0", "anemia, chronic blood loss")
    kb.add_alias("D50.0", "hemorrhagic anemia")
    kb.add_alias("D53.0", "amino acid deficiency anemia")
    kb.add_alias("D53.2", "vitamin c deficiency anemia")
    kb.add_alias("N18.5", "ckd stage 5")
    kb.add_alias("N18.5", "end stage renal disease")
    kb.add_alias("N18.9", "chronic renal disease")
    kb.add_alias("R10.0", "acute abdominal syndrome")
    kb.add_alias("R10.0", "pain abdomen")
    kb.add_alias("R10.9", "abdomen pain unspecified")
    return kb


#: Query mix covering cache hits, rewrites, numerics, and no-match.
SERVING_QUERIES = [
    "ckd stage 5",
    "anemia blood loss",
    "vitamin c deficiency anemia",
    "protein deficiency anemia",
    "acute abdomen pain",
    "chronic kidney disease",
    "scorbutic anemia",
    "end stage renal disease",
]


@pytest.fixture(scope="module")
def trained_pipeline():
    """``(ontology, kb, model)`` — one small COM-AID fit per test module."""
    ontology = build_figure1_ontology()
    kb = build_figure3_kb(ontology)
    trainer = ComAidTrainer(
        ComAidConfig(dim=10, beta=2),
        TrainingConfig(
            epochs=8, batch_size=4, optimizer="adagrad", learning_rate=0.2
        ),
        rng=7,
    )
    model = trainer.fit(kb)
    return ontology, kb, model


@pytest.fixture
def make_linker(trained_pipeline):
    """Factory for fresh linkers (private cache state) over the shared model."""
    ontology, kb, model = trained_pipeline

    def factory(**config_kwargs) -> NeuralConceptLinker:
        config_kwargs.setdefault("k", 5)
        return NeuralConceptLinker(
            model, ontology, LinkerConfig(**config_kwargs), kb=kb
        )

    return factory


@pytest.fixture(scope="module")
def compiled_artifact(trained_pipeline, tmp_path_factory):
    """One compiled format-3 artifact over the shared trained model."""
    ontology, kb, model = trained_pipeline
    directory = tmp_path_factory.mktemp("procpool") / "artifact"
    compile_artifact(directory, model, ontology, kb=kb)
    return directory


@pytest.fixture
def make_worker_linker(trained_pipeline, compiled_artifact):
    """Factory for worker-shaped linkers: mmap'd artifact, fused Phase II.

    This is the exact configuration ``repro serve --workers N`` hands
    its forked children; tests override any knob per call.
    """
    ontology, kb, model = trained_pipeline

    def factory(**config_kwargs) -> NeuralConceptLinker:
        config_kwargs.setdefault("k", 5)
        config_kwargs.setdefault("artifact_dir", str(compiled_artifact))
        config_kwargs.setdefault("mmap_artifact", True)
        config_kwargs.setdefault("fuse_phase2", True)
        return NeuralConceptLinker(
            model, ontology, LinkerConfig(**config_kwargs), kb=kb
        )

    return factory


@pytest.fixture
def make_procpool_service(trained_pipeline, make_worker_linker):
    """Factory for multi-process services; all built services are
    stopped (pools torn down) at test exit, passing or not."""
    ontology, _, _ = trained_pipeline
    created = []

    def factory(
        workers: int = 2,
        linker_kwargs: dict | None = None,
        build_linker=None,
        **serving_kwargs,
    ) -> ProcPoolLinkingService:
        if build_linker is None:
            linker = make_worker_linker(**(linker_kwargs or {}))

            def build_linker():
                return linker

        config = ServingConfig(workers=workers, **serving_kwargs)
        service = ProcPoolLinkingService(build_linker, ontology, config)
        created.append(service)
        return service

    yield factory
    for service in created:
        service.stop()


class GatedWarmup:
    """Wraps ``linker.warm_cache`` so a test controls when warm-up ends."""

    def __init__(self, linker: NeuralConceptLinker) -> None:
        self.release = threading.Event()
        self.entered = threading.Event()
        original = linker.warm_cache

        def gated(cids=None):
            self.entered.set()
            assert self.release.wait(10.0), "test never released warm-up"
            return original(cids)

        linker.warm_cache = gated  # type: ignore[method-assign]
