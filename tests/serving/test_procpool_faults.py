"""Fault drills for the multi-process tier (opt in with ``-m faults``).

Two failure classes the tier must contain:

* **Worker death under load** — SIGKILL (the OOM-killer's signature)
  mid-traffic: the dispatcher detects the EOF'd pipe, respawns the
  worker, re-dispatches the in-flight job, and every request still
  resolves.  Zero hung clients, zero dropped requests.
* **Torn slab at map time** — a truncated or bit-flipped ``slab.bin``
  is detected when the worker maps it; the error names the file, and a
  service with any poisoned worker refuses readiness (better a refused
  rollout than N-1 workers hiding a corrupt map).
"""

import os
import shutil
import signal
import threading
import time

import pytest

from repro.serving.service import ServiceNotReadyError

from tests.serving.conftest import SERVING_QUERIES

pytestmark = pytest.mark.faults


def _wait_until(predicate, timeout=15.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestWorkerDeathUnderLoad:
    def test_sigkill_mid_load_drops_nothing(self, make_procpool_service):
        service = make_procpool_service(
            workers=2, warm_on_start=False
        ).start(wait=True)
        requests_per_client = 16
        clients = 4
        served = []
        failures = []
        midpoint = threading.Event()

        def client(index: int) -> None:
            for round_trip in range(requests_per_client):
                if round_trip == requests_per_client // 2:
                    midpoint.set()
                query = SERVING_QUERIES[
                    (index + round_trip) % len(SERVING_QUERIES)
                ]
                try:
                    results = service.link_many([query], timeout=30.0)
                    served.append(len(results))
                except Exception as error:  # noqa: BLE001 - collected
                    failures.append((query, error))

        threads = [
            threading.Thread(target=client, args=(index,))
            for index in range(clients)
        ]
        for thread in threads:
            thread.start()
        # Kill a worker while traffic is in full flight.
        assert midpoint.wait(30.0)
        victim = service._frontend.pool.workers[0]
        os.kill(victim.pid, signal.SIGKILL)
        for thread in threads:
            thread.join(timeout=60.0)
        # No hung client threads, no dropped or failed requests: every
        # one of the 64 calls resolved with a result.
        assert not any(thread.is_alive() for thread in threads)
        assert not failures
        assert len(served) == clients * requests_per_client
        stats = service.snapshot()["frontend"]
        assert stats["worker_deaths"] >= 1, stats
        # Readiness never flapped: a respawning slot shrinks capacity,
        # it does not reject traffic.
        assert service.ready
        # The pool healed: the replacement handshakes and the service
        # serves from a full complement again.
        assert _wait_until(
            lambda: all(h.ready for h in service._frontend.pool.workers)
        ), service.snapshot()
        assert len(service.link_many(["ckd stage 5"])) == 1
        respawned = service._frontend.pool.workers[0]
        assert respawned.pid != victim.pid
        assert respawned.respawns >= 1

    def test_repeated_kills_still_heal(self, make_procpool_service):
        # Kill the same slot twice in a row (between requests): each
        # death is detected on the next dispatch attempt, the job is
        # re-dispatched, and the caller never sees either crash.
        service = make_procpool_service(
            workers=1, warm_on_start=False
        ).start(wait=True)
        for _ in range(2):
            worker = service._frontend.pool.workers[0]
            # Wait out the handshake so the handle's pid is the live one.
            assert _wait_until(lambda: worker.ready and worker.pid > 0)
            os.kill(worker.pid, signal.SIGKILL)
            results = service.link_many(["anemia blood loss"], timeout=30.0)
            assert len(results) == 1 and results[0].ranked
        stats = service.snapshot()["frontend"]
        assert stats["worker_deaths"] >= 2, stats


class TestTornSlabAtMapTime:
    def _corrupt_copy(self, compiled_artifact, tmp_path, mode: str):
        clone = tmp_path / f"torn-{mode}"
        shutil.copytree(compiled_artifact, clone)
        slab = clone / "slab.bin"
        if mode == "truncate":
            with open(slab, "r+b") as handle:
                handle.truncate(slab.stat().st_size - 64)
        else:  # bit flip in the middle of the mapped region
            data = bytearray(slab.read_bytes())
            data[len(data) // 2] ^= 0x40
            slab.write_bytes(bytes(data))
        return clone

    @pytest.mark.parametrize("mode", ["truncate", "bitflip"])
    def test_corrupt_slab_refuses_readiness(
        self,
        mode,
        compiled_artifact,
        tmp_path,
        make_procpool_service,
        make_worker_linker,
    ):
        clone = self._corrupt_copy(compiled_artifact, tmp_path, mode)
        # Deferred: the linker is built (and the slab mapped) inside
        # each forked child, which is where the corruption is detected.
        service = make_procpool_service(
            workers=2,
            warm_on_start=False,
            build_linker=lambda: make_worker_linker(artifact_dir=str(clone)),
        )
        # The worker's map-time verification rejects the slab; start
        # surfaces the child's error, naming the corrupt file.
        with pytest.raises(RuntimeError, match="slab.bin"):
            service.start(wait=True)
        assert not service.ready
        with pytest.raises(ServiceNotReadyError):
            service.link("ckd stage 5")
        # Readiness stays poisoned — no amount of waiting flips it.
        assert not _wait_until(lambda: service.ready, timeout=0.5)
