"""HTTP-level tests for the serving subsystem.

One real server (ephemeral port, warm-started) backs most tests; the
readiness tests build their own gated instances.
"""

import json
import threading
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.api import API_VERSION
from repro.core.config import ServingConfig
from repro.serving.server import create_server, run_server
from repro.serving.service import LinkingService, ServiceNotReadyError

from tests.serving.conftest import SERVING_QUERIES, GatedWarmup


def _post(base, path, payload, timeout=30.0):
    body = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        base + path, data=body, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as error:
        return error.code, json.load(error)


def _get(base, path, timeout=30.0):
    try:
        with urllib.request.urlopen(base + path, timeout=timeout) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as error:
        return error.code, json.load(error)


@pytest.fixture(scope="module")
def running_server(trained_pipeline):
    from repro.core.config import LinkerConfig
    from repro.core.linker import NeuralConceptLinker

    ontology, kb, model = trained_pipeline
    linker = NeuralConceptLinker(model, ontology, LinkerConfig(k=5), kb=kb)
    service = LinkingService(
        linker,
        ServingConfig(port=0, max_batch_size=8, batch_wait_ms=2.0,
                      request_timeout_s=30.0),
    )
    service.start(wait=True)
    server = create_server(service, port=0)
    thread = threading.Thread(
        target=run_server,
        args=(server,),
        kwargs={"install_signal_handlers": False},
        daemon=True,
    )
    thread.start()
    base = f"http://127.0.0.1:{server.port}"
    yield base, service
    server.shutdown()
    thread.join(5.0)


class TestHealthAndReadiness:
    def test_healthz_ok(self, running_server):
        base, _ = running_server
        status, payload = _get(base, "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["api_version"] == API_VERSION

    def test_readyz_ok_after_warmup(self, running_server):
        base, _ = running_server
        status, _ = _get(base, "/readyz")
        assert status == 200

    def test_readyz_503_until_warmup_completes(self, make_linker):
        linker = make_linker()
        gate = GatedWarmup(linker)
        service = LinkingService(linker, ServingConfig(port=0))
        server = create_server(service, port=0)
        thread = threading.Thread(
            target=run_server,
            args=(server,),
            kwargs={"install_signal_handlers": False},
            daemon=True,
        )
        thread.start()
        base = f"http://127.0.0.1:{server.port}"
        try:
            service.start()
            assert gate.entered.wait(10.0)
            status, payload = _get(base, "/readyz")
            assert status == 503
            assert payload["error"]["code"] == "not_ready"
            # /link is rejected with the same structured 503.
            status, payload = _post(base, "/v1/link", {"query": "ckd stage 5"})
            assert status == 503
            assert payload["error"]["code"] == "not_ready"
            # Liveness is independent of readiness.
            assert _get(base, "/healthz")[0] == 200
            gate.release.set()
            deadline = threading.Event()
            for _ in range(100):
                if _get(base, "/readyz")[0] == 200:
                    break
                deadline.wait(0.05)
            assert _get(base, "/readyz")[0] == 200
            assert _post(base, "/v1/link", {"query": "ckd stage 5"})[0] == 200
        finally:
            server.shutdown()
            thread.join(5.0)

    def test_no_warm_is_ready_immediately(self, make_linker):
        service = LinkingService(
            make_linker(), ServingConfig(port=0, warm_on_start=False)
        )
        service.start()
        assert service.ready
        service.stop()
        assert not service.healthy
        with pytest.raises(ServiceNotReadyError):
            service.link("ckd stage 5")


class TestLinkEndpoint:
    def test_single_query_shape(self, running_server):
        base, _ = running_server
        status, payload = _post(base, "/v1/link", {"query": "ckd stage 5"})
        assert status == 200
        (result,) = payload["results"]
        assert result["query"] == "ckd stage 5"
        assert result["ranked"][0]["cid"] == "N18.5"
        top = result["ranked"][0]
        assert {"cid", "log_prob", "loss", "keyword_score", "description"} <= set(top)
        assert top["description"] == "chronic kidney disease, stage 5"
        assert set(result["timing"]) == {"OR", "CR", "ED", "RT"}

    def test_multi_query_preserves_order(self, running_server):
        base, _ = running_server
        queries = ["ckd stage 5", "scorbutic anemia", "acute abdomen"]
        status, payload = _post(base, "/v1/link", {"queries": queries})
        assert status == 200
        assert [r["query"] for r in payload["results"]] == queries

    def test_k_and_top_controls(self, running_server):
        base, _ = running_server
        status, payload = _post(
            base, "/v1/link", {"query": "anemia", "k": 5, "top": 2}
        )
        assert status == 200
        assert len(payload["results"][0]["ranked"]) <= 2

    def test_no_match_returns_empty_ranking(self, running_server):
        base, _ = running_server
        status, payload = _post(base, "/v1/link", {"query": "qqqqq zzzzz"})
        assert status == 200
        assert payload["results"][0]["ranked"] == []


class TestConcurrencyDeterminism:
    def test_32_concurrent_requests_match_sequential(
        self, running_server, make_linker
    ):
        """The acceptance criterion: 32 in-flight requests, coalesced by
        the batcher into arbitrary batch shapes, must return rankings
        identical (cids and scores) to a fresh sequential linker."""
        base, _ = running_server
        sequential = make_linker()
        queries = [SERVING_QUERIES[i % len(SERVING_QUERIES)] for i in range(32)]
        expected = {
            query: [
                [c.cid, pytest.approx(c.log_prob)]
                for c in sequential.link(query).ranked
            ]
            for query in set(queries)
        }

        def do_request(query):
            status, payload = _post(base, "/v1/link", {"query": query})
            assert status == 200
            return query, payload["results"][0]["ranked"]

        with ThreadPoolExecutor(max_workers=32) as pool:
            responses = list(pool.map(do_request, queries))
        assert len(responses) == 32
        for query, ranked in responses:
            got = [[c["cid"], c["log_prob"]] for c in ranked]
            assert got == expected[query], query

    def test_batcher_actually_coalesced_something(self, running_server):
        base, _ = running_server
        _, payload = _get(base, "/v1/metrics")
        stats = payload["batcher"]
        assert stats["items"] > stats["batches"] >= 1
        assert stats["max_batch"] > 1


class TestMetricsEndpoint:
    def test_snapshot_sections(self, running_server):
        base, _ = running_server
        _post(base, "/v1/link", {"query": "ckd stage 5"})
        status, payload = _get(base, "/v1/metrics")
        assert status == 200
        assert payload["ready"] is True
        assert payload["counters"]["requests_total"] >= 1
        request_histogram = payload["histograms"]["request_seconds"]
        assert {"count", "sum", "mean", "p50", "p95", "p99"} <= set(request_histogram)
        assert request_histogram["p50"] <= request_histogram["p99"]
        for phase in ("OR", "CR", "ED", "RT"):
            assert payload["histograms"][f"phase_seconds.{phase}"]["count"] >= 1
        assert payload["caches"]["encodings"]["hit_rate"] >= 0.0
        assert payload["config"]["max_batch_size"] == 8

    def test_warm_cache_yields_high_hit_rate(self, running_server):
        base, _ = running_server
        for query in SERVING_QUERIES:
            _post(base, "/v1/link", {"query": query})
        _, payload = _get(base, "/v1/metrics")
        encodings = payload["caches"]["encodings"]
        # Warm-up pre-encoded every indexed concept, so live traffic
        # almost only hits (misses all date from warm-up itself).
        assert encodings["hits"] > 0
        assert encodings["hit_rate"] > 0.4


class TestErrorHandling:
    def test_unknown_route_404(self, running_server):
        base, _ = running_server
        status, payload = _get(base, "/nope")
        assert status == 404
        assert payload["error"]["code"] == "not_found"
        assert _post(base, "/nope", {})[0] == 404

    def test_invalid_json_400(self, running_server):
        base, _ = running_server
        request = urllib.request.Request(
            base + "/v1/link",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30.0)
        assert excinfo.value.code == 400
        payload = json.load(excinfo.value)
        assert payload["error"]["code"] == "bad_request"

    @pytest.mark.parametrize(
        "body",
        [
            {},
            {"query": ""},
            {"query": 7},
            {"queries": []},
            {"queries": ["ok", ""]},
            {"query": "x", "queries": ["y"]},
            {"query": "x", "k": 0},
            {"query": "x", "k": "five"},
            {"query": "x", "top": 0},
            ["not", "an", "object"],
        ],
    )
    def test_bad_bodies_400(self, running_server, body):
        base, _ = running_server
        status, payload = _post(base, "/v1/link", body)
        assert status == 400
        assert payload["error"]["code"] == "bad_request"
        assert payload["error"]["message"]

    def test_empty_body_400(self, running_server):
        base, _ = running_server
        request = urllib.request.Request(base + "/v1/link", data=b"")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30.0)
        assert excinfo.value.code == 400


class TestGracefulShutdown:
    def test_stop_drains_and_reports_unhealthy(self, make_linker):
        service = LinkingService(
            make_linker(), ServingConfig(port=0, warm_on_start=False)
        )
        service.start()
        assert service.link("ckd stage 5").ranked
        service.stop()
        assert not service.healthy
        assert not service.ready
        service.stop()  # idempotent
