"""Tests for counters, streaming latency histograms, and the registry."""

import threading

import pytest

from repro.serving.metrics import Counter, LatencyHistogram, MetricsRegistry
from repro.utils.timing import TimingBreakdown


class TestCounter:
    def test_increments(self):
        counter = Counter("requests")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)

    def test_thread_safe_increments(self):
        counter = Counter("x")

        def bump():
            for _ in range(10_000):
                counter.inc()

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 40_000


class TestLatencyHistogram:
    def test_empty(self):
        histogram = LatencyHistogram("lat")
        assert histogram.count == 0
        assert histogram.quantile(0.5) == 0.0
        assert histogram.mean == 0.0

    def test_count_sum_mean_exact(self):
        histogram = LatencyHistogram("lat")
        for value in (0.001, 0.002, 0.003):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(0.006)
        assert histogram.mean == pytest.approx(0.002)

    def test_quantiles_are_bucket_accurate(self):
        histogram = LatencyHistogram("lat")
        # 100 samples at 1ms, 5 at 100ms: p50 ~ 1ms, p99 ~ 100ms.
        for _ in range(100):
            histogram.observe(0.001)
        for _ in range(5):
            histogram.observe(0.100)
        p50 = histogram.quantile(0.50)
        p99 = histogram.quantile(0.99)
        # Bucket resolution is sqrt(2); accept one bucket of error.
        assert 0.0005 <= p50 <= 0.002
        assert 0.05 <= p99 <= 0.150
        assert p50 < p99

    def test_quantiles_clamped_to_observed_range(self):
        histogram = LatencyHistogram("lat")
        histogram.observe(0.0042)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert histogram.quantile(q) == pytest.approx(0.0042)

    def test_overflow_bucket_reports_max(self):
        histogram = LatencyHistogram("lat", bounds=[0.01, 0.1])
        histogram.observe(5.0)
        histogram.observe(9.0)
        assert histogram.quantile(0.99) == pytest.approx(9.0)

    def test_invalid_inputs(self):
        histogram = LatencyHistogram("lat")
        with pytest.raises(ValueError):
            histogram.observe(-0.1)
        with pytest.raises(ValueError):
            histogram.quantile(1.5)
        with pytest.raises(ValueError):
            LatencyHistogram("bad", bounds=[])
        with pytest.raises(ValueError):
            LatencyHistogram("bad", bounds=[-1.0])

    def test_snapshot_shape(self):
        histogram = LatencyHistogram("lat")
        histogram.observe(0.01)
        snapshot = histogram.snapshot()
        assert set(snapshot) == {"count", "sum", "mean", "p50", "p95", "p99"}
        assert snapshot["count"] == 1

    def test_concurrent_observe(self):
        histogram = LatencyHistogram("lat")

        def observe_many():
            for _ in range(5_000):
                histogram.observe(0.002)

        threads = [threading.Thread(target=observe_many) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert histogram.count == 20_000
        assert histogram.sum == pytest.approx(40.0)


class TestMetricsRegistry:
    def test_counter_get_or_create_by_name(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.counter("a") is not registry.counter("b")

    def test_histogram_get_or_create_by_name(self):
        registry = MetricsRegistry()
        assert registry.histogram("h") is registry.histogram("h")

    def test_observe_breakdown_fans_out_phases(self):
        registry = MetricsRegistry()
        breakdown = TimingBreakdown()
        breakdown.add("OR", 0.001)
        breakdown.add("CR", 0.002)
        breakdown.add("ED", 0.040)
        breakdown.add("RT", 0.0005)
        registry.observe_breakdown(breakdown)
        registry.observe_breakdown(breakdown)
        snapshot = registry.snapshot()
        for phase in ("OR", "CR", "ED", "RT"):
            assert snapshot["histograms"][f"phase_seconds.{phase}"]["count"] == 2
        assert snapshot["histograms"]["phase_seconds.ED"]["sum"] == pytest.approx(0.08)

    def test_snapshot_is_json_ready(self):
        import json

        registry = MetricsRegistry()
        registry.counter("requests_total").inc(3)
        registry.histogram("request_seconds").observe(0.02)
        payload = json.dumps(registry.snapshot())
        assert "requests_total" in payload
        assert "request_seconds" in payload
