"""Tests for counters, streaming latency histograms, and the registry."""

import threading

import pytest

from repro.serving.metrics import Counter, LatencyHistogram, MetricsRegistry
from repro.utils.timing import TimingBreakdown


class TestCounter:
    def test_increments(self):
        counter = Counter("requests")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)

    def test_thread_safe_increments(self):
        counter = Counter("x")

        def bump():
            for _ in range(10_000):
                counter.inc()

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 40_000


class TestLatencyHistogram:
    def test_empty(self):
        histogram = LatencyHistogram("lat")
        assert histogram.count == 0
        assert histogram.quantile(0.5) == 0.0
        assert histogram.mean == 0.0

    def test_count_sum_mean_exact(self):
        histogram = LatencyHistogram("lat")
        for value in (0.001, 0.002, 0.003):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(0.006)
        assert histogram.mean == pytest.approx(0.002)

    def test_quantiles_are_bucket_accurate(self):
        histogram = LatencyHistogram("lat")
        # 100 samples at 1ms, 5 at 100ms: p50 ~ 1ms, p99 ~ 100ms.
        for _ in range(100):
            histogram.observe(0.001)
        for _ in range(5):
            histogram.observe(0.100)
        p50 = histogram.quantile(0.50)
        p99 = histogram.quantile(0.99)
        # Bucket resolution is sqrt(2); accept one bucket of error.
        assert 0.0005 <= p50 <= 0.002
        assert 0.05 <= p99 <= 0.150
        assert p50 < p99

    def test_quantiles_clamped_to_observed_range(self):
        histogram = LatencyHistogram("lat")
        histogram.observe(0.0042)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert histogram.quantile(q) == pytest.approx(0.0042)

    def test_overflow_bucket_reports_max(self):
        histogram = LatencyHistogram("lat", bounds=[0.01, 0.1])
        histogram.observe(5.0)
        histogram.observe(9.0)
        assert histogram.quantile(0.99) == pytest.approx(9.0)

    def test_invalid_inputs(self):
        histogram = LatencyHistogram("lat")
        with pytest.raises(ValueError):
            histogram.observe(-0.1)
        with pytest.raises(ValueError):
            histogram.quantile(1.5)
        with pytest.raises(ValueError):
            LatencyHistogram("bad", bounds=[])
        with pytest.raises(ValueError):
            LatencyHistogram("bad", bounds=[-1.0])

    def test_snapshot_shape(self):
        histogram = LatencyHistogram("lat")
        histogram.observe(0.01)
        snapshot = histogram.snapshot()
        assert set(snapshot) == {"count", "sum", "mean", "p50", "p95", "p99"}
        assert snapshot["count"] == 1

    def test_empty_histogram_defined_for_all_quantiles(self):
        histogram = LatencyHistogram("lat")
        for q in (0.0, 0.5, 1.0):
            assert histogram.quantile(q) == 0.0

    def test_q0_is_exact_min_q1_is_exact_max(self):
        histogram = LatencyHistogram("lat")
        for value in (0.003, 0.0007, 0.19, 0.04):
            histogram.observe(value)
        # Extremes are the tracked min/max, not bucket-edge estimates.
        assert histogram.quantile(0.0) == 0.0007
        assert histogram.quantile(1.0) == 0.19

    def test_q0_q1_with_single_zero_sample(self):
        histogram = LatencyHistogram("lat")
        histogram.observe(0.0)
        assert histogram.quantile(0.0) == 0.0
        assert histogram.quantile(1.0) == 0.0

    def test_buckets_are_cumulative_and_end_at_inf(self):
        import math

        histogram = LatencyHistogram("lat", bounds=[0.01, 0.1])
        for value in (0.005, 0.05, 5.0):
            histogram.observe(value)
        cumulative, total_sum, count = histogram.buckets()
        assert [pair[1] for pair in cumulative] == [1, 2, 3]
        assert cumulative[-1][0] == math.inf
        assert count == 3
        assert total_sum == pytest.approx(5.055)

    def test_concurrent_observe(self):
        histogram = LatencyHistogram("lat")

        def observe_many():
            for _ in range(5_000):
                histogram.observe(0.002)

        threads = [threading.Thread(target=observe_many) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert histogram.count == 20_000
        assert histogram.sum == pytest.approx(40.0)


class TestMetricsRegistry:
    def test_counter_get_or_create_by_name(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.counter("a") is not registry.counter("b")

    def test_histogram_get_or_create_by_name(self):
        registry = MetricsRegistry()
        assert registry.histogram("h") is registry.histogram("h")

    def test_observe_breakdown_fans_out_phases(self):
        registry = MetricsRegistry()
        breakdown = TimingBreakdown()
        breakdown.add("OR", 0.001)
        breakdown.add("CR", 0.002)
        breakdown.add("ED", 0.040)
        breakdown.add("RT", 0.0005)
        registry.observe_breakdown(breakdown)
        registry.observe_breakdown(breakdown)
        snapshot = registry.snapshot()
        for phase in ("OR", "CR", "ED", "RT"):
            assert snapshot["histograms"][f"phase_seconds.{phase}"]["count"] == 2
        assert snapshot["histograms"]["phase_seconds.ED"]["sum"] == pytest.approx(0.08)

    def test_snapshot_is_json_ready(self):
        import json

        registry = MetricsRegistry()
        registry.counter("requests_total").inc(3)
        registry.histogram("request_seconds").observe(0.02)
        payload = json.dumps(registry.snapshot())
        assert "requests_total" in payload
        assert "request_seconds" in payload

    def test_collect_returns_live_metrics(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc(2)
        counters, histograms = registry.collect()
        assert counters["hits"] is registry.counter("hits")
        registry.counter("hits").inc()
        assert counters["hits"].value == 3
        assert histograms == {}

    def test_concurrent_registration_and_increments(self):
        # 16 threads race get-or-create on overlapping names while
        # incrementing: every thread must land on the same Counter
        # object per name and no increment may be lost.
        registry = MetricsRegistry()
        names = [f"metric_{index}" for index in range(4)]
        barrier = threading.Barrier(16)
        increments_per_thread = 2_000

        def worker():
            barrier.wait()
            for index in range(increments_per_thread):
                name = names[index % len(names)]
                registry.counter(name).inc()
                registry.histogram(name).observe(0.001)

        threads = [threading.Thread(target=worker) for _ in range(16)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        expected = 16 * increments_per_thread // len(names)
        for name in names:
            assert registry.counter(name).value == expected
            assert registry.histogram(name).count == expected
        counters, histograms = registry.collect()
        assert sorted(counters) == names
        assert sorted(histograms) == names
