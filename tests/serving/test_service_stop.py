"""LinkingService.stop(): idempotent and safe from any state."""

import threading

import pytest

from repro.core.config import ServingConfig
from repro.serving.service import LinkingService


@pytest.fixture
def service(make_linker):
    return LinkingService(
        make_linker(), ServingConfig(warm_on_start=False)
    )


class TestStopIdempotency:
    def test_stop_before_start_is_safe(self, service):
        service.stop()
        service.stop()
        assert not service.healthy

    def test_start_after_stop_raises(self, service):
        service.stop()
        with pytest.raises(RuntimeError, match="stopped"):
            service.start()

    def test_double_stop_after_start(self, service):
        service.start(wait=True)
        assert service.link("ckd stage 5").ranked
        service.stop()
        service.stop()
        assert not service.ready

    def test_concurrent_stops_race_safely(self, service):
        service.start(wait=True)
        barrier = threading.Barrier(4)
        errors = []

        def stopper():
            barrier.wait(timeout=5.0)
            try:
                service.stop()
            except Exception as error:  # noqa: BLE001 - the finding
                errors.append(error)

        threads = [threading.Thread(target=stopper) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        assert not errors
        assert not service.healthy

    def test_stop_joins_warm_thread(self, make_linker):
        service = LinkingService(
            make_linker(), ServingConfig(warm_on_start=True)
        )
        service.start(wait=True)
        service.stop()
        assert service._warm_thread is not None
        assert not service._warm_thread.is_alive()

    def test_stop_closes_attached_lifecycle(self, service):
        closed = []

        class FakeController:
            def close(self):
                closed.append(True)

            def observe_results(self, results):
                pass

        service.attach_lifecycle(FakeController())
        service.start(wait=True)
        service.stop()
        assert closed == [True]

    def test_attach_twice_raises(self, service):
        service.attach_lifecycle(object())
        with pytest.raises(RuntimeError, match="already attached"):
            service.attach_lifecycle(object())
