"""Cross-process observability end-to-end: stitched traces, worker
metrics exposition, SLO surfaces, and request-ID echo on errors.

One warm multi-process server (2 forked workers, sampling every
request) backs the HTTP tests; the forced-fusion and shed tests drive
the front-end directly for determinism.
"""

import json
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.config import LinkerConfig, ServingConfig
from repro.core.linker import NeuralConceptLinker
from repro.obs.trace import Tracer
from repro.serving.frontend import ShedError, build_frontend
from repro.serving.server import create_server, run_server
from repro.serving.service import ProcPoolLinkingService

from .conftest import SERVING_QUERIES


def _post(base, path, payload, headers=None, timeout=60.0):
    body = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        base + path,
        data=body,
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, dict(response.headers), json.load(response)
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), json.load(error)


def _get(base, path, timeout=60.0):
    try:
        with urllib.request.urlopen(base + path, timeout=timeout) as response:
            return response.status, dict(response.headers), response.read().decode("utf-8")
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read().decode("utf-8")


def _get_json(base, path, timeout=60.0):
    status, headers, text = _get(base, path, timeout=timeout)
    return status, headers, json.loads(text)


def _spans_by_name(trace_dict):
    by_name = {}
    for span in trace_dict["spans"]:
        by_name.setdefault(span["name"], []).append(span)
    return by_name


@pytest.fixture(scope="module")
def mp_server(trained_pipeline, compiled_artifact):
    ontology, kb, model = trained_pipeline
    linker = NeuralConceptLinker(
        model,
        ontology,
        LinkerConfig(
            k=5,
            artifact_dir=str(compiled_artifact),
            mmap_artifact=True,
            fuse_phase2=True,
        ),
        kb=kb,
    )
    service = ProcPoolLinkingService(
        lambda: linker,
        ontology,
        ServingConfig(
            port=0, workers=2, trace_sample_rate=1.0, trace_buffer=64,
            max_batch_size=8,
        ),
    )
    service.start(wait=True)
    server = create_server(service, port=0)
    thread = threading.Thread(
        target=run_server,
        args=(server,),
        kwargs={"install_signal_handlers": False},
        daemon=True,
    )
    thread.start()
    base = f"http://127.0.0.1:{server.port}"
    yield base, service
    server.shutdown()
    thread.join(5.0)


class TestStitchedTraceTree:
    def test_procpool_request_yields_one_stitched_tree(self, mp_server):
        base, _ = mp_server
        status, headers, payload = _post(
            base, "/v1/link", {"query": "ckd stage 5"},
            headers={"X-Request-ID": "req-mp-tree"},
        )
        assert status == 200
        assert headers["X-Request-ID"] == "req-mp-tree"

        status, _, body = _get_json(base, "/v1/traces?request_id=req-mp-tree")
        assert status == 200
        (trace_dict,) = body["traces"]
        by_name = _spans_by_name(trace_dict)
        # The stitched acceptance tree: HTTP root -> service request ->
        # front-end queue/fuse/dispatch -> the worker's local root ->
        # the linker's Figure-11 phases, all in ONE trace.
        for name in (
            "http.link",
            "service.request",
            "frontend.queue",
            "frontend.fuse",
            "frontend.dispatch",
            "worker.link",
            "linker.rewrite",
            "linker.retrieve",
            "linker.phase2",
            "linker.rerank",
        ):
            assert name in by_name, (name, sorted(by_name))
        root = by_name["http.link"][0]
        assert root["parent_id"] is None
        request = by_name["service.request"][0]
        assert request["parent_id"] == root["span_id"]
        # Queue wait, fusion marker, and dispatch all hang under the
        # request span.
        for name in ("frontend.queue", "frontend.fuse", "frontend.dispatch"):
            assert by_name[name][0]["parent_id"] == request["span_id"], name
        dispatch = by_name["frontend.dispatch"][0]
        worker_root = by_name["worker.link"][0]
        assert worker_root["parent_id"] == dispatch["span_id"]
        # The worker subtree names its process and slot, and they agree
        # with what the dispatcher recorded on the dispatch span.
        worker_id = worker_root["tags"]["worker_id"]
        assert dispatch["tags"]["worker"] == worker_id
        status, _, admin = _get_json(base, "/v1/admin/workers")
        assert status == 200
        pids = {entry["worker_id"]: entry["pid"] for entry in admin["workers"]}
        assert worker_root["tags"]["pid"] == pids[worker_id]
        # Figure-11 taxonomy survives the process hop.
        linker_parents = set()
        for name, phase in (
            ("linker.rewrite", "OR"),
            ("linker.retrieve", "CR"),
            ("linker.phase2", "ED"),
            ("linker.rerank", "RT"),
        ):
            assert by_name[name][0]["tags"]["phase"] == phase
            linker_parents.add(by_name[name][0]["parent_id"])
        assert linker_parents == {worker_root["span_id"]}

    def test_sixteen_concurrent_callers_do_not_cross_contaminate(
        self, mp_server
    ):
        base, _ = mp_server
        queries = {
            f"req-mp-conc-{index}": SERVING_QUERIES[index % len(SERVING_QUERIES)]
            for index in range(16)
        }

        def do_request(item):
            request_id, query = item
            status, _, _ = _post(
                base, "/v1/link", {"query": query},
                headers={"X-Request-ID": request_id},
            )
            assert status == 200

        with ThreadPoolExecutor(max_workers=16) as pool:
            list(pool.map(do_request, queries.items()))

        for request_id, query in queries.items():
            status, _, body = _get_json(
                base, f"/v1/traces?request_id={request_id}"
            )
            assert status == 200, request_id
            by_name = _spans_by_name(body["traces"][0])
            # Fused dispatch shares worker jobs across requests; each
            # trace must still hold exactly its own query's spans.
            assert len(by_name["service.request"]) == 1
            assert by_name["service.request"][0]["tags"]["query"] == query
            for name in ("frontend.dispatch", "worker.link",
                         "linker.rewrite", "linker.phase2"):
                assert len(by_name[name]) == 1, (request_id, name)


class TestForcedFusionTrace:
    def test_three_fused_bursts_each_get_a_complete_stitched_tree(
        self, make_worker_linker
    ):
        # The lone worker's factory sleeps before handing back the
        # linker, so its ready handshake provably lands after all three
        # submits are queued; the first dispatch then fuses them into
        # ONE worker job, so these span trees can only have come
        # through the fused cross-process path.
        linker = make_worker_linker()

        def slow_factory():
            time.sleep(0.5)
            return linker

        frontend = build_frontend(
            slow_factory, workers=1, max_batch_size=8, warm=False
        )
        tracer = Tracer(sample_rate=1.0, capacity=8)
        bursts = [SERVING_QUERIES[i] for i in range(3)]
        try:
            roots = [
                tracer.start_trace("bench.link", request_id=f"req-fuse-{i}")
                for i in range(3)
            ]
            futures = [
                frontend.submit([query], [None], spans=[root])
                for query, root in zip(bursts, roots)
            ]
            results = [future.result(60.0) for future in futures]
            for root in roots:
                root.end()
            stats = frontend.stats()
            assert stats["jobs_ok"] == 1, stats
        finally:
            frontend.stop()
        assert all(len(r) == 1 for r in results)
        for index, query in enumerate(bursts):
            trace_dict = tracer.find(f"req-fuse-{index}")
            assert trace_dict is not None
            by_name = _spans_by_name(trace_dict)
            fuse = by_name["frontend.fuse"][0]
            assert fuse["tags"] == {"fused_jobs": 3, "fused_queries": 3}
            worker_root = by_name["worker.link"][0]
            assert worker_root["tags"]["worker_id"] == 0
            assert worker_root["tags"]["pid"] > 0
            assert worker_root["tags"]["batch_queries"] == 3
            for name, phase in (
                ("linker.rewrite", "OR"),
                ("linker.retrieve", "CR"),
                ("linker.phase2", "ED"),
                ("linker.rerank", "RT"),
            ):
                assert len(by_name[name]) == 1, (index, name)
                assert by_name[name][0]["tags"]["phase"] == phase


class TestShedObservability:
    def test_shed_request_gets_event_and_counter(self, make_worker_linker):
        from repro.serving.metrics import MetricsRegistry

        linker = make_worker_linker()
        metrics = MetricsRegistry()
        # bound=1 and a worker whose factory sleeps past both submits:
        # nothing can drain the queue, so the second submit must shed
        # deterministically.

        def slow_factory():
            time.sleep(0.5)
            return linker

        frontend = build_frontend(
            slow_factory, workers=1, admission_bound=1, warm=False,
            metrics=metrics,
        )
        tracer = Tracer(sample_rate=1.0, capacity=4)
        try:
            first = tracer.start_trace("bench.link", request_id="req-kept")
            frontend.submit(["ckd stage 5"], [None], spans=[first])
            second = tracer.start_trace("bench.link", request_id="req-shed")
            with pytest.raises(ShedError) as excinfo:
                frontend.submit(["anemia"], [None], spans=[second])
            assert excinfo.value.reason == "queue_full"
            second.end()
        finally:
            frontend.stop()
        trace_dict = tracer.find("req-shed")
        by_name = _spans_by_name(trace_dict)
        events = by_name["bench.link"][0]["events"]
        shed_events = [e for e in events if e["name"] == "frontend.shed"]
        assert shed_events and shed_events[0]["attrs"] == {
            "reason": "reject_new"
        }
        # The queue span closed with the shed tag instead of leaking.
        assert by_name["frontend.queue"][0]["tags"]["shed"] == "reject_new"
        counters, _ = metrics.collect()
        assert counters["frontend.shed.reject_new"].value == 1


class TestAdminWorkersEndpoint:
    def test_worker_table_frontend_and_slo(self, mp_server):
        base, service = mp_server
        _post(base, "/v1/link", {"query": "ckd stage 5"})
        status, _, body = _get_json(base, "/v1/admin/workers")
        assert status == 200
        assert len(body["workers"]) == 2
        for entry in body["workers"]:
            assert entry["ready"] is True
            assert entry["pid"] > 0
            for key in ("jobs", "queries", "errors", "respawns",
                        "degraded", "busy_s"):
                assert key in entry
        assert sum(e["queries"] for e in body["workers"]) >= 1
        frontend = body["frontend"]
        assert frontend["ready"] is True
        assert frontend["init_failed"] is False
        assert "queue_depth" in frontend
        assert "shed_queue_full" in frontend
        slo = body["slo"]
        assert slo["requests"] >= 1
        assert 0.0 <= slo["availability"] <= 1.0

    def test_single_process_tier_answers_404(self, make_linker):
        from repro.serving.service import LinkingService

        service = LinkingService(
            make_linker(), ServingConfig(port=0, warm_on_start=False)
        )
        service.start(wait=True)
        server = create_server(service, port=0)
        thread = threading.Thread(
            target=run_server, args=(server,),
            kwargs={"install_signal_handlers": False}, daemon=True,
        )
        thread.start()
        base = f"http://127.0.0.1:{server.port}"
        try:
            status, _, body = _get_json(base, "/v1/admin/workers")
            assert status == 404
            assert body["error"]["code"] == "workers_disabled"
        finally:
            server.shutdown()
            thread.join(5.0)


class TestPrometheusExposition:
    def test_per_worker_and_frontend_series_are_exported(self, mp_server):
        base, _ = mp_server
        _post(base, "/v1/link", {"query": "ckd stage 5"})
        status, _, text = _get(base, "/v1/metrics?format=prometheus")
        assert status == 200
        # Per-worker labeled families — one sample per worker slot.
        for worker in ("0", "1"):
            assert f'repro_worker_jobs_total{{worker="{worker}"}}' in text
            assert f'repro_worker_queries_total{{worker="{worker}"}}' in text
            assert f'repro_worker_busy_seconds{{worker="{worker}"}}' in text
            assert f'repro_worker_ready{{worker="{worker}"}} 1.0' in text
        # Front-end gauges and counters.
        assert "repro_frontend_queue_depth" in text
        assert "repro_frontend_ready 1.0" in text
        assert "repro_frontend_jobs_ok_total" in text
        # Admission/queue histograms.
        assert "repro_frontend_queue_wait_seconds_bucket" in text
        assert "repro_frontend_fused_batch_size_bucket" in text
        assert "repro_frontend_worker_decode_seconds_bucket" in text
        # The rolling SLO window flattens into gauges.
        assert "repro_slo_availability" in text
        assert "repro_slo_error_budget_burn_rate" in text
        assert "repro_slo_p99_s" in text

    def test_json_metrics_carry_slo_and_frontend_state(self, mp_server):
        base, _ = mp_server
        _post(base, "/v1/link", {"query": "anemia blood loss"})
        status, _, body = _get_json(base, "/v1/metrics")
        assert status == 200
        slo = body["slo"]
        assert slo["requests"] >= 1
        assert slo["error_budget_burn_rate"] >= 0.0
        frontend = body["frontend"]
        assert frontend["ready"] is True
        assert len(frontend["workers"]) == 2
        # PR-8 fault-tolerance state is first-class in the snapshot.
        for key in ("worker_deaths", "redispatches", "all_ready",
                    "init_failed"):
            assert key in frontend


class TestErrorRequestIdEcho:
    def test_not_ready_error_echoes_request_id(
        self, trained_pipeline, make_worker_linker
    ):
        ontology, _, _ = trained_pipeline
        linker = make_worker_linker()
        service = ProcPoolLinkingService(
            lambda: linker, ontology, ServingConfig(port=0, workers=1)
        )
        # Never started: not ready, and the error must still correlate.
        server = create_server(service, port=0)
        thread = threading.Thread(
            target=run_server, args=(server,),
            kwargs={"install_signal_handlers": False}, daemon=True,
        )
        thread.start()
        base = f"http://127.0.0.1:{server.port}"
        try:
            status, headers, body = _post(
                base, "/v1/link", {"query": "anemia"},
                headers={"X-Request-ID": "req-not-ready"},
            )
            assert status == 503
            assert body["error"]["code"] == "not_ready"
            assert headers["X-Request-ID"] == "req-not-ready"
            assert body["error"]["request_id"] == "req-not-ready"
        finally:
            server.shutdown()
            thread.join(5.0)
