"""Admission control: bounded queues, shedding, deadlines, backpressure.

Three layers of proof:

* the :class:`AdmissionQueue` invariants, property-tested as a pure
  data structure — depth never exceeds the bound, and every offered
  job is conserved (taken, displaced, shed, or still queued; nothing
  silently lost);
* the HTTP surface — a shed request returns the v1 error envelope
  (503, code ``shed``) carrying the caller's request ID;
* the multi-process tier under genuine overload — every request
  resolves as served or shed, the queue never exceeds its bound, and
  the served-request p99 stays within the configured deadline budget
  plus one batch's service time (shedding is what keeps the tail
  finite).
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import SHED_POLICIES, ServingConfig
from repro.serving.frontend import AdmissionQueue, FrontendJob, ShedError
from repro.serving.server import create_server, run_server
from repro.serving.service import LinkingService
from repro.utils.faults import FaultSpec, fault_injection

from tests.serving.conftest import SERVING_QUERIES


class TestAdmissionQueueProperties:
    @pytest.mark.property
    @settings(max_examples=120, deadline=None)
    @given(
        bound=st.integers(min_value=0, max_value=5),
        policy=st.sampled_from(SHED_POLICIES),
        ops=st.lists(st.booleans(), max_size=60),  # True=offer, False=take
    )
    def test_bound_invariant_and_conservation(self, bound, policy, ops):
        queue = AdmissionQueue(bound, policy=policy)
        admitted = displaced = shed = taken = 0
        for is_offer in ops:
            if is_offer:
                job = FrontendJob(["q"], [None], admitted_at=0.0)
                try:
                    dropped = queue.offer(job)
                except ShedError as error:
                    shed += 1
                    assert error.reason == "queue_full"
                    assert policy == "reject_new"
                else:
                    admitted += 1
                    displaced += len(dropped)
                    if dropped:
                        assert policy == "drop_oldest"
            else:
                job, expired = queue.take(now=0.0)
                assert not expired  # no deadline configured
                if job is not None:
                    taken += 1
            if bound > 0:
                assert len(queue) <= bound
        # Conservation: every admitted job is exactly one of taken,
        # displaced, or still queued; every rejection raised.
        assert admitted == taken + displaced + len(queue.drain())
        if bound == 0:
            assert shed == 0 and displaced == 0

    def test_deadline_expiry_sheds_at_take(self):
        queue = AdmissionQueue(bound=0, deadline_s=1.0)
        stale = FrontendJob(["old"], [None], admitted_at=0.0)
        fresh = FrontendJob(["new"], [None], admitted_at=5.0)
        queue.offer(stale)
        queue.offer(fresh)
        job, expired = queue.take(now=5.5)
        assert job is fresh
        assert expired == [stale]
        assert queue.take(now=5.5) == (None, [])

    def test_fifo_preserved_and_requeue_front(self):
        queue = AdmissionQueue(bound=0)
        jobs = [
            FrontendJob([str(index)], [None], admitted_at=0.0)
            for index in range(3)
        ]
        for job in jobs:
            queue.offer(job)
        first, _ = queue.take(now=0.0)
        assert first is jobs[0]
        queue.requeue_front(first)  # crash re-dispatch keeps its place
        assert queue.take(now=0.0)[0] is jobs[0]
        assert queue.take(now=0.0)[0] is jobs[1]


def _post(base, path, payload, headers=None, timeout=30.0):
    body = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        base + path,
        data=body,
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as error:
        return error.code, json.load(error)


class TestShedEnvelopeOverHTTP:
    def test_503_shed_carries_envelope_and_request_id(self, make_linker):
        linker = make_linker()
        entered = threading.Event()
        release = threading.Event()
        original = linker.link_batch

        def gated(queries, **kwargs):
            entered.set()
            assert release.wait(30.0), "test never released the batcher"
            return original(queries, **kwargs)

        linker.link_batch = gated  # type: ignore[method-assign]
        service = LinkingService(
            linker,
            ServingConfig(port=0, warm_on_start=False, admission_queue=1),
        )
        service.start(wait=True)
        server = create_server(service, port=0)
        thread = threading.Thread(
            target=run_server,
            args=(server,),
            kwargs={"install_signal_handlers": False},
            daemon=True,
        )
        thread.start()
        base = f"http://127.0.0.1:{server.port}"
        background = []
        try:
            # Request 1 occupies the batcher worker (blocked in the
            # handler); request 2 fills the one queue slot.
            for query in ("ckd stage 5", "anemia blood loss"):
                worker = threading.Thread(
                    target=_post, args=(base, "/v1/link", {"query": query})
                )
                worker.start()
                background.append(worker)
                if not entered.is_set():
                    assert entered.wait(10.0)
            deadline = time.monotonic() + 10.0
            while (
                service._batcher.qsize() < 1
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            assert service._batcher.qsize() >= 1
            # Request 3 finds the queue at its bound: shed, not queued.
            status, payload = _post(
                base,
                "/v1/link",
                {"query": "scorbutic anemia"},
                headers={"X-Request-ID": "shed-drill-1"},
            )
            assert status == 503
            assert payload["error"]["code"] == "shed"
            assert payload["error"]["message"]
            assert payload["error"]["request_id"] == "shed-drill-1"
            assert service.metrics.counter("requests_shed").value >= 1
        finally:
            release.set()
            for worker in background:
                worker.join(timeout=30.0)
            server.shutdown()
            thread.join(5.0)
            service.stop()
        assert not any(worker.is_alive() for worker in background)


class TestProcPoolOverload:
    CLIENTS = 8
    REQUESTS = 6
    DEADLINE_MS = 1000.0
    QUEUE_BOUND = 2
    MAX_BATCH = 4

    def test_overload_sheds_bounds_queue_and_tail(
        self, make_procpool_service
    ):
        # One worker made deliberately slow (a delay fault on every
        # Phase-II candidate, inherited at fork) so 8 closed-loop
        # clients genuinely overload it.
        with fault_injection(
            {
                "linker.phase2": FaultSpec(
                    action="delay", delay_s=0.01, times=-1
                )
            }
        ):
            service = make_procpool_service(
                workers=1,
                warm_on_start=False,
                admission_queue=self.QUEUE_BOUND,
                deadline_ms=self.DEADLINE_MS,
                max_batch_size=self.MAX_BATCH,
            ).start(wait=True)
            started = time.perf_counter()
            service.link("ckd stage 5")
            baseline = time.perf_counter() - started

            served_latencies = []
            shed_reasons = []
            failures = []
            depth_violations = []
            lock = threading.Lock()

            def client(index: int) -> None:
                for round_trip in range(self.REQUESTS):
                    query = SERVING_QUERIES[
                        (index + round_trip) % len(SERVING_QUERIES)
                    ]
                    begin = time.perf_counter()
                    try:
                        service.link_many([query], timeout=60.0)
                    except ShedError as error:
                        with lock:
                            shed_reasons.append(error.reason)
                    except Exception as error:  # noqa: BLE001 - collected
                        with lock:
                            failures.append(error)
                    else:
                        with lock:
                            served_latencies.append(
                                time.perf_counter() - begin
                            )

            threads = [
                threading.Thread(target=client, args=(index,))
                for index in range(self.CLIENTS)
            ]
            for thread in threads:
                thread.start()
            # Poll the queue-depth invariant while the overload runs.
            while any(thread.is_alive() for thread in threads):
                depth = service.snapshot()["frontend"]["queue_depth"]
                if depth > self.QUEUE_BOUND:
                    depth_violations.append(depth)
                time.sleep(0.01)
            for thread in threads:
                thread.join(timeout=120.0)

        assert not any(thread.is_alive() for thread in threads)
        # Availability: every request resolved as served or shed.
        assert not failures
        issued = self.CLIENTS * self.REQUESTS
        assert len(served_latencies) + len(shed_reasons) == issued
        # Overload genuinely shed, with reasons from the documented set.
        assert shed_reasons
        assert set(shed_reasons) <= {"queue_full", "deadline", "dropped_oldest"}
        # The queue never exceeded its bound.
        assert not depth_violations
        # Tail: a served request waits at most the queueing deadline,
        # then rides one fused batch.  Without deadline shedding the
        # backlog would push the tail toward issued × per-request time.
        ordered = sorted(served_latencies)
        p99 = ordered[min(len(ordered) - 1, int(0.99 * (len(ordered) - 1)))]
        budget = (
            self.DEADLINE_MS / 1000.0
            + 3.0 * self.MAX_BATCH * max(baseline, 0.05)
            + 0.5
        )
        assert p99 <= budget, (p99, budget, baseline)
