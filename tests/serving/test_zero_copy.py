"""Zero-copy proof: workers share one slab mapping via the page cache.

The artifact slab is loaded with ``np.memmap`` in ``ACCESS_READ`` mode
— a ``MAP_SHARED`` + ``PROT_READ`` file mapping — so every process
mapping ``slab.bin`` reads the same physical page-cache pages.  This
suite reads ``/proc/<pid>/smaps`` for the parent and each forked
worker and asserts what zero copy means at the VM level:

* every worker's address space contains the ``slab.bin`` mapping;
* the mapping is shared (``s`` flag) and read-only — it *cannot* be
  privately dirtied, so per-worker unique RSS stays O(caches), not
  O(artifact);
* ``Private_Dirty`` for the mapping is 0 kB in every process even
  after serving traffic through it.

Skipped off-Linux (no ``/proc`` smaps).
"""

import os
from pathlib import Path

import pytest

from repro.engine.compile import load_artifact

from tests.serving.conftest import SERVING_QUERIES

pytestmark = pytest.mark.skipif(
    not Path("/proc/self/smaps").exists(),
    reason="requires Linux /proc/<pid>/smaps",
)


def _slab_mappings(pid: int, slab_path: Path):
    """Parse /proc/<pid>/smaps entries whose pathname is the slab."""
    try:
        text = Path(f"/proc/{pid}/smaps").read_text(encoding="utf-8")
    except OSError:
        return []
    entries = []
    current = None
    for line in text.splitlines():
        if not line[:1].isdigit() and current is None:
            continue
        if "-" in line.split(" ", 1)[0] and not line.startswith(" "):
            # Header: "addr-addr perms offset dev inode pathname"
            parts = line.split()
            pathname = parts[5] if len(parts) >= 6 else ""
            if pathname == str(slab_path):
                current = {"perms": parts[1], "fields": {}}
                entries.append(current)
            else:
                current = None
        elif current is not None and ":" in line:
            key, _, value = line.partition(":")
            value = value.strip()
            if value.endswith("kB"):
                current["fields"][key.strip()] = int(value.split()[0])
    return entries


def test_in_process_mmap_is_read_only_views(compiled_artifact):
    artifact = load_artifact(compiled_artifact, mmap=True)
    assert artifact.mmap
    for name in ("final_h", "final_c", "states", "word_ids"):
        array = getattr(artifact, name)
        assert not array.flags.writeable
    # The copy path stays the default and is writable/private.
    copied = load_artifact(compiled_artifact, mmap=False)
    assert not copied.mmap
    assert copied.final_h.flags.writeable


def test_workers_map_one_shared_slab(
    make_procpool_service, compiled_artifact
):
    slab = (Path(compiled_artifact) / "slab.bin").resolve()
    service = make_procpool_service(workers=2, warm_on_start=False).start(
        wait=True
    )
    # Serve traffic so the mapping is actually touched in every worker
    # before we inspect it.
    for query in SERVING_QUERIES:
        service.link(query)
    pids = [
        handle.pid for handle in service._frontend.pool.workers
    ]
    assert all(pid > 0 for pid in pids)
    # The parent built the linker pre-fork, so it maps the slab too;
    # the children inherited (and kept) the same shared mapping.
    for pid in [os.getpid(), *pids]:
        mappings = _slab_mappings(pid, slab)
        assert mappings, f"pid {pid} has no mapping of {slab}"
        for entry in mappings:
            perms = entry["perms"]
            assert perms.startswith("r-"), (pid, perms)  # read, no write
            assert perms.endswith("s"), (pid, perms)  # MAP_SHARED
            # Zero copied bytes: a read-only shared file mapping can
            # never hold privately dirtied pages.
            assert entry["fields"].get("Private_Dirty", 0) == 0, (pid, entry)
    # Resident slab pages are clean, file-backed page-cache pages — no
    # anonymous (copied-on-write) memory, nothing dirtied, nothing
    # swapped.  (A clean page counts as Private_Clean when only one
    # process has it faulted in; it is still the single page-cache
    # copy, so Private_Clean is allowed — Anonymous/Dirty are not.)
    for pid in pids:
        for entry in _slab_mappings(pid, slab):
            fields = entry["fields"]
            assert fields.get("Anonymous", 0) == 0, (pid, fields)
            assert fields.get("Private_Dirty", 0) == 0, (pid, fields)
            assert fields.get("Shared_Dirty", 0) == 0, (pid, fields)
            assert fields.get("Swap", 0) == 0, (pid, fields)
