"""Degraded-mode serving: Phase II failure/budget fallback, warm retry."""

import json
import math
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.config import LinkerConfig, ServingConfig
from repro.core.linker import NeuralConceptLinker
from repro.serving.server import create_server, run_server
from repro.serving.service import LinkingService
from repro.utils.errors import DataError
from repro.utils.faults import FaultSpec, fault_injection


class TestLinkerDegradedMode:
    def test_phase2_error_falls_back_to_keyword_ranking(self, make_linker):
        linker = make_linker()
        clean = linker.link("ckd stage 5")
        assert not clean.degraded
        with fault_injection({"linker.phase2": FaultSpec(times=-1)}):
            result = linker.link("ckd stage 5")
        assert result.degraded
        assert result.degraded_reason.startswith("error:")
        # Phase I still answers: same candidate set, keyword order.
        assert {c.cid for c in result.ranked} == {c.cid for c in clean.ranked}
        keyword_scores = [c.keyword_score for c in result.ranked]
        assert keyword_scores == sorted(keyword_scores, reverse=True)
        assert all(c.log_prob == -math.inf for c in result.ranked)
        # OR/CR/RT are still timed; ED never completed but is recorded.
        assert set(dict(result.timing.items())) >= {"OR", "CR", "RT"}

    def test_degrade_on_error_false_reraises(self, make_linker):
        linker = make_linker(degrade_on_error=False)
        with fault_injection({"linker.phase2": FaultSpec(times=-1)}):
            with pytest.raises(RuntimeError):
                linker.link("ckd stage 5")

    def test_phase2_budget_degrades(self, make_linker):
        linker = make_linker(phase2_budget_s=0.01)
        with fault_injection(
            {"linker.phase2": FaultSpec(action="delay", delay_s=0.05, times=-1)}
        ):
            result = linker.link("ckd stage 5")
        assert result.degraded
        assert result.degraded_reason.startswith("budget:")
        assert result.ranked  # Phase I candidates still served

    def test_zero_budget_means_unlimited(self, make_linker):
        linker = make_linker(phase2_budget_s=0.0)
        result = linker.link("ckd stage 5")
        assert not result.degraded

    def test_batched_phase2_error_falls_back_to_keyword_ranking(
        self, make_linker
    ):
        # Regression guard for the batched hot path: a failure inside
        # the all-at-once decode (the ``linker.phase2.batch`` probe
        # site) degrades to Phase I exactly like a sequential failure.
        linker = make_linker(batch_phase2=True)
        clean = linker.link("ckd stage 5")
        assert not clean.degraded
        with fault_injection({"linker.phase2.batch": FaultSpec(times=-1)}):
            result = linker.link("ckd stage 5")
        assert result.degraded
        assert result.degraded_reason.startswith("error:")
        assert {c.cid for c in result.ranked} == {c.cid for c in clean.ranked}
        keyword_scores = [c.keyword_score for c in result.ranked]
        assert keyword_scores == sorted(keyword_scores, reverse=True)
        assert all(c.log_prob == -math.inf for c in result.ranked)

    def test_batched_phase2_error_without_degrade_reraises(self, make_linker):
        linker = make_linker(batch_phase2=True, degrade_on_error=False)
        with fault_injection({"linker.phase2.batch": FaultSpec(times=-1)}):
            with pytest.raises(RuntimeError):
                linker.link("ckd stage 5")

    def test_batched_phase2_budget_degrades(self, make_linker):
        # The batched decode is all-or-nothing, so the overrun is
        # detected after it returns — the query still degrades with a
        # ``budget:`` reason, matching the sequential contract.
        linker = make_linker(batch_phase2=True, phase2_budget_s=0.01)
        with fault_injection(
            {
                "linker.phase2.batch": FaultSpec(
                    action="delay", delay_s=0.05, times=-1
                )
            }
        ):
            result = linker.link("ckd stage 5")
        assert result.degraded
        assert result.degraded_reason.startswith("budget:")
        assert result.ranked

    def test_link_batch_degrades_per_query(self, make_linker):
        linker = make_linker()
        # Fail exactly one query's Phase II: the first probe hit belongs
        # to the first query in the batch.
        with fault_injection({"linker.phase2": FaultSpec(times=1)}):
            results = linker.link_batch(["ckd stage 5", "hemorrhagic anemia"])
        assert results[0].degraded
        assert not results[1].degraded
        assert results[1].ranked and all(
            math.isfinite(c.log_prob) for c in results[1].ranked
        )


class TestServiceDegradedMetrics:
    def test_degraded_counters(self, make_linker):
        service = LinkingService(
            make_linker(), ServingConfig(warm_on_start=False, batch_wait_ms=0.0)
        )
        service.start(wait=True)
        try:
            with fault_injection({"linker.phase2": FaultSpec(times=-1)}):
                result = service.link("ckd stage 5")
            assert result.degraded
            snapshot = service.snapshot()
            counters = snapshot["counters"]
            assert counters["requests_degraded"] == 1
            assert counters["phase2_failures"] == 1
            assert counters["requests_total"] == 1
            # A degraded response is a served response, not a failure.
            assert counters.get("requests_failed", 0) == 0
        finally:
            service.stop()

    def test_budget_counter_distinct_from_failures(self, make_linker):
        service = LinkingService(
            make_linker(phase2_budget_s=0.005),
            ServingConfig(warm_on_start=False, batch_wait_ms=0.0),
        )
        service.start(wait=True)
        try:
            with fault_injection(
                {"linker.phase2": FaultSpec(action="delay", delay_s=0.05, times=-1)}
            ):
                result = service.link("ckd stage 5")
            assert result.degraded
            counters = service.snapshot()["counters"]
            assert counters["phase2_budget_exceeded"] == 1
            assert counters.get("phase2_failures", 0) == 0
        finally:
            service.stop()


class TestWarmupRetry:
    def test_warm_retries_then_succeeds(self, make_linker):
        service = LinkingService(
            make_linker(),
            ServingConfig(
                warm_on_start=True, warm_retries=3, warm_backoff_s=0.01
            ),
        )
        with fault_injection(
            {"service.warm": FaultSpec(action="io_error", times=2)}
        ):
            service.start(wait=True)
        try:
            assert service.ready
            counters = service.snapshot()["counters"]
            assert counters["warmup_failures"] == 2
            assert counters["warmup_retries"] == 2
            assert service._warm_error is None
        finally:
            service.stop()

    def test_warm_exhausted_still_serves_cold(self, make_linker):
        service = LinkingService(
            make_linker(),
            ServingConfig(
                warm_on_start=True, warm_retries=1, warm_backoff_s=0.01
            ),
        )
        with fault_injection(
            {"service.warm": FaultSpec(action="io_error", times=-1)}
        ):
            service.start()
            assert service._ready.wait(10.0)
        try:
            assert service.ready  # degraded-but-serving beats dead
            assert service.snapshot()["counters"]["warmup_failures"] == 2
            result = service.link("ckd stage 5")
            assert result.ranked
        finally:
            service.stop()


def _post(base, path, payload, timeout=30.0):
    body = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        base + path, data=body, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as error:
        return error.code, json.load(error)


class TestDegradedOverHTTP:
    @pytest.fixture
    def running_server(self, make_linker):
        service = LinkingService(
            make_linker(),
            ServingConfig(port=0, warm_on_start=False, batch_wait_ms=0.0),
        )
        service.start(wait=True)
        server = create_server(service, port=0)
        thread = threading.Thread(
            target=run_server,
            args=(server,),
            kwargs={"install_signal_handlers": False},
            daemon=True,
        )
        thread.start()
        yield f"http://127.0.0.1:{server.port}", service
        server.shutdown()
        thread.join(5.0)

    def test_link_returns_200_degraded_with_phase1_ranking(self, running_server):
        base, service = running_server
        with fault_injection({"linker.phase2": FaultSpec(times=-1)}):
            status, payload = _post(base, "/v1/link", {"query": "ckd stage 5"})
        assert status == 200
        (result,) = payload["results"]
        assert result["degraded"] is True
        assert result["degraded_reason"].startswith("error:")
        assert result["ranked"], "Phase I ranking must still be served"
        for entry in result["ranked"]:
            assert entry["log_prob"] is None
            assert entry["loss"] is None
            assert entry["keyword_score"] > 0
        # Strict JSON: the payload survived json.load, and metrics report
        # the degradation for BENCH runs.
        counters = service.snapshot()["counters"]
        assert counters["requests_degraded"] == 1
        assert counters["phase2_failures"] == 1

    def test_healthy_request_not_marked_degraded(self, running_server):
        base, _ = running_server
        status, payload = _post(base, "/v1/link", {"query": "ckd stage 5"})
        assert status == 200
        (result,) = payload["results"]
        assert result["degraded"] is False
        assert result["degraded_reason"] is None
        assert all(entry["log_prob"] is not None for entry in result["ranked"])

    def test_metrics_exposes_pipeline_metadata(self, running_server):
        base, service = running_server
        service.linker.pipeline_metadata = {"seed": 7, "resumed_from": None}
        status, payload = _post(base, "/v1/link", {"query": "ckd stage 5"})
        assert status == 200
        with urllib.request.urlopen(base + "/v1/metrics", timeout=10.0) as response:
            metrics = json.load(response)
        assert metrics["pipeline"] == {"seed": 7, "resumed_from": None}
