"""Cross-process equivalence: forked workers == the in-process linker.

The multi-process tier's correctness claim is that *where* a request
runs is unobservable: N forked workers over one mmap'd slab, with
cross-request Phase-II fusion, return the same rankings and the same
log-probs (≤1e-9) as one in-process reference linker — at any worker
count, under concurrency, degraded, and cold- or warm-cached.
"""

import math
import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import LinkerConfig, ServingConfig
from repro.core.linker import NeuralConceptLinker
from repro.serving.frontend import build_frontend
from repro.serving.service import ProcPoolLinkingService
from repro.utils.faults import FaultSpec, fault_injection

from tests.serving.conftest import SERVING_QUERIES

TOLERANCE = 1e-9


def _assert_results_equivalent(actual, expected):
    assert [c.cid for c in actual.ranked] == [c.cid for c in expected.ranked]
    assert actual.degraded == expected.degraded
    for left, right in zip(actual.ranked, expected.ranked):
        assert left.keyword_score == right.keyword_score
        if math.isinf(right.log_prob):
            assert left.log_prob == right.log_prob
        else:
            assert abs(left.log_prob - right.log_prob) <= TOLERANCE


@pytest.fixture
def reference(make_linker, compiled_artifact):
    """The in-process oracle: same artifact, no mmap, no fusion."""
    return make_linker(artifact_dir=str(compiled_artifact))


class TestWorkerCountInvariance:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_burst_matches_reference(
        self, workers, make_procpool_service, reference
    ):
        # One burst of 8 queries arrives at a worker as a single fused
        # link_batch — the cross-request-fusion path runs by construction.
        expected = [reference.link(query) for query in SERVING_QUERIES]
        service = make_procpool_service(workers=workers).start(wait=True)
        actual = service.link_many(SERVING_QUERIES)
        assert len(actual) == len(expected)
        for left, right in zip(actual, expected):
            _assert_results_equivalent(left, right)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_single_requests_match_reference(
        self, workers, make_procpool_service, reference
    ):
        service = make_procpool_service(workers=workers).start(wait=True)
        for query in SERVING_QUERIES:
            _assert_results_equivalent(
                service.link(query), reference.link(query)
            )

    def test_concurrent_clients_match_reference(
        self, make_procpool_service, reference
    ):
        # 8 threads racing over 2 workers: request interleaving, worker
        # assignment, and dispatcher fusion are all nondeterministic —
        # the rankings must not be.
        expected = {
            query: reference.link(query) for query in SERVING_QUERIES
        }
        service = make_procpool_service(workers=2).start(wait=True)
        failures = []

        def client(index: int) -> None:
            for round_trip in range(4):
                query = SERVING_QUERIES[
                    (index + round_trip) % len(SERVING_QUERIES)
                ]
                try:
                    result = service.link(query)
                    _assert_results_equivalent(result, expected[query])
                except Exception as error:  # noqa: BLE001 - collected
                    failures.append((query, error))

        threads = [
            threading.Thread(target=client, args=(index,)) for index in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not any(thread.is_alive() for thread in threads)
        assert not failures


class TestForcedCrossRequestFusion:
    def test_bursts_queued_before_ready_fuse_into_one_job(
        self, make_worker_linker, reference
    ):
        # Submitting while the lone worker is still building its linker
        # queues every burst; the first dispatch then packs all four
        # 2-query bursts into ONE worker job (8 = max_batch_size), so
        # these results can only have come through the fused path.
        linker = make_worker_linker()
        frontend = build_frontend(
            lambda: linker, workers=1, max_batch_size=8, warm=False
        )
        try:
            pairs = [
                [SERVING_QUERIES[i], SERVING_QUERIES[i + 1]]
                for i in range(0, 8, 2)
            ]
            futures = [frontend.submit(pair, [None, None]) for pair in pairs]
            results = [future.result(30.0) for future in futures]
            stats = frontend.stats()
            assert stats["jobs_ok"] == 1, stats
            assert stats["workers"][0]["queries"] == 8, stats
            for pair, got in zip(pairs, results):
                assert len(got) == 2
                for query, result in zip(pair, got):
                    _assert_results_equivalent(result, reference.link(query))
        finally:
            frontend.stop()


class TestDegradedModeEquivalence:
    def test_phase2_failure_degrades_identically(
        self, make_procpool_service, reference
    ):
        # The fault plan is installed before the fork, so every worker
        # inherits it: Phase II fails everywhere, both tiers fall back
        # to Phase-I keyword ranking, and the fallbacks must agree.
        with fault_injection({"linker.phase2": FaultSpec(times=-1)}):
            service = make_procpool_service(
                workers=2, warm_on_start=False
            ).start(wait=True)
            actual = service.link_many(SERVING_QUERIES)
            expected = [reference.link(query) for query in SERVING_QUERIES]
        for left, right in zip(actual, expected):
            assert left.degraded and right.degraded
            assert left.degraded_reason.startswith("error:")
            _assert_results_equivalent(left, right)


class TestCacheWarmDivergence:
    def test_cold_and_warm_workers_agree(
        self, make_procpool_service, reference
    ):
        # Encoding caches are a latency optimisation, not a semantic
        # one: a cold worker (lazy fills) and a warmed worker return
        # the same rankings as the warmed in-process reference.
        reference.warm_cache()
        expected = [reference.link(query) for query in SERVING_QUERIES]
        cold = make_procpool_service(workers=1, warm_on_start=False)
        warm = make_procpool_service(workers=1, warm_on_start=True)
        cold.start(wait=True)
        warm.start(wait=True)
        for service in (cold, warm):
            for result, want in zip(
                service.link_many(SERVING_QUERIES), expected
            ):
                _assert_results_equivalent(result, want)


@pytest.fixture(scope="module")
def equivalence_pair(trained_pipeline, compiled_artifact):
    """(service, reference) shared across the property sweep's examples
    — forking a pool per hypothesis example would swamp the suite."""
    ontology, kb, model = trained_pipeline
    worker_linker = NeuralConceptLinker(
        model,
        ontology,
        LinkerConfig(
            k=5,
            artifact_dir=str(compiled_artifact),
            mmap_artifact=True,
            fuse_phase2=True,
        ),
        kb=kb,
    )
    reference = NeuralConceptLinker(
        model,
        ontology,
        LinkerConfig(k=5, artifact_dir=str(compiled_artifact)),
        kb=kb,
    )
    service = ProcPoolLinkingService(
        lambda: worker_linker,
        ontology,
        ServingConfig(workers=2, warm_on_start=False),
    )
    service.start(wait=True)
    yield service, reference
    service.stop()


@pytest.mark.property
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    indices=st.lists(
        st.integers(min_value=0, max_value=len(SERVING_QUERIES) - 1),
        min_size=1,
        max_size=6,
    ),
    k=st.integers(min_value=1, max_value=8),
)
def test_property_any_burst_any_k_matches_reference(
    equivalence_pair, indices, k
):
    """Arbitrary bursts (repeats included) at arbitrary k: the worker
    pool and the in-process reference always agree."""
    service, reference = equivalence_pair
    queries = [SERVING_QUERIES[index] for index in indices]
    actual = service.link_many(queries, k=k)
    for query, result in zip(queries, actual):
        _assert_results_equivalent(result, reference.link(query, k=k))
