"""End-to-end serving smoke test: the full ``generate → train → serve``
lifecycle over real HTTP, in a real subprocess.

Trains a tiny pipeline via the CLI, boots ``repro serve`` on an
ephemeral port, waits for readiness, links the dataset's own queries
over ``POST /v1/link``, scrapes ``GET /v1/metrics``, and writes
``BENCH_serving.json`` (latency p50/p95, cache hit rate, batch stats)
at the repo root for the bench trajectory.  Marked slow, like the CLI
lifecycle test it extends.
"""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]
BENCH_PATH = REPO_ROOT / "BENCH_serving.json"


def _post_link(base, queries, timeout=60.0):
    request = urllib.request.Request(
        base + "/v1/link",
        data=json.dumps({"queries": queries}).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.load(response)


@pytest.mark.slow
class TestServingSmoke:
    @pytest.fixture(scope="class")
    def workspace(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("serve-smoke")
        data, model = root / "data", root / "model"
        assert main(
            ["generate", "--dataset", "hospital-x-like",
             "--out", str(data), "--seed", "11", "--queries", "40"]
        ) == 0
        assert main(
            ["train", "--data", str(data), "--out", str(model),
             "--dim", "10", "--epochs", "2", "--cbow-epochs", "3",
             "--seed", "4"]
        ) == 0
        return data, model

    @pytest.fixture(scope="class")
    def served(self, workspace):
        _, model = workspace
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--model", str(model), "--port", "0",
             "--max-batch-size", "8", "--batch-wait-ms", "2"],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            banner = process.stdout.readline()
            assert "serving on http://" in banner, (
                banner + (process.stderr.read() if process.poll() is not None else "")
            )
            base = banner.split()[2].rstrip("/")
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                assert process.poll() is None, process.stderr.read()
                try:
                    with urllib.request.urlopen(base + "/readyz", timeout=5.0) as r:
                        if r.status == 200:
                            break
                except urllib.error.HTTPError as error:
                    assert error.code == 503  # warming up
                except urllib.error.URLError:
                    pass
                time.sleep(0.1)
            else:
                pytest.fail("server never became ready")
            yield base, process
        finally:
            if process.poll() is None:
                process.send_signal(signal.SIGTERM)
                try:
                    process.wait(10.0)
                except subprocess.TimeoutExpired:
                    process.kill()
                    process.wait(10.0)

    def test_lifecycle_and_bench_artifact(self, served, workspace):
        base, process = served
        data, _ = workspace
        queries = [
            json.loads(line)["text"]
            for line in (data / "queries.jsonl").read_text().splitlines()
        ][:20]

        linked = 0
        for start in range(0, len(queries), 4):
            payload = _post_link(base, queries[start : start + 4])
            results = payload["results"]
            assert len(results) == min(4, len(queries) - start)
            for result in results:
                assert set(result["timing"]) == {"OR", "CR", "ED", "RT"}
            linked += len(results)
        assert linked == len(queries)

        with urllib.request.urlopen(base + "/v1/metrics", timeout=30.0) as response:
            metrics = json.load(response)
        assert metrics["ready"] is True
        assert metrics["counters"]["requests_total"] >= linked
        request_histogram = metrics["histograms"]["request_seconds"]
        assert request_histogram["count"] >= 1
        encodings = metrics["caches"]["encodings"]
        assert encodings["hits"] + encodings["misses"] > 0

        summary = {
            "benchmark": "serving_smoke",
            "dataset": "hospital-x-like",
            "queries_linked": linked,
            "request_seconds": {
                "count": request_histogram["count"],
                "mean": request_histogram["mean"],
                "p50": request_histogram["p50"],
                "p95": request_histogram["p95"],
            },
            "phase_seconds_mean": {
                phase: metrics["histograms"][f"phase_seconds.{phase}"]["mean"]
                for phase in ("OR", "CR", "ED", "RT")
                if f"phase_seconds.{phase}" in metrics["histograms"]
            },
            "encoding_cache": {
                "hit_rate": encodings["hit_rate"],
                "size": encodings["size"],
                "evictions": encodings["evictions"],
            },
            "batcher": metrics["batcher"],
        }
        BENCH_PATH.write_text(json.dumps(summary, indent=2) + "\n")
        assert json.loads(BENCH_PATH.read_text())["queries_linked"] == linked

    def test_graceful_shutdown_on_sigterm(self, served):
        base, process = served
        # Ordering within the class is fixture-scoped: this runs after
        # the lifecycle test, so killing the server here is safe.
        process.send_signal(signal.SIGTERM)
        assert process.wait(15.0) == 0
