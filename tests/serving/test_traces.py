"""End-to-end tracing: /traces, request IDs, log correlation, faults.

One warm server (sampling every request) backs the HTTP tests; the
service-level tests build their own instances around the shared model.
"""

import io
import json
import logging
import threading
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.config import ServingConfig
from repro.obs.logjson import configure_json_logging
from repro.serving.server import create_server, run_server
from repro.serving.service import LinkingService
from repro.utils.faults import FaultSpec, fault_injection


def _post(base, path, payload, headers=None, timeout=30.0):
    body = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        base + path,
        data=body,
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, dict(response.headers), json.load(response)
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), json.load(error)


def _get(base, path, timeout=30.0):
    try:
        with urllib.request.urlopen(base + path, timeout=timeout) as response:
            return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode("utf-8")


def _get_json(base, path, timeout=30.0):
    status, text = _get(base, path, timeout=timeout)
    return status, json.loads(text)


def _spans_by_name(trace_dict):
    by_name = {}
    for span in trace_dict["spans"]:
        by_name.setdefault(span["name"], []).append(span)
    return by_name


@pytest.fixture(scope="module")
def traced_server(trained_pipeline):
    from repro.core.config import LinkerConfig
    from repro.core.linker import NeuralConceptLinker

    ontology, kb, model = trained_pipeline
    linker = NeuralConceptLinker(model, ontology, LinkerConfig(k=5), kb=kb)
    service = LinkingService(
        linker,
        ServingConfig(
            port=0, trace_sample_rate=1.0, trace_buffer=64,
            max_batch_size=8, batch_wait_ms=2.0,
        ),
    )
    service.start(wait=True)
    server = create_server(service, port=0)
    thread = threading.Thread(
        target=run_server,
        args=(server,),
        kwargs={"install_signal_handlers": False},
        daemon=True,
    )
    thread.start()
    base = f"http://127.0.0.1:{server.port}"
    yield base, service
    server.shutdown()
    thread.join(5.0)


class TestTraceTree:
    def test_link_trace_retrievable_with_full_span_tree(self, traced_server):
        base, _ = traced_server
        status, headers, payload = _post(
            base, "/v1/link", {"query": "ckd stage 5"},
            headers={"X-Request-ID": "req-tree-1"},
        )
        assert status == 200
        assert headers["X-Request-ID"] == "req-tree-1"
        assert payload["request_id"] == "req-tree-1"

        status, body = _get_json(base, "/v1/traces?request_id=req-tree-1")
        assert status == 200
        (trace_dict,) = body["traces"]
        assert trace_dict["request_id"] == "req-tree-1"
        by_name = _spans_by_name(trace_dict)
        # The acceptance tree: HTTP root -> service request -> the
        # linker's rewrite / retrieve / phase2 decode / re-rank.
        for name in (
            "http.link",
            "service.request",
            "linker.rewrite",
            "linker.retrieve",
            "linker.phase2",
            "linker.phase2.decode",
            "linker.rerank",
        ):
            assert name in by_name, (name, sorted(by_name))
        root = by_name["http.link"][0]
        assert root["parent_id"] is None
        assert root["tags"]["status"] == 200
        request = by_name["service.request"][0]
        assert request["parent_id"] == root["span_id"]
        assert request["tags"]["query"] == "ckd stage 5"
        linker_parents = {
            by_name[name][0]["parent_id"]
            for name in ("linker.rewrite", "linker.retrieve",
                         "linker.phase2", "linker.rerank")
        }
        assert linker_parents == {request["span_id"]}
        decode = by_name["linker.phase2.decode"][0]
        assert decode["parent_id"] == by_name["linker.phase2"][0]["span_id"]
        # Figure 11 taxonomy via phase tags.
        assert by_name["linker.rewrite"][0]["tags"]["phase"] == "OR"
        assert by_name["linker.retrieve"][0]["tags"]["phase"] == "CR"
        assert by_name["linker.phase2"][0]["tags"]["phase"] == "ED"
        assert by_name["linker.rerank"][0]["tags"]["phase"] == "RT"
        assert by_name["linker.retrieve"][0]["tags"]["candidates"] >= 1

    def test_request_id_generated_when_header_absent(self, traced_server):
        base, _ = traced_server
        status, headers, payload = _post(base, "/v1/link", {"query": "anemia"})
        assert status == 200
        request_id = payload["request_id"]
        assert request_id
        assert headers["X-Request-ID"] == request_id
        status, body = _get_json(base, f"/v1/traces?request_id={request_id}")
        assert status == 200
        assert body["traces"][0]["request_id"] == request_id

    def test_traces_listing_limit_and_stats(self, traced_server):
        base, _ = traced_server
        for index in range(3):
            _post(base, "/v1/link", {"query": "ckd stage 5"},
                  headers={"X-Request-ID": f"req-list-{index}"})
        status, body = _get_json(base, "/v1/traces?limit=2")
        assert status == 200
        assert len(body["traces"]) == 2
        # Most recent first.
        assert body["traces"][0]["started_at"] >= body["traces"][1]["started_at"]
        assert body["stats"]["sample_rate"] == 1.0
        assert body["stats"]["finished"] >= 3

        status, body = _get_json(base, "/v1/traces?request_id=req-nope")
        assert status == 404
        assert body["error"]["code"] == "trace_not_found"

        status, body = _get_json(base, "/v1/traces?limit=abc")
        assert status == 400

    def test_tracer_stats_in_metrics_snapshot(self, traced_server):
        base, _ = traced_server
        status, payload = _get_json(base, "/v1/metrics")
        assert status == 200
        assert payload["traces"]["sample_rate"] == 1.0
        assert payload["traces"]["retained"] >= 1


class TestLogCorrelation:
    def test_json_log_lines_carry_the_request_id(self, traced_server):
        base, _ = traced_server
        stream = io.StringIO()
        handler = configure_json_logging(stream=stream)
        try:
            status, _, _ = _post(
                base, "/v1/link", {"query": "ckd stage 5"},
                headers={"X-Request-ID": "req-logged"},
            )
            assert status == 200
            records = [
                json.loads(line)
                for line in stream.getvalue().splitlines()
            ]
        finally:
            logging.getLogger("repro").removeHandler(handler)
        linked = [
            r for r in records if r["message"].startswith("linked 1 queries")
        ]
        assert linked, records
        assert linked[-1]["request_id"] == "req-logged"
        assert linked[-1]["logger"] == "repro.serving.server"


class TestCrossThreadPropagation:
    def test_concurrent_traces_do_not_cross_contaminate(self, traced_server):
        """Batched requests from different traces share one worker batch;
        every trace must still contain exactly its own query's spans."""
        base, _ = traced_server
        queries = {
            f"req-concurrent-{index}": query
            for index, query in enumerate(
                ["ckd stage 5", "scorbutic anemia", "acute abdomen",
                 "protein deficiency anemia"] * 4
            )
        }

        def do_request(item):
            request_id, query = item
            status, _, _ = _post(
                base, "/v1/link", {"query": query},
                headers={"X-Request-ID": request_id},
            )
            assert status == 200

        with ThreadPoolExecutor(max_workers=16) as pool:
            list(pool.map(do_request, queries.items()))

        for request_id, query in queries.items():
            status, body = _get_json(base, f"/v1/traces?request_id={request_id}")
            assert status == 200, request_id
            by_name = _spans_by_name(body["traces"][0])
            assert len(by_name["service.request"]) == 1
            assert by_name["service.request"][0]["tags"]["query"] == query
            # The linker spans ran on the batcher's worker thread; they
            # must land under this request's span, once each.
            assert len(by_name["linker.rewrite"]) == 1
            assert len(by_name["linker.phase2"]) == 1


class TestFaultEvents:
    def test_fired_probe_is_an_event_in_the_trace(self, traced_server):
        base, _ = traced_server
        with fault_injection({"linker.phase2": FaultSpec()}):
            status, _, payload = _post(
                base, "/v1/link", {"query": "ckd stage 5"},
                headers={"X-Request-ID": "req-fault"},
            )
        assert status == 200
        (result,) = payload["results"]
        assert result["degraded"]
        assert result["degraded_reason"].startswith("error:")

        status, body = _get_json(base, "/v1/traces?request_id=req-fault")
        assert status == 200
        events = [
            (span["name"], event)
            for span in body["traces"][0]["spans"]
            for event in span["events"]
        ]
        fired = [e for _, e in events if e["name"] == "fault.fired"]
        assert fired, events
        assert fired[0]["attrs"] == {
            "site": "linker.phase2", "action": "raise",
        }
        # The degradation is also tagged on the ED span.
        by_name = _spans_by_name(body["traces"][0])
        assert by_name["linker.phase2"][0]["tags"]["degraded_reason"]


class TestSamplingOff:
    def test_rate_zero_serves_but_records_nothing(self, make_linker):
        service = LinkingService(
            make_linker(),
            ServingConfig(
                port=0, warm_on_start=False, trace_sample_rate=0.0
            ),
        )
        service.start()
        try:
            result = service.link("ckd stage 5")
            assert result.ranked
            stats = service.tracer.stats()
            assert stats["sampled"] == 0
            assert service.tracer.traces() == []
        finally:
            service.stop()
