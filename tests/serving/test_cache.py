"""Tests for the thread-safe bounded LRU cache."""

import threading

import pytest

from repro.serving.cache import LRUCache
from repro.utils.errors import ConfigurationError


class TestBasics:
    def test_put_get_roundtrip(self):
        cache = LRUCache(capacity=4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert len(cache) == 1
        assert "a" in cache

    def test_get_miss_returns_default(self):
        cache = LRUCache(capacity=2)
        assert cache.get("nope") is None
        assert cache.get("nope", default=7) == 7

    def test_overwrite_does_not_grow(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("a", 2)
        assert len(cache) == 1
        assert cache.get("a") == 2

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            LRUCache(capacity=0)
        with pytest.raises(ConfigurationError):
            LRUCache(capacity=-3)

    def test_unbounded_cache_never_evicts(self):
        cache = LRUCache(capacity=None)
        for index in range(1000):
            cache.put(index, index)
        assert len(cache) == 1000
        assert cache.stats.evictions == 0


class TestEviction:
    def test_capacity_is_enforced(self):
        cache = LRUCache(capacity=3)
        for key in "abcd":
            cache.put(key, key)
        assert len(cache) == 3
        assert "a" not in cache  # least recently used went first
        assert cache.stats.evictions == 1

    def test_get_refreshes_recency(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # a is now most recent
        cache.put("c", 3)
        assert "a" in cache
        assert "b" not in cache

    def test_put_refreshes_recency(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        cache.put("c", 3)
        assert "a" in cache
        assert "b" not in cache

    def test_eviction_order_is_lru(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        cache.put("d", 4)
        assert list(cache.keys()) == ["c", "d"]
        assert cache.stats.evictions == 2


class TestCounters:
    def test_hits_and_misses(self):
        cache = LRUCache(capacity=2)
        cache.get("a")
        cache.put("a", 1)
        cache.get("a")
        cache.get("a")
        stats = cache.stats
        assert (stats.hits, stats.misses) == (2, 1)
        assert stats.requests == 3
        assert stats.hit_rate == pytest.approx(2 / 3)

    def test_hit_rate_empty(self):
        assert LRUCache(capacity=2).stats.hit_rate == 0.0

    def test_contains_does_not_count(self):
        cache = LRUCache(capacity=2)
        _ = "a" in cache
        assert cache.stats.requests == 0

    def test_clear_preserves_counters(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1

    def test_reset_stats_preserves_entries(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.get("a")
        cache.reset_stats()
        assert len(cache) == 1
        assert cache.stats.requests == 0

    def test_as_dict_is_json_shaped(self):
        cache = LRUCache(capacity=2, name="encodings")
        payload = cache.stats.as_dict()
        assert payload["name"] == "encodings"
        assert set(payload) >= {"capacity", "size", "hits", "misses",
                                "evictions", "hit_rate"}


class TestGetOrCreate:
    def test_factory_called_once_per_key(self):
        cache = LRUCache(capacity=4)
        calls = []
        for _ in range(3):
            value = cache.get_or_create("k", lambda: calls.append(1) or 42)
            assert value == 42
        assert len(calls) == 1
        stats = cache.stats
        assert (stats.hits, stats.misses) == (2, 1)

    def test_factory_exception_does_not_poison(self):
        cache = LRUCache(capacity=4)

        def boom():
            raise RuntimeError("factory failed")

        with pytest.raises(RuntimeError):
            cache.get_or_create("k", boom)
        assert "k" not in cache
        assert cache.get_or_create("k", lambda: 5) == 5


class TestThreadSafety:
    def test_concurrent_get_or_create_hammer(self):
        """Many threads over a keyspace larger than capacity: sizes stay
        bounded, counters reconcile, and every read sees a coherent value."""
        capacity = 8
        cache = LRUCache(capacity=capacity)
        operations_per_thread = 400
        thread_count = 8
        errors = []

        def worker(worker_id):
            try:
                for step in range(operations_per_thread):
                    key = (worker_id * 7 + step) % 32
                    value = cache.get_or_create(key, lambda k=key: k * 10)
                    assert value == key * 10
            except BaseException as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(index,))
            for index in range(thread_count)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        stats = cache.stats
        assert stats.size <= capacity
        total_ops = operations_per_thread * thread_count
        assert stats.hits + stats.misses == total_ops
        assert stats.evictions == stats.misses - stats.size

    def test_concurrent_put_and_clear(self):
        cache = LRUCache(capacity=16)
        stop = threading.Event()

        def writer():
            index = 0
            while not stop.is_set():
                cache.put(index % 64, index)
                index += 1

        def clearer():
            while not stop.is_set():
                cache.clear()

        threads = [threading.Thread(target=writer) for _ in range(3)]
        threads.append(threading.Thread(target=clearer))
        for thread in threads:
            thread.start()
        stop_timer = threading.Timer(0.2, stop.set)
        stop_timer.start()
        for thread in threads:
            thread.join(5.0)
        stop_timer.cancel()
        assert len(cache) <= 16
