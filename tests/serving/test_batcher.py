"""Tests for the micro-batching scheduler."""

import threading
import time

import pytest

from repro.serving.batcher import BatcherClosedError, MicroBatcher
from repro.utils.errors import ConfigurationError


def identity_handler(items):
    return [item * 2 for item in items]


class TestConfigValidation:
    def test_bad_batch_size(self):
        with pytest.raises(ConfigurationError):
            MicroBatcher(identity_handler, max_batch_size=0)

    def test_bad_wait(self):
        with pytest.raises(ConfigurationError):
            MicroBatcher(identity_handler, max_wait_ms=-1)


class TestFlushOnSize:
    def test_full_batch_dispatches_without_waiting_for_deadline(self):
        batches = []

        def handler(items):
            batches.append(list(items))
            return list(items)

        batcher = MicroBatcher(handler, max_batch_size=4, max_wait_ms=10_000)
        try:
            started = time.monotonic()
            futures = [batcher.submit_nowait(i) for i in range(4)]
            results = [future.result(5.0) for future in futures]
            elapsed = time.monotonic() - started
            assert results == [0, 1, 2, 3]
            # A 10-second deadline obviously did not elapse.
            assert elapsed < 5.0
            stats = batcher.stats
            assert stats.size_flushes >= 1
            assert stats.items == 4
            assert stats.max_batch <= 4
        finally:
            batcher.close()

    def test_overflow_splits_into_multiple_batches(self):
        sizes = []

        def handler(items):
            sizes.append(len(items))
            return list(items)

        batcher = MicroBatcher(handler, max_batch_size=3, max_wait_ms=20)
        try:
            futures = [batcher.submit_nowait(i) for i in range(10)]
            assert [f.result(5.0) for f in futures] == list(range(10))
            assert sum(sizes) == 10
            assert max(sizes) <= 3
        finally:
            batcher.close()


class TestFlushOnDeadline:
    def test_partial_batch_dispatches_at_deadline(self):
        batcher = MicroBatcher(
            identity_handler, max_batch_size=64, max_wait_ms=30
        )
        try:
            started = time.monotonic()
            result = batcher.submit(21, timeout=5.0)
            elapsed = time.monotonic() - started
            assert result == 42
            # Far below the only other flush trigger (64 items never came),
            # and at least roughly the deadline in the happy case.
            assert elapsed < 5.0
            stats = batcher.stats
            assert stats.deadline_flushes == 1
            assert stats.size_flushes == 0
            assert stats.max_batch == 1
        finally:
            batcher.close()

    def test_zero_wait_means_immediate_singleton_batches(self):
        batcher = MicroBatcher(identity_handler, max_batch_size=8, max_wait_ms=0)
        try:
            assert batcher.submit(5, timeout=5.0) == 10
        finally:
            batcher.close()


class TestOrderingAndResults:
    def test_results_match_submission_order_within_batch(self):
        batcher = MicroBatcher(
            lambda items: [item + 100 for item in items],
            max_batch_size=8,
            max_wait_ms=50,
        )
        try:
            futures = [batcher.submit_nowait(i) for i in range(8)]
            assert [f.result(5.0) for f in futures] == [100 + i for i in range(8)]
        finally:
            batcher.close()

    def test_concurrent_submitters_all_get_their_own_result(self):
        batcher = MicroBatcher(
            lambda items: [item * item for item in items],
            max_batch_size=4,
            max_wait_ms=5,
        )
        results = {}
        lock = threading.Lock()

        def submit(value):
            result = batcher.submit(value, timeout=10.0)
            with lock:
                results[value] = result

        try:
            threads = [
                threading.Thread(target=submit, args=(value,))
                for value in range(32)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert results == {value: value * value for value in range(32)}
            assert batcher.stats.items == 32
        finally:
            batcher.close()


class TestErrors:
    def test_handler_exception_rejects_the_batch_only(self):
        fail = threading.Event()
        fail.set()

        def handler(items):
            if fail.is_set():
                raise RuntimeError("model exploded")
            return list(items)

        batcher = MicroBatcher(handler, max_batch_size=4, max_wait_ms=5)
        try:
            with pytest.raises(RuntimeError, match="model exploded"):
                batcher.submit(1, timeout=5.0)
            assert batcher.stats.errors == 1
            fail.clear()
            assert batcher.submit(2, timeout=5.0) == 2
        finally:
            batcher.close()

    def test_wrong_result_count_is_an_error(self):
        batcher = MicroBatcher(
            lambda items: [0], max_batch_size=4, max_wait_ms=5
        )
        try:
            futures = [batcher.submit_nowait(i) for i in range(3)]
            for future in futures:
                with pytest.raises(RuntimeError, match="results"):
                    future.result(5.0)
        finally:
            batcher.close()

    def test_result_timeout(self):
        gate = threading.Event()

        def handler(items):
            gate.wait(5.0)
            return list(items)

        batcher = MicroBatcher(handler, max_batch_size=1, max_wait_ms=0)
        try:
            future = batcher.submit_nowait(1)
            with pytest.raises(TimeoutError):
                future.result(0.05)
            gate.set()
            assert future.result(5.0) == 1  # late result still lands
        finally:
            batcher.close()


class TestLifecycle:
    def test_close_drains_queued_items(self):
        gate = threading.Event()

        def handler(items):
            gate.wait(5.0)
            return list(items)

        batcher = MicroBatcher(handler, max_batch_size=2, max_wait_ms=1_000)
        futures = [batcher.submit_nowait(i) for i in range(6)]
        gate.set()
        batcher.close()
        assert [f.result(1.0) for f in futures] == list(range(6))

    def test_submit_after_close_raises(self):
        batcher = MicroBatcher(identity_handler)
        batcher.close()
        assert batcher.closed
        with pytest.raises(BatcherClosedError):
            batcher.submit(1)

    def test_close_is_idempotent(self):
        batcher = MicroBatcher(identity_handler)
        batcher.close()
        batcher.close()
