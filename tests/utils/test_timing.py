"""Tests for stopwatch / phase timers."""

import time

import pytest

from repro.utils.timing import PhaseTimer, Stopwatch, TimingBreakdown


class TestStopwatch:
    def test_accumulates_across_segments(self):
        watch = Stopwatch()
        watch.start()
        time.sleep(0.01)
        first = watch.stop()
        watch.start()
        time.sleep(0.01)
        second = watch.stop()
        assert second > first > 0

    def test_elapsed_while_running(self):
        watch = Stopwatch().start()
        time.sleep(0.005)
        assert watch.elapsed > 0
        assert watch.running
        watch.stop()

    def test_double_start_raises(self):
        watch = Stopwatch().start()
        with pytest.raises(RuntimeError):
            watch.start()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_reset(self):
        watch = Stopwatch().start()
        watch.stop()
        watch.reset()
        assert watch.elapsed == 0.0
        assert not watch.running


class TestTimingBreakdown:
    def test_add_and_total(self):
        breakdown = TimingBreakdown()
        breakdown.add("CR", 0.5)
        breakdown.add("ED", 1.5)
        breakdown.add("CR", 0.5)
        assert breakdown.total() == pytest.approx(2.5)
        assert breakdown.seconds["CR"] == pytest.approx(1.0)

    def test_fractions_sum_to_one(self):
        breakdown = TimingBreakdown()
        breakdown.add("a", 1.0)
        breakdown.add("b", 3.0)
        fractions = breakdown.fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert fractions["b"] == pytest.approx(0.75)

    def test_fractions_of_empty_total(self):
        breakdown = TimingBreakdown()
        breakdown.add("a", 0.0)
        assert breakdown.fractions() == {"a": 0.0}

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            TimingBreakdown().add("x", -1.0)

    def test_merge(self):
        left = TimingBreakdown({"a": 1.0})
        right = TimingBreakdown({"a": 2.0, "b": 1.0})
        left.merge(right)
        assert left.seconds == {"a": 3.0, "b": 1.0}


class TestPhaseTimer:
    def test_phases_recorded(self):
        timer = PhaseTimer()
        with timer.phase("OR"):
            time.sleep(0.002)
        with timer.phase("CR"):
            time.sleep(0.002)
        assert set(timer.breakdown.seconds) == {"OR", "CR"}
        assert all(value > 0 for value in timer.breakdown.seconds.values())

    def test_phase_records_on_exception(self):
        timer = PhaseTimer()
        with pytest.raises(ValueError):
            with timer.phase("ED"):
                raise ValueError("boom")
        assert timer.breakdown.seconds["ED"] >= 0

    def test_reset(self):
        timer = PhaseTimer()
        with timer.phase("a"):
            pass
        timer.reset()
        assert timer.breakdown.seconds == {}
