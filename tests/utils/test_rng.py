"""Tests for the RNG plumbing."""

import numpy as np
import pytest

from repro.utils.rng import derive_rng, ensure_rng, spawn_seeds


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).integers(0, 1000, size=5)
        b = ensure_rng(42).integers(0, 1000, size=5)
        np.testing.assert_array_equal(a, b)

    def test_generator_passes_through(self):
        generator = np.random.default_rng(1)
        assert ensure_rng(generator) is generator

    def test_numpy_integer_accepted(self):
        seed = np.int64(7)
        a = ensure_rng(seed).integers(0, 100)
        b = ensure_rng(7).integers(0, 100)
        assert a == b

    def test_rejects_strings(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")  # type: ignore[arg-type]


class TestDeriveRng:
    def test_children_with_different_labels_differ(self):
        parent = ensure_rng(0)
        a = derive_rng(parent, "alpha")
        b = derive_rng(parent, "beta")
        assert not np.array_equal(
            a.integers(0, 10**6, size=8), b.integers(0, 10**6, size=8)
        )

    def test_same_label_same_parent_state_is_deterministic(self):
        a = derive_rng(ensure_rng(0), "x").integers(0, 10**6, size=4)
        b = derive_rng(ensure_rng(0), "x").integers(0, 10**6, size=4)
        np.testing.assert_array_equal(a, b)

    def test_child_does_not_exhaust_parent_equivalence(self):
        # Deriving advances the parent deterministically; two parents
        # seeded identically stay in lockstep after one derivation each.
        p1, p2 = ensure_rng(3), ensure_rng(3)
        derive_rng(p1, "a")
        derive_rng(p2, "a")
        assert p1.integers(0, 10**6) == p2.integers(0, 10**6)


class TestSpawnSeeds:
    def test_count_and_range(self):
        seeds = spawn_seeds(5, 10)
        assert len(seeds) == 10
        assert all(0 <= seed < 2**31 for seed in seeds)

    def test_deterministic(self):
        assert spawn_seeds(5, 4) == spawn_seeds(5, 4)

    def test_zero_count(self):
        assert spawn_seeds(1, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_seeds(1, -1)


class TestCrossProcessDeterminism:
    def test_derive_rng_stable_across_hash_seeds(self):
        """derive_rng must not depend on builtin hash() randomisation:
        the same labels must yield the same stream in any process."""
        import os
        import subprocess
        import sys

        import repro

        # The env is deliberately minimal so only PYTHONHASHSEED varies,
        # but the child still needs to find this repo's packages.
        package_root = os.path.dirname(os.path.dirname(repro.__file__))
        snippet = (
            "from repro.utils.rng import derive_rng, ensure_rng;"
            "g = derive_rng(ensure_rng(7), 'dataset', 'pipeline');"
            "print(list(g.integers(0, 10**6, size=4)))"
        )
        outputs = set()
        for hash_seed in ("0", "1", "12345"):
            result = subprocess.run(
                [sys.executable, "-c", snippet],
                capture_output=True,
                text=True,
                env={
                    "PYTHONHASHSEED": hash_seed,
                    "PATH": "/usr/bin:/bin",
                    "PYTHONPATH": package_root,
                },
            )
            assert result.returncode == 0, result.stderr
            outputs.add(result.stdout.strip())
        assert len(outputs) == 1, outputs
