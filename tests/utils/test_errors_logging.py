"""Tests for the error hierarchy and logger naming."""

import logging

import pytest

from repro.utils.errors import (
    ConfigurationError,
    DataError,
    NotFittedError,
    ReproError,
)
from repro.utils.logging import get_logger


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc_type in (ConfigurationError, DataError, NotFittedError):
            assert issubclass(exc_type, ReproError)

    def test_configuration_error_is_value_error(self):
        assert issubclass(ConfigurationError, ValueError)

    def test_data_error_is_value_error(self):
        assert issubclass(DataError, ValueError)

    def test_not_fitted_is_runtime_error(self):
        assert issubclass(NotFittedError, RuntimeError)

    def test_catchable_at_boundary(self):
        with pytest.raises(ReproError):
            raise DataError("bad input")


class TestGetLogger:
    def test_root(self):
        assert get_logger().name == "repro"

    def test_namespacing(self):
        assert get_logger("core.trainer").name == "repro.core.trainer"

    def test_already_namespaced(self):
        assert get_logger("repro.nn").name == "repro.nn"

    def test_returns_logger_instance(self):
        assert isinstance(get_logger("x"), logging.Logger)
