"""Tests for the fault-injection probe harness."""

import time

import pytest

from repro.utils.faults import (
    FaultSpec,
    InjectedFault,
    fault_injection,
    is_active,
    probe,
)


class TestProbe:
    def test_noop_without_plan(self):
        assert not is_active()
        probe("anywhere.at.all")  # must not raise

    def test_raise_action(self):
        with fault_injection({"site.a": FaultSpec(action="raise")}):
            assert is_active()
            with pytest.raises(InjectedFault):
                probe("site.a")
        assert not is_active()

    def test_io_error_action(self):
        with fault_injection({"disk": FaultSpec(action="io_error", message="boom")}):
            with pytest.raises(OSError, match="boom"):
                probe("disk")

    def test_delay_action(self):
        with fault_injection({"slow": FaultSpec(action="delay", delay_s=0.05)}):
            started = time.monotonic()
            probe("slow")
            assert time.monotonic() - started >= 0.045

    def test_unknown_sites_unharmed(self):
        with fault_injection({"site.a": FaultSpec()}):
            probe("site.b")  # must not raise

    def test_dict_specs_coerced(self):
        with fault_injection({"site": {"action": "raise"}}):
            with pytest.raises(InjectedFault):
                probe("site")


class TestArming:
    def test_after_skips_initial_hits(self):
        with fault_injection({"epoch": FaultSpec(after=2)}) as plan:
            probe("epoch")
            probe("epoch")
            with pytest.raises(InjectedFault):
                probe("epoch")
            assert plan.hits("epoch") == 3

    def test_times_limits_firing(self):
        with fault_injection({"flaky": FaultSpec(times=1)}):
            with pytest.raises(InjectedFault):
                probe("flaky")
            probe("flaky")  # already spent

    def test_times_forever(self):
        with fault_injection({"dead": FaultSpec(times=-1)}):
            for _ in range(3):
                with pytest.raises(InjectedFault):
                    probe("dead")

    def test_injected_fault_is_not_repro_error(self):
        from repro.utils.errors import ReproError

        assert not issubclass(InjectedFault, ReproError)

    def test_nested_plans_rejected(self):
        with fault_injection({"a": FaultSpec()}):
            with pytest.raises(RuntimeError, match="already active"):
                with fault_injection({"b": FaultSpec()}):
                    pass

    def test_invalid_action_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(action="explode")
