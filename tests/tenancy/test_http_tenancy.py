"""HTTP-level multi-tenant tests: routing, error envelopes, admin and
mapping routes, retired-route behaviour, and single-tenant byte
identity."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.config import LinkerConfig, ServingConfig
from repro.core.linker import NeuralConceptLinker
from repro.serving.server import create_server, run_server
from repro.serving.service import LinkingService


def _request(base, path, payload=None, headers=None, timeout=30.0):
    data = None
    if payload is not None:
        data = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        base + path,
        data=data,
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.load(response), dict(
                response.headers
            )
    except urllib.error.HTTPError as error:
        return error.code, json.load(error), dict(error.headers)


def _serve(service):
    server = create_server(service, port=0)
    thread = threading.Thread(
        target=run_server,
        args=(server,),
        kwargs={"install_signal_handlers": False},
        daemon=True,
    )
    thread.start()
    return server, thread, f"http://127.0.0.1:{server.port}"


@pytest.fixture(scope="module")
def tenant_server(tenant_world):
    """A running multi-tenant server over the two in-memory tenants."""
    from repro.core.config import TenancyConfig, TenantConfig
    from repro.tenancy import MultiTenantLinkingService, TenantRegistry

    def loader(name, tenant, linker_config):
        ontology, kb, model = tenant_world[name]
        return NeuralConceptLinker(model, ontology, linker_config, kb=kb), kb

    tenancy = TenancyConfig(
        definitions={
            "icd": TenantConfig(),
            "sct": TenantConfig(quota_per_minute=1000),
        },
        default="icd",
    )
    registry = TenantRegistry(
        tenancy,
        serving=ServingConfig(port=0),
        linker_config=LinkerConfig(k=5),
        loader=loader,
    )
    service = MultiTenantLinkingService(registry).start()
    server, thread, base = _serve(service)
    yield base, service
    server.shutdown()
    thread.join(5.0)
    service.stop()


class TestTenantRouting:
    def test_body_field_routes_and_is_echoed(self, tenant_server):
        base, _ = tenant_server
        status, body, _ = _request(
            base, "/v1/link",
            {"query": "hemorrhagic anemia", "tenant": "sct"},
        )
        assert status == 200
        assert body["tenant"] == "sct"
        # The candidates come from the sct ontology (numeric cids) —
        # routing is what's under test, not the tiny model's ranking.
        assert body["results"][0]["ranked"][0]["cid"].isdigit()

    def test_header_routes_like_the_body_field(self, tenant_server):
        base, _ = tenant_server
        status, body, _ = _request(
            base, "/v1/link", {"query": "scorbutic anemia"},
            headers={"X-Tenant": "sct"},
        )
        assert status == 200
        assert body["tenant"] == "sct"

    def test_no_tenant_falls_to_the_default(self, tenant_server):
        base, _ = tenant_server
        status, body, _ = _request(
            base, "/v1/link", {"query": "ckd stage 5"}
        )
        assert status == 200
        assert body["tenant"] == "icd"
        assert body["results"][0]["ranked"][0]["cid"] == "N18.5"

    def test_disagreeing_body_and_header_is_a_400(self, tenant_server):
        base, _ = tenant_server
        status, body, _ = _request(
            base, "/v1/link", {"query": "x", "tenant": "icd"},
            headers={"X-Tenant": "sct"},
        )
        assert status == 400
        assert body["error"]["code"] == "bad_request"
        assert "X-Tenant" in body["error"]["message"]

    def test_unknown_tenant_is_a_404_envelope(self, tenant_server):
        base, _ = tenant_server
        status, body, _ = _request(
            base, "/v1/link", {"query": "x", "tenant": "ghost"}
        )
        assert status == 404
        assert body["error"]["code"] == "unknown_tenant"
        assert "ghost" in body["error"]["message"]


class TestQuotaOverHttp:
    def test_quota_exhaustion_is_a_429_with_retry_after(
        self, tenant_world
    ):
        from repro.core.config import TenancyConfig, TenantConfig
        from repro.tenancy import (
            MultiTenantLinkingService,
            TenantRegistry,
        )

        def loader(name, tenant, linker_config):
            ontology, kb, model = tenant_world[name]
            return (
                NeuralConceptLinker(model, ontology, linker_config, kb=kb),
                kb,
            )

        registry = TenantRegistry(
            TenancyConfig(
                definitions={
                    "icd": TenantConfig(),
                    "sct": TenantConfig(quota_per_minute=1),
                },
                default="icd",
            ),
            serving=ServingConfig(port=0),
            linker_config=LinkerConfig(k=5),
            loader=loader,
        )
        service = MultiTenantLinkingService(registry).start()
        server, thread, base = _serve(service)
        try:
            status, _, _ = _request(
                base, "/v1/link",
                {"query": "hemorrhagic anemia", "tenant": "sct"},
            )
            assert status == 200
            status, body, headers = _request(
                base, "/v1/link",
                {"query": "hemorrhagic anemia", "tenant": "sct"},
            )
            assert status == 429
            assert body["error"]["code"] == "quota_exceeded"
            assert int(headers["Retry-After"]) >= 1
            # The default tenant still serves.
            status, _, _ = _request(
                base, "/v1/link", {"query": "ckd stage 5"}
            )
            assert status == 200
        finally:
            server.shutdown()
            thread.join(5.0)
            service.stop()


class TestAdminAndMetrics:
    def test_admin_tenants_reports_the_registry(self, tenant_server):
        base, _ = tenant_server
        status, body, _ = _request(base, "/v1/admin/tenants")
        assert status == 200
        assert body["default"] == "icd"
        assert set(body["tenants"]) == {"icd", "sct"}
        assert "quota" in body["tenants"]["sct"]

    def test_metrics_snapshot_carries_tenant_partitions(self, tenant_server):
        base, _ = tenant_server
        _request(base, "/v1/link", {"query": "ckd stage 5"})
        status, body, _ = _request(base, "/v1/metrics")
        assert status == 200
        assert body["multi_tenant"] is True
        assert "icd" in body["tenants"]["tenants"]

    def test_prometheus_rendering_labels_tenants(self, tenant_server):
        base, _ = tenant_server
        _request(base, "/v1/link", {"query": "ckd stage 5"})
        request = urllib.request.Request(
            base + "/v1/metrics?format=prometheus"
        )
        with urllib.request.urlopen(request, timeout=30.0) as response:
            text = response.read().decode("utf-8")
        assert 'tenant="icd"' in text
        assert "repro_tenant_requests_total" in text


class TestMappingRoute:
    def test_map_by_query(self, tenant_server):
        base, _ = tenant_server
        status, body, _ = _request(
            base, "/v1/map",
            {"source": "sct", "target": "icd",
             "query": "end stage renal disease"},
        )
        assert status == 200
        assert body["linked"]["cid"] == "46177005"
        assert body["mappings"][0]["cid"] == "N18.5"
        assert body["api_version"]

    def test_map_by_cid(self, tenant_server):
        base, _ = tenant_server
        status, body, _ = _request(
            base, "/v1/map",
            {"source": "icd", "target": "sct", "cid": "N18.5"},
        )
        assert status == 200
        assert body["mappings"][0]["cid"] == "46177005"

    def test_map_validation_errors(self, tenant_server):
        base, _ = tenant_server
        status, body, _ = _request(
            base, "/v1/map", {"source": "sct", "target": "icd"}
        )
        assert status == 400
        status, body, _ = _request(
            base, "/v1/map",
            {"source": "sct", "target": "ghost", "cid": "9209005"},
        )
        assert status == 404
        assert body["error"]["code"] == "unknown_tenant"


class TestRetiredRoutes:
    @pytest.mark.parametrize(
        "method,path",
        [("POST", "/link"), ("GET", "/metrics"), ("GET", "/traces")],
    )
    def test_legacy_routes_are_410_gone(self, tenant_server, method, path):
        base, _ = tenant_server
        payload = {"query": "x"} if method == "POST" else None
        status, body, headers = _request(base, path, payload)
        assert status == 410
        assert body["error"]["code"] == "gone"
        assert "/v1" + path in body["error"]["message"]
        assert "successor-version" in headers.get("Link", "")


class TestSingleTenantUnchanged:
    """A deployment with no tenants section keeps today's contract."""

    @pytest.fixture(scope="class")
    def single_server(self, tenant_world):
        ontology, kb, model = tenant_world["icd"]
        service = LinkingService(
            NeuralConceptLinker(model, ontology, LinkerConfig(k=5), kb=kb),
            ServingConfig(port=0),
        )
        service.start(wait=True)
        server, thread, base = _serve(service)
        yield base, service
        server.shutdown()
        thread.join(5.0)
        service.stop()

    def test_link_body_is_byte_identical_to_the_reference(
        self, single_server
    ):
        base, service = single_server
        request = urllib.request.Request(
            base + "/v1/link",
            data=json.dumps({"query": "ckd stage 5"}).encode("utf-8"),
            headers={
                "Content-Type": "application/json",
                "X-Request-ID": "fixed-id-1",
            },
        )
        with urllib.request.urlopen(request, timeout=30.0) as response:
            raw = response.read()

        from repro.api import API_VERSION
        from repro.serving.server import result_to_json

        result = service.link("ckd stage 5")
        reference = json.dumps(
            {
                "results": [result_to_json(result, service.ontology)],
                "request_id": "fixed-id-1",
                "api_version": API_VERSION,
            }
        ).encode("utf-8")

        def masked(payload: bytes) -> bytes:
            # Per-phase timings are wall-clock and differ run to run;
            # everything else — content, key order, encoding — must be
            # byte-identical, so mask timing values and re-serialise
            # preserving the original key order.
            def scrub(node):
                if isinstance(node, dict):
                    return {
                        key: (0 if key == "timing" else scrub(value))
                        for key, value in node.items()
                    }
                if isinstance(node, list):
                    return [scrub(item) for item in node]
                return node

            return json.dumps(scrub(json.loads(payload))).encode("utf-8")

        assert masked(raw) == masked(reference), (
            "single-tenant /v1/link body changed"
        )

    def test_no_tenant_key_in_single_tenant_responses(self, single_server):
        base, _ = single_server
        status, body, _ = _request(base, "/v1/link", {"query": "x"})
        assert status == 200
        assert "tenant" not in body

    def test_naming_a_tenant_on_single_tenant_is_a_404(self, single_server):
        base, _ = single_server
        status, body, _ = _request(
            base, "/v1/link", {"query": "x", "tenant": "icd"}
        )
        assert status == 404
        assert body["error"]["code"] == "unknown_tenant"

    def test_map_is_disabled_on_single_tenant(self, single_server):
        base, _ = single_server
        status, body, _ = _request(
            base, "/v1/map", {"source": "a", "target": "b", "cid": "x"}
        )
        assert status == 404
        assert body["error"]["code"] == "mapping_disabled"

    def test_admin_tenants_is_disabled_on_single_tenant(self, single_server):
        base, _ = single_server
        status, body, _ = _request(base, "/v1/admin/tenants")
        assert status == 404
        assert body["error"]["code"] == "tenants_disabled"
