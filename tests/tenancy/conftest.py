"""Shared multi-tenant fixtures: two tiny trained tenants.

Tenant ``icd`` serves the paper's figure-1 ICD-10-like pipeline (the
same world the serving tests use); tenant ``sct`` serves a SNOMED-ish
counterpart with numeric identifiers and "(disorder)" descriptions.
Several ``sct`` aliases repeat ``icd`` surface forms verbatim — the
shared-alias anchors the cross-ontology mapper keys on.

Training is the expensive part, so both models are module-scoped;
registries and services are cheap per-test builds over them.
"""

import pytest

from repro.core.config import (
    ComAidConfig,
    LinkerConfig,
    ServingConfig,
    TenancyConfig,
    TenantConfig,
    TrainingConfig,
)
from repro.core.linker import NeuralConceptLinker
from repro.core.trainer import ComAidTrainer
from repro.kb.knowledge_base import KnowledgeBase
from repro.ontology.concept import Concept
from repro.ontology.ontology import Ontology
from repro.tenancy import MultiTenantLinkingService, TenantRegistry

from tests.serving.conftest import build_figure1_ontology, build_figure3_kb


def build_sct_ontology() -> Ontology:
    """A SNOMED-shaped counterpart to the figure-1 world."""
    ontology = Ontology()
    ontology.add(Concept("105339003", "anemia group (disorder)"))
    ontology.add(
        Concept("122452007", "anemia caused by chronic blood loss (disorder)"),
        parent_cid="105339003",
    )
    ontology.add(
        Concept("371315009", "scurvy related anemia (disorder)"),
        parent_cid="105339003",
    )
    ontology.add(
        Concept("713533000", "anemia due to low protein intake (disorder)"),
        parent_cid="105339003",
    )
    ontology.add(Concept("90708001", "kidney disease group (disorder)"))
    ontology.add(
        Concept("46177005", "end stage renal failure (disorder)"),
        parent_cid="90708001",
    )
    ontology.add(
        Concept("709044004", "chronic renal impairment (disorder)"),
        parent_cid="90708001",
    )
    ontology.add(Concept("21522001", "abdominal pain group (disorder)"))
    ontology.add(
        Concept("9209005", "acute abdominal pain (disorder)"),
        parent_cid="21522001",
    )
    ontology.add(
        Concept("102614006", "generalized abdominal pain (disorder)"),
        parent_cid="21522001",
    )
    return ontology


#: sct leaf -> icd leaf ground truth through the shared aliases below.
SCT_TO_ICD = {
    "122452007": "D50.0",
    "371315009": "D53.2",
    "713533000": "D53.0",
    "46177005": "N18.5",
    "709044004": "N18.9",
    "9209005": "R10.0",
}


def build_sct_kb(ontology: Ontology) -> KnowledgeBase:
    """Aliases for the sct world; the marked ones repeat icd forms."""
    kb = KnowledgeBase(ontology)
    kb.add_alias("122452007", "hemorrhagic anemia")  # = D50.0 alias
    kb.add_alias("122452007", "bleeding related anemia")
    kb.add_alias("371315009", "scorbutic anemia")  # = D53.2 description
    kb.add_alias("713533000", "protein deficiency anemia")  # = D53.0 descr.
    kb.add_alias("46177005", "end stage renal disease")  # = N18.5 alias
    kb.add_alias("46177005", "renal failure terminal")
    kb.add_alias("709044004", "chronic renal disease")  # = N18.9 alias
    kb.add_alias("9209005", "acute abdomen")  # = R10.0 description
    kb.add_alias("102614006", "diffuse abdomen pain")
    return kb


#: Per-tenant query mixes that resolve within each tenant's own KB.
TENANT_QUERIES = {
    "icd": [
        "ckd stage 5",
        "anemia blood loss",
        "protein deficiency anemia",
        "acute abdomen pain",
    ],
    "sct": [
        "end stage renal disease",
        "hemorrhagic anemia",
        "scorbutic anemia",
        "diffuse abdomen pain",
    ],
}


@pytest.fixture(scope="module")
def tenant_world():
    """``{name: (ontology, kb, model)}`` for the two tenants."""
    worlds = {}
    icd_ontology = build_figure1_ontology()
    icd_kb = build_figure3_kb(icd_ontology)
    sct_ontology = build_sct_ontology()
    sct_kb = build_sct_kb(sct_ontology)
    for name, ontology, kb, seed in (
        ("icd", icd_ontology, icd_kb, 7),
        ("sct", sct_ontology, sct_kb, 11),
    ):
        trainer = ComAidTrainer(
            ComAidConfig(dim=10, beta=2),
            TrainingConfig(
                epochs=8, batch_size=4, optimizer="adagrad", learning_rate=0.2
            ),
            rng=seed,
        )
        worlds[name] = (ontology, kb, trainer.fit(kb))
    return worlds


@pytest.fixture
def memory_loader(tenant_world):
    """A registry loader that builds linkers in memory (no disk)."""

    def load(name, tenant, linker_config):
        ontology, kb, model = tenant_world[name]
        return NeuralConceptLinker(model, ontology, linker_config, kb=kb), kb

    return load


@pytest.fixture
def make_registry(memory_loader):
    """Factory for registries over the two in-memory tenants.

    Keyword arguments become :class:`TenancyConfig` fields; per-tenant
    overrides ride in ``tenant_kwargs={"icd": {...}}``.  Every built
    registry is stopped at test exit.
    """
    created = []

    def factory(
        tenant_kwargs=None,
        serving=None,
        linker_config=None,
        clock=None,
        **tenancy_kwargs,
    ):
        overrides = tenant_kwargs or {}
        tenancy_kwargs.setdefault("default", "icd")
        tenancy = TenancyConfig(
            definitions={
                name: TenantConfig(**overrides.get(name, {}))
                for name in ("icd", "sct")
            },
            **tenancy_kwargs,
        )
        kwargs = {}
        if clock is not None:
            kwargs["clock"] = clock
        registry = TenantRegistry(
            tenancy,
            serving=serving if serving is not None else ServingConfig(),
            linker_config=(
                linker_config if linker_config is not None else LinkerConfig(k=5)
            ),
            loader=memory_loader,
            **kwargs,
        )
        created.append(registry)
        return registry

    yield factory
    for registry in created:
        registry.stop()


@pytest.fixture
def make_service(make_registry):
    """Factory for started multi-tenant services; stopped at exit."""
    created = []

    def factory(registry=None, **registry_kwargs):
        if registry is None:
            registry = make_registry(**registry_kwargs)
        service = MultiTenantLinkingService(registry).start()
        created.append(service)
        return service

    yield factory
    for service in created:
        service.stop()
