"""Registry behaviour: lazy load, LRU eviction, quotas, resolution."""

import pytest

from repro.tenancy import (
    QuotaExceededError,
    QuotaWindow,
    UnknownTenantError,
)

from tests.tenancy.conftest import TENANT_QUERIES


class TestResolution:
    def test_none_resolves_to_default(self, make_registry):
        registry = make_registry(default="sct")
        assert registry.resolve(None).name == "sct"
        assert registry.resolve("").name == "sct"
        assert registry.resolve("icd").name == "icd"

    def test_unknown_tenant_raises_with_roster(self, make_registry):
        registry = make_registry()
        with pytest.raises(UnknownTenantError, match="icd"):
            registry.resolve("nope")

    def test_no_default_requires_a_name(self, make_registry):
        registry = make_registry(default="")
        with pytest.raises(UnknownTenantError, match="no default"):
            registry.resolve(None)


class TestLazyLoading:
    def test_nothing_loads_until_first_touch(self, make_registry):
        registry = make_registry()
        assert registry.loaded_names() == []
        runtime = registry.resolve("icd")
        assert not runtime.loaded  # resolve alone must stay free
        service = registry.service_for(runtime)
        assert runtime.loaded
        assert registry.loaded_names() == ["icd"]
        assert registry.service_for(runtime) is service  # cached

    def test_each_tenant_gets_its_own_service(self, make_registry):
        registry = make_registry()
        icd = registry.service_for(registry.resolve("icd"))
        sct = registry.service_for(registry.resolve("sct"))
        assert icd is not sct
        assert icd.linker is not sct.linker
        assert icd.metrics is not sct.metrics
        # But traces share one ring, tagged per tenant.
        assert icd.tracer is sct.tracer

    def test_tenant_config_scopes_the_linker(self, make_registry):
        registry = make_registry(
            tenant_kwargs={"icd": {"cache_budget": 3, "k": 2}}
        )
        service = registry.service_for(registry.resolve("icd"))
        assert service.linker.config.encoding_cache_size == 3
        assert service.linker.config.k == 2


class TestEviction:
    def test_max_loaded_evicts_least_recently_used(self, make_registry):
        registry = make_registry(max_loaded=1)
        registry.service_for(registry.resolve("icd"))
        assert registry.loaded_names() == ["icd"]
        registry.service_for(registry.resolve("sct"))
        assert registry.loaded_names() == ["sct"]
        icd = registry.resolve("icd")
        assert not icd.loaded
        assert icd.service is None

    def test_evicted_tenant_reloads_and_serves(self, make_registry):
        registry = make_registry(max_loaded=1)
        first = registry.service_for(registry.resolve("icd"))
        first.link_many(TENANT_QUERIES["icd"][:1])
        registry.service_for(registry.resolve("sct"))  # evicts icd
        second = registry.service_for(registry.resolve("icd"))  # reload
        assert second is not first
        results = second.link_many(TENANT_QUERIES["icd"][:1])
        assert results[0].ranked

    def test_metrics_and_quota_survive_eviction(self, make_registry):
        registry = make_registry(
            max_loaded=1,
            tenant_kwargs={"icd": {"quota_per_minute": 100}},
        )
        icd = registry.resolve("icd")
        registry.service_for(icd).link_many(TENANT_QUERIES["icd"][:2])
        icd.quota.admit()
        requests_before = icd.metrics.counter("requests_total").value
        assert requests_before > 0
        registry.service_for(registry.resolve("sct"))  # evicts icd
        assert icd.metrics.counter("requests_total").value == requests_before
        assert icd.quota.snapshot()["used"] == 1  # window intact
        assert icd.metrics.counter("tenant_evictions").value == 1
        registry.service_for(icd)
        assert icd.metrics.counter("tenant_loads").value == 2

    def test_touch_refreshes_lru_order(self, make_registry):
        registry = make_registry(max_loaded=2)
        registry.service_for(registry.resolve("icd"))
        registry.service_for(registry.resolve("sct"))
        registry.service_for(registry.resolve("icd"))  # icd now MRU
        assert registry.loaded_names() == ["sct", "icd"]

    def test_stop_unloads_everything(self, make_registry):
        registry = make_registry()
        registry.service_for(registry.resolve("icd"))
        registry.stop()
        assert registry.loaded_names() == []
        with pytest.raises(RuntimeError, match="stopped"):
            registry.service_for(registry.resolve("icd"))


class TestQuota:
    def test_window_slides_instead_of_resetting(self):
        now = [0.0]
        window = QuotaWindow(2, window_s=60.0, clock=lambda: now[0])
        window.admit()
        now[0] = 30.0
        window.admit()
        with pytest.raises(QuotaExceededError) as info:
            window.admit()
        assert info.value.retry_after_s == pytest.approx(30.0)
        now[0] = 61.0  # first admission expired, second still live
        window.admit()
        with pytest.raises(QuotaExceededError):
            window.admit()

    def test_zero_limit_disables_the_quota(self):
        window = QuotaWindow(0)
        for _ in range(100):
            window.admit()
        assert window.snapshot()["used"] == 0

    def test_registry_wires_quota_from_config(self, make_registry):
        now = [0.0]
        registry = make_registry(
            tenant_kwargs={"icd": {"quota_per_minute": 1}},
            clock=lambda: now[0],
        )
        icd = registry.resolve("icd")
        icd.quota.admit()
        with pytest.raises(QuotaExceededError):
            icd.quota.admit()
        # The other tenant's window is independent.
        registry.resolve("sct").quota.admit()


class TestSnapshot:
    def test_snapshot_reports_all_declared_tenants(self, make_registry):
        registry = make_registry(max_loaded=1, memory_budget_mb=64.0)
        registry.service_for(registry.resolve("sct"))
        snapshot = registry.snapshot()
        assert snapshot["default"] == "icd"
        assert snapshot["max_loaded"] == 1
        assert snapshot["loaded"] == ["sct"]
        assert set(snapshot["tenants"]) == {"icd", "sct"}
        assert snapshot["tenants"]["icd"]["loaded"] is False
        assert snapshot["tenants"]["sct"]["loaded"] is True
        assert "slo" in snapshot["tenants"]["sct"]
        assert "quota" in snapshot["tenants"]["icd"]
