"""Validation and round-trip tests for the ``tenants`` config section."""

import pytest

from repro.core.config import (
    LinkerConfig,
    RuntimeConfig,
    TenancyConfig,
    TenantConfig,
)
from repro.utils.errors import ConfigurationError


class TestTenantConfig:
    def test_defaults_are_valid(self):
        tenant = TenantConfig()
        assert tenant.retrieval_mode == "exact"
        assert tenant.cache_budget == 4096

    def test_rejects_unknown_retrieval_mode(self):
        with pytest.raises(ConfigurationError, match="retrieval_mode"):
            TenantConfig(retrieval_mode="psychic")

    def test_non_exact_mode_requires_artifact(self):
        with pytest.raises(ConfigurationError, match="artifact_dir"):
            TenantConfig(retrieval_mode="sparse")
        TenantConfig(retrieval_mode="sparse", artifact_dir="/tmp/a")

    @pytest.mark.parametrize(
        "field", ["k", "cache_budget", "quota_per_minute"]
    )
    def test_rejects_negative_budgets(self, field):
        with pytest.raises(ConfigurationError, match=field):
            TenantConfig(**{field: -1})

    def test_to_linker_config_scopes_overrides(self):
        base = LinkerConfig(k=7, encoding_cache_size=100)
        tenant = TenantConfig(
            artifact_dir="/tmp/a", retrieval_mode="sparse",
            cache_budget=9, k=3,
        )
        scoped = tenant.to_linker_config(base)
        assert scoped.artifact_dir == "/tmp/a"
        assert scoped.retrieval.mode == "sparse"
        assert scoped.encoding_cache_size == 9
        assert scoped.k == 3
        # No per-tenant k -> the base k governs.
        assert TenantConfig().to_linker_config(base).k == 7


class TestTenancyConfig:
    def test_disabled_by_default(self):
        assert not TenancyConfig().enabled
        assert not RuntimeConfig().tenants.enabled

    def test_coerces_mapping_definitions(self):
        tenancy = TenancyConfig(
            definitions={"a": {"cache_budget": 8}}, default="a"
        )
        assert isinstance(tenancy.definitions["a"], TenantConfig)
        assert tenancy.definitions["a"].cache_budget == 8
        assert tenancy.enabled

    def test_rejects_unknown_tenant_keys(self):
        with pytest.raises(ConfigurationError, match="wat"):
            TenancyConfig(definitions={"a": {"wat": 1}}, default="a")

    @pytest.mark.parametrize("name", ["", "a b", "a/b", "a\nb"])
    def test_rejects_bad_tenant_names(self, name):
        with pytest.raises(ConfigurationError):
            TenancyConfig(definitions={name: {}})

    def test_rejects_undeclared_default(self):
        with pytest.raises(ConfigurationError, match="default"):
            TenancyConfig(definitions={"a": {}}, default="b")

    def test_runtime_config_round_trips(self):
        runtime = RuntimeConfig.from_dict(
            {
                "tenants": {
                    "definitions": {
                        "icd": {"cache_budget": 16, "quota_per_minute": 5},
                        "sct": {"retrieval_mode": "sparse",
                                "artifact_dir": "/tmp/sct"},
                    },
                    "default": "icd",
                    "max_loaded": 1,
                    "memory_budget_mb": 64.0,
                }
            }
        )
        assert runtime.tenants.enabled
        assert runtime.tenants.definitions["icd"].quota_per_minute == 5
        again = RuntimeConfig.from_dict(runtime.to_dict())
        assert again == runtime
