"""Cross-ontology mapper tests, including the precision gate on the
synthetic ``snomed-like`` dataset and its generated crosswalk."""

import pytest

from repro.datasets import snomed_like
from repro.ontology.icd import build_icd10_like_ontology
from repro.tenancy import ConceptMapper
from repro.utils.errors import DataError

from tests.tenancy.conftest import (
    SCT_TO_ICD,
    build_figure1_ontology,
    build_figure3_kb,
    build_sct_kb,
    build_sct_ontology,
)


@pytest.fixture(scope="module")
def figure_mapper():
    """sct -> icd mapper over the tiny hand-built tenant pair."""
    icd_ontology = build_figure1_ontology()
    icd_kb = build_figure3_kb(icd_ontology)
    sct_ontology = build_sct_ontology()
    sct_kb = build_sct_kb(sct_ontology)
    return ConceptMapper(
        sct_ontology, icd_ontology, source_kb=sct_kb, target_kb=icd_kb
    )


class TestAnchors:
    def test_shared_aliases_become_anchor_pairs(self, figure_mapper):
        pairs = dict(figure_mapper.anchor_pairs)
        for sct_cid, icd_cid in SCT_TO_ICD.items():
            assert pairs[sct_cid] == icd_cid
        assert figure_mapper.stats()["anchors"] >= len(SCT_TO_ICD)

    def test_refuses_anchorless_pairs(self):
        left = build_figure1_ontology()
        right = build_sct_ontology()  # descriptions share no exact form
        with pytest.raises(DataError, match="anchor"):
            ConceptMapper(right, left)  # no KBs -> no shared aliases
        mapper = ConceptMapper(right, left, require_anchors=False)
        assert mapper.anchor_pairs == ()


class TestProjection:
    def test_anchor_concepts_project_onto_their_partner(self, figure_mapper):
        for sct_cid, icd_cid in SCT_TO_ICD.items():
            mappings = figure_mapper.project(sct_cid, limit=3)
            assert mappings[0].cid == icd_cid
            assert mappings[0].anchor_score == 1.0

    def test_non_anchor_concept_lands_in_the_right_branch(self, figure_mapper):
        # 102614006 "generalized abdominal pain" has no shared alias;
        # lexical + structural evidence must still put it under R10.
        mappings = figure_mapper.project("102614006", limit=3)
        assert mappings, "expected candidates for a lexical match"
        assert mappings[0].cid.startswith("R10")
        assert mappings[0].anchor_score == 0.0
        assert mappings[0].structural_score > 0.0, (
            "anchors near the source should vote for the R10 branch"
        )

    def test_projection_is_deterministic(self, figure_mapper):
        first = figure_mapper.project("122452007", limit=5)
        second = figure_mapper.project("122452007", limit=5)
        assert [m.cid for m in first] == [m.cid for m in second]
        assert [m.score for m in first] == [m.score for m in second]

    def test_rejects_unknown_and_coarse_cids(self, figure_mapper):
        with pytest.raises(KeyError):
            figure_mapper.project("999999999")
        with pytest.raises(DataError, match="fine-grained"):
            figure_mapper.project("105339003")  # a category, not a leaf
        with pytest.raises(DataError, match="limit"):
            figure_mapper.project("122452007", limit=0)

    def test_to_json_is_serialisable(self, figure_mapper):
        import json

        mapping = figure_mapper.project("46177005", limit=1)[0]
        payload = mapping.to_json()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["cid"] == "N18.5"


class TestPrecisionGate:
    """Projection precision on the generated snomed-like crosswalk."""

    @pytest.fixture(scope="class")
    def snomed_world(self):
        base = build_icd10_like_ontology(
            rng=2018, categories_per_family=3, leaves_per_category=3
        )
        bundle = snomed_like(rng=2018, base=base, query_count=20)
        return base, bundle

    def test_precision_against_ground_truth_crosswalk(self, snomed_world):
        base, bundle = snomed_world
        crosswalk = bundle.metadata["crosswalk"]
        aliased = set(bundle.metadata["crosswalk_aliases"])
        mapper = ConceptMapper(
            bundle.ontology, base, source_kb=bundle.kb
        )
        total = correct = 0
        anchor_total = anchor_correct = 0
        for sct_cid, base_cid in sorted(crosswalk.items()):
            mappings = mapper.project(sct_cid, limit=1)
            hit = bool(mappings) and mappings[0].cid == base_cid
            total += 1
            correct += hit
            if sct_cid in aliased:
                anchor_total += 1
                anchor_correct += hit
        assert anchor_total > 0
        assert anchor_correct == anchor_total, (
            "aliased anchors must project exactly onto their partner"
        )
        precision = correct / total
        assert precision >= 0.8, (
            f"crosswalk precision@1 {precision:.3f} below the 0.8 gate "
            f"({correct}/{total})"
        )
