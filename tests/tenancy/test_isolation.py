"""Tenant isolation: partitioned metrics/caches under concurrent mixed
load, eviction round-trips, and numerical equivalence with a dedicated
single-tenant engine."""

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.config import LinkerConfig, ServingConfig
from repro.core.linker import NeuralConceptLinker
from repro.serving.service import LinkingService, ServiceNotReadyError
from repro.tenancy import QuotaExceededError, UnknownTenantError

from tests.tenancy.conftest import TENANT_QUERIES


class TestConcurrentIsolation:
    CALLERS = 16
    REQUESTS_PER_CALLER = 6

    def test_mixed_tenant_load_partitions_metrics_and_caches(
        self, make_service
    ):
        service = make_service()
        barrier = threading.Barrier(self.CALLERS)
        failures = []

        def caller(index):
            tenant = ("icd", "sct")[index % 2]
            queries = TENANT_QUERIES[tenant]
            barrier.wait(timeout=30.0)
            for step in range(self.REQUESTS_PER_CALLER):
                query = queries[step % len(queries)]
                try:
                    result = service.link(query, tenant=tenant)
                except Exception as error:  # noqa: BLE001 - collected
                    failures.append((tenant, query, error))
                    return
                if not result.ranked:
                    failures.append((tenant, query, "no candidates"))

        with ThreadPoolExecutor(max_workers=self.CALLERS) as pool:
            list(pool.map(caller, range(self.CALLERS)))
        assert not failures, failures

        expected = (self.CALLERS // 2) * self.REQUESTS_PER_CALLER
        icd = service.registry.resolve("icd")
        sct = service.registry.resolve("sct")
        # Exact per-tenant request counts: no request leaked across.
        assert icd.metrics.counter("requests_total").value == expected
        assert sct.metrics.counter("requests_total").value == expected
        assert (
            service.metrics.counter("routed_requests").value == 2 * expected
        )

        # Cache partitions are disjoint: each tenant's encoding cache
        # holds only its own ontology's concepts.
        icd_linker = icd.service.linker
        sct_linker = sct.service.linker
        assert icd_linker is not sct_linker
        icd_stats = {s.name: s for s in icd_linker.cache_stats()}
        sct_stats = {s.name: s for s in sct_linker.cache_stats()}
        assert icd_stats["encodings"].size > 0
        assert sct_stats["encodings"].size > 0

    def test_quota_hits_only_the_throttled_tenant(self, make_service):
        service = make_service(
            tenant_kwargs={"sct": {"quota_per_minute": 2}}
        )
        for _ in range(2):
            service.link(TENANT_QUERIES["sct"][0], tenant="sct")
        with pytest.raises(QuotaExceededError) as info:
            service.link(TENANT_QUERIES["sct"][0], tenant="sct")
        assert info.value.retry_after_s > 0
        # icd is untouched by sct's quota.
        result = service.link(TENANT_QUERIES["icd"][0], tenant="icd")
        assert result.ranked
        sct = service.registry.resolve("sct")
        assert sct.metrics.counter("quota_rejected").value == 1
        assert service.metrics.counter("quota_rejected").value == 1

    def test_unknown_tenant_is_counted_and_raised(self, make_service):
        service = make_service()
        with pytest.raises(UnknownTenantError):
            service.link("ckd stage 5", tenant="ghost")
        assert service.metrics.counter("unknown_tenant").value == 1

    def test_not_started_service_rejects(self, make_registry):
        from repro.tenancy import MultiTenantLinkingService

        service = MultiTenantLinkingService(make_registry())
        with pytest.raises(ServiceNotReadyError):
            service.link("ckd stage 5")


class TestEvictionRoundTrip:
    def test_evict_then_lazy_reload_preserves_results(self, make_service):
        service = make_service(max_loaded=1)
        before = [
            (r.ranked[0].cid, r.ranked[0].log_prob)
            for r in service.link_many(TENANT_QUERIES["icd"], tenant="icd")
        ]
        service.link(TENANT_QUERIES["sct"][0], tenant="sct")  # evicts icd
        assert service.registry.loaded_names() == ["sct"]
        after = [
            (r.ranked[0].cid, r.ranked[0].log_prob)
            for r in service.link_many(TENANT_QUERIES["icd"], tenant="icd")
        ]
        assert after == before


class TestEquivalence:
    """Routing through the registry must not change the numbers."""

    TOLERANCE = 1e-9

    def test_multi_tenant_matches_dedicated_engine(
        self, tenant_world, make_service
    ):
        service = make_service()
        for tenant, queries in TENANT_QUERIES.items():
            ontology, kb, model = tenant_world[tenant]
            dedicated = LinkingService(
                NeuralConceptLinker(
                    model, ontology, LinkerConfig(k=5), kb=kb
                ),
                ServingConfig(),
            ).start()
            try:
                routed = service.link_many(queries, tenant=tenant)
                direct = dedicated.link_many(queries)
            finally:
                dedicated.stop()
            for got, want in zip(routed, direct):
                assert [c.cid for c in got.ranked] == [
                    c.cid for c in want.ranked
                ]
                for mine, theirs in zip(got.ranked, want.ranked):
                    assert mine.log_prob == pytest.approx(
                        theirs.log_prob, abs=self.TOLERANCE
                    )


class TestServiceMapping:
    def test_map_concept_by_query_links_then_projects(self, make_service):
        service = make_service()
        report = service.map_concept(
            "sct", "icd", query="end stage renal disease"
        )
        assert report["source"] == "sct"
        assert report["target"] == "icd"
        assert report["linked"]["cid"] == "46177005"
        assert report["mappings"][0]["cid"] == "N18.5"
        assert report["anchors"] > 0

    def test_map_concept_by_cid_skips_linking(self, make_service):
        service = make_service()
        report = service.map_concept("sct", "icd", cid="9209005")
        assert report["linked"] == {
            "cid": "9209005",
            "description": "acute abdominal pain (disorder)",
            "degraded": False,
        }
        assert report["mappings"][0]["cid"] == "R10.0"

    def test_map_concept_validates_inputs(self, make_service):
        from repro.utils.errors import DataError

        service = make_service()
        with pytest.raises(DataError, match="exactly one"):
            service.map_concept("sct", "icd")
        with pytest.raises(DataError, match="exactly one"):
            service.map_concept("sct", "icd", query="x", cid="y")
        with pytest.raises(DataError, match="differ"):
            service.map_concept("icd", "icd", cid="N18.5")
        with pytest.raises(DataError, match="unknown concept"):
            service.map_concept("sct", "icd", cid="000000")

    def test_map_pays_the_source_tenant_quota(self, make_service):
        service = make_service(
            tenant_kwargs={"sct": {"quota_per_minute": 1}}
        )
        service.map_concept("sct", "icd", query="hemorrhagic anemia")
        with pytest.raises(QuotaExceededError):
            service.map_concept("sct", "icd", query="hemorrhagic anemia")
        # cid-only projection is metadata work, not a linking request.
        report = service.map_concept("sct", "icd", cid="46177005")
        assert report["mappings"]
