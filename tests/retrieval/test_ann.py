"""DenseIndex: IVF recall, determinism, and persistence round-trips."""

import numpy as np
import pytest

from repro.retrieval.ann import DenseIndex
from repro.utils.errors import DataError, NotFittedError


def blob_vectors(n_blobs=40, per_blob=40, dim=16, seed=3):
    """Clustered unit-ish vectors — the regime IVF is designed for."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(size=(n_blobs, dim))
    points = np.concatenate(
        [
            center + 0.12 * rng.normal(size=(per_blob, dim))
            for center in centers
        ]
    )
    return points


def recall_at(index, queries, k, nprobe):
    hits = 0
    for query in queries:
        truth = {position for position, _ in index.exhaustive(query, k)}
        found = {position for position, _ in index.search(query, k, nprobe=nprobe)}
        hits += len(truth & found)
    return hits / (len(queries) * k)


class TestRecall:
    def test_recall_at_10_above_095_on_clustered_data(self):
        vectors = blob_vectors()
        index = DenseIndex.train(vectors, seed=0)
        rng = np.random.default_rng(11)
        queries = vectors[rng.choice(len(vectors), size=50, replace=False)]
        assert recall_at(index, queries, k=10, nprobe=8) >= 0.95

    def test_full_probe_equals_exhaustive(self):
        vectors = blob_vectors(n_blobs=10, per_blob=20)
        index = DenseIndex.train(vectors, seed=1)
        rng = np.random.default_rng(5)
        for query in rng.normal(size=(10, vectors.shape[1])):
            assert index.search(query, 15, nprobe=index.n_clusters) == (
                index.exhaustive(query, 15)
            )

    def test_recall_grows_with_nprobe(self):
        vectors = blob_vectors(seed=9)
        index = DenseIndex.train(vectors, seed=0)
        rng = np.random.default_rng(13)
        queries = vectors[rng.choice(len(vectors), size=40, replace=False)]
        low = recall_at(index, queries, k=10, nprobe=1)
        high = recall_at(index, queries, k=10, nprobe=index.n_clusters)
        assert high == 1.0
        assert low <= high


class TestDeterminism:
    def test_same_seed_same_results(self):
        vectors = blob_vectors(n_blobs=12, per_blob=25)
        first = DenseIndex.train(vectors, seed=42)
        second = DenseIndex.train(vectors, seed=42)
        query = vectors[7]
        assert first.search(query, 10) == second.search(query, 10)
        assert np.array_equal(
            first.to_arrays()["centroids"], second.to_arrays()["centroids"]
        )

    def test_repeat_search_is_stable(self):
        vectors = blob_vectors(n_blobs=8, per_blob=20)
        index = DenseIndex.train(vectors, seed=2)
        query = vectors[3]
        assert index.search(query, 12) == index.search(query, 12)


class TestGeometry:
    def test_scores_are_cosines(self):
        vectors = blob_vectors(n_blobs=6, per_blob=10)
        index = DenseIndex.train(vectors, seed=0)
        for _, sim in index.search(vectors[0], 5, nprobe=index.n_clusters):
            assert -1.0 - 1e-9 <= sim <= 1.0 + 1e-9
        top_position, top_sim = index.search(
            vectors[0], 1, nprobe=index.n_clusters
        )[0]
        assert top_position == 0
        assert top_sim == pytest.approx(1.0)

    def test_similarities_of_gathers_exact_cosines(self):
        vectors = blob_vectors(n_blobs=5, per_blob=8)
        index = DenseIndex.train(vectors, seed=0)
        exact = dict(index.exhaustive(vectors[1], len(vectors)))
        gathered = index.similarities_of(vectors[1], np.asarray([0, 3, 9]))
        for position, value in zip([0, 3, 9], gathered):
            assert value == pytest.approx(exact[position])

    def test_vectors_examined_bounds(self):
        vectors = blob_vectors(n_blobs=10, per_blob=10)
        index = DenseIndex.train(vectors, seed=0)
        assert index.vectors_examined(index.n_clusters) == len(index)
        assert 0 < index.vectors_examined(1) < len(index)


class TestRoundTrip:
    def test_arrays_round_trip_preserves_search(self):
        vectors = blob_vectors(n_blobs=9, per_blob=15)
        index = DenseIndex.train(vectors, seed=6)
        clone = DenseIndex.from_arrays(index.to_arrays(), vectors=vectors)
        rng = np.random.default_rng(21)
        for query in rng.normal(size=(8, vectors.shape[1])):
            assert clone.search(query, 10) == index.search(query, 10)

    def test_from_arrays_rejects_inconsistent_shapes(self):
        vectors = blob_vectors(n_blobs=4, per_blob=5)
        index = DenseIndex.train(vectors, seed=0)
        arrays = index.to_arrays()
        with pytest.raises(DataError):
            DenseIndex.from_arrays(arrays, vectors=vectors[:-1])
        broken = dict(arrays)
        del broken["centroids"]
        with pytest.raises(DataError):
            DenseIndex.from_arrays(broken, vectors=vectors)


class TestValidation:
    def test_zero_vectors_rejected(self):
        with pytest.raises(DataError):
            DenseIndex.train(np.zeros((0, 4)))

    def test_non_2d_rejected(self):
        with pytest.raises(DataError):
            DenseIndex.train(np.zeros(5))

    def test_query_dim_mismatch(self):
        index = DenseIndex.train(blob_vectors(n_blobs=3, per_blob=4, dim=8))
        with pytest.raises(DataError):
            index.search(np.zeros(5), 3)

    def test_invalid_k_and_nprobe(self):
        index = DenseIndex.train(blob_vectors(n_blobs=3, per_blob=4))
        with pytest.raises(ValueError):
            index.search(np.zeros(16), 0)
        with pytest.raises(ValueError):
            index.search(np.zeros(16), 3, nprobe=0)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            DenseIndex().search(np.zeros(4), 1)
        with pytest.raises(NotFittedError):
            DenseIndex().exhaustive(np.zeros(4), 1)
        with pytest.raises(NotFittedError):
            DenseIndex().to_arrays()
