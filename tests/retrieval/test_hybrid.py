"""HybridRetriever: fusion math, mode dispatch, and recall vs the exact scan."""

import zlib

import numpy as np
import pytest

from repro.retrieval.ann import DenseIndex
from repro.retrieval.hybrid import RRF_K, HybridRetriever, fuse_candidates
from repro.retrieval.inverted import InvertedIndex
from repro.text.tfidf import TfIdfIndex
from repro.utils.errors import ConfigurationError

DIM = 24


def featurize(tokens):
    """Deterministic bag-of-hashed-words embedding.

    Correlated with token overlap (the regime a trained encoder gives
    the dense side) without needing a model in the loop.
    """
    vector = np.zeros(DIM)
    for token in tokens:
        rng = np.random.default_rng(zlib.crc32(token.encode("utf-8")))
        vector += rng.normal(size=DIM)
    return vector if np.linalg.norm(vector) else None


def build_stack(n_docs=400, seed=17):
    rng = np.random.default_rng(seed)
    vocab = [f"t{i:02d}" for i in range(60)]
    documents = []
    for i in range(n_docs):
        tokens = [vocab[j] for j in rng.choice(len(vocab), size=6, replace=False)]
        documents.append((f"C{i}", tokens))
    sparse = InvertedIndex.build(documents)
    vectors = np.stack([featurize(tokens) for _, tokens in documents])
    dense = DenseIndex.train(vectors, seed=0)
    exact = TfIdfIndex().fit(documents)
    return documents, sparse, dense, exact


@pytest.fixture(scope="module")
def stack():
    return build_stack()


class TestFuseCandidates:
    def test_weighted_sum_formula(self):
        positions = np.asarray([0, 1])
        sparse = np.asarray([0.8, 0.2])
        dense = np.asarray([0.0, 1.0])
        fused = fuse_candidates(positions, sparse, dense, fusion_weight=0.75)
        assert fused[0] == pytest.approx(0.75 * 0.8 + 0.25 * 0.5)
        assert fused[1] == pytest.approx(0.75 * 0.2 + 0.25 * 1.0)

    def test_weighted_sum_extremes_select_one_signal(self):
        positions = np.asarray([0, 1, 2])
        sparse = np.asarray([0.9, 0.5, 0.1])
        dense = np.asarray([-0.5, 0.2, 0.9])
        sparse_only = fuse_candidates(positions, sparse, dense, fusion_weight=1.0)
        assert list(np.argsort(-sparse_only)) == [0, 1, 2]
        dense_only = fuse_candidates(positions, sparse, dense, fusion_weight=0.0)
        assert list(np.argsort(-dense_only)) == [2, 1, 0]

    def test_rrf_formula(self):
        positions = np.asarray([5, 9])
        sparse = np.asarray([0.9, 0.1])  # ranks 0, 1
        dense = np.asarray([0.1, 0.9])  # ranks 1, 0
        fused = fuse_candidates(
            positions, sparse, dense, fusion_weight=0.5, method="rrf"
        )
        expected_first = 0.5 / (RRF_K + 1) + 0.5 / (RRF_K + 2)
        assert fused[0] == pytest.approx(expected_first)
        assert fused[1] == pytest.approx(expected_first)

    def test_invalid_inputs(self):
        positions = np.asarray([0])
        ones = np.asarray([1.0])
        with pytest.raises(ConfigurationError):
            fuse_candidates(positions, ones, ones, fusion_weight=1.5)
        with pytest.raises(ConfigurationError):
            fuse_candidates(positions, ones, ones, method="borda")


class TestModes:
    def test_sparse_mode_is_bit_identical_to_exact(self, stack):
        _, sparse, dense, exact = stack
        retriever = HybridRetriever(sparse, dense, featurize)
        for query in (["t01", "t02"], ["t30"], ["t10", "t11", "t12", "zzz"]):
            assert retriever.search(query, 10, mode="sparse") == (
                exact.search(query, k=10)
            )

    def test_dense_mode_returns_corpus_keys(self, stack):
        documents, sparse, dense, _ = stack
        retriever = HybridRetriever(sparse, dense, featurize)
        keys = {key for key, _ in documents}
        hits = retriever.search(["t05", "t06", "t07"], 10, mode="dense")
        assert len(hits) == 10
        assert all(hit.key in keys for hit in hits)

    def test_hybrid_weight_one_equals_sparse(self, stack):
        _, sparse, dense, exact = stack
        retriever = HybridRetriever(
            sparse, dense, featurize, fusion_weight=1.0
        )
        for query in (["t01", "t02", "t03"], ["t40", "t41"]):
            hybrid_keys = [
                hit.key for hit in retriever.search(query, 8, mode="hybrid")
            ]
            exact_keys = [hit.key for hit in exact.search(query, k=8)]
            assert hybrid_keys == exact_keys

    def test_hybrid_recall_against_exact_top_k(self, stack):
        """The small-scale recall gate: hybrid@k covers >= 0.95 of the
        exact scan's top-k.  Random-token documents are adversarial for
        score-scale fusion (hash embeddings only weakly order the sparse
        top-10), which is why rank fusion (rrf, w=0.95) is the shipped
        default — the 100k benchmark holds it to recall >= 0.98."""
        _, sparse, dense, exact = stack
        retriever = HybridRetriever(
            sparse,
            dense,
            featurize,
            fusion_weight=0.95,
            fusion_method="rrf",
            nprobe=8,
        )
        rng = np.random.default_rng(23)
        vocab = [f"t{i:02d}" for i in range(60)]
        hits = total = 0
        for _ in range(40):
            query = [
                vocab[j] for j in rng.choice(len(vocab), size=4, replace=False)
            ]
            truth = {hit.key for hit in exact.search(query, k=10)}
            found = {
                hit.key for hit in retriever.search(query, 10, mode="hybrid")
            }
            hits += len(truth & found)
            total += len(truth)
        assert total > 0
        assert hits / total >= 0.95

    def test_missing_query_vector_falls_back_to_sparse(self, stack):
        _, sparse, dense, exact = stack
        retriever = HybridRetriever(sparse, dense, lambda tokens: None)
        for mode in ("dense", "hybrid"):
            assert retriever.search(["t01", "t02"], 5, mode=mode) == (
                exact.search(["t01", "t02"], k=5)
            )

    def test_no_dense_index_falls_back_to_sparse(self, stack):
        _, sparse, _, exact = stack
        retriever = HybridRetriever(sparse, None)
        assert retriever.search(["t01"], 5, mode="hybrid") == (
            exact.search(["t01"], k=5)
        )

    def test_empty_union_returns_empty(self, stack):
        _, sparse, dense, _ = stack
        retriever = HybridRetriever(sparse, dense, lambda tokens: None)
        assert retriever.search(["qqqq"], 5, mode="hybrid") == []

    def test_unknown_mode_raises(self, stack):
        _, sparse, dense, _ = stack
        retriever = HybridRetriever(sparse, dense, featurize)
        with pytest.raises(ConfigurationError):
            retriever.search(["t01"], 5, mode="fuzzy")


class TestValidation:
    def test_corpus_size_mismatch(self, stack):
        _, sparse, _, _ = stack
        small_dense = DenseIndex.train(np.eye(4), seed=0)
        with pytest.raises(ConfigurationError):
            HybridRetriever(sparse, small_dense)

    def test_invalid_knobs(self, stack):
        _, sparse, dense, _ = stack
        with pytest.raises(ConfigurationError):
            HybridRetriever(sparse, dense, fusion_method="borda")
        with pytest.raises(ConfigurationError):
            HybridRetriever(sparse, dense, fusion_weight=-0.1)
        with pytest.raises(ConfigurationError):
            HybridRetriever(sparse, dense, nprobe=0)

    def test_len_reports_corpus_size(self, stack):
        documents, sparse, dense, _ = stack
        assert len(HybridRetriever(sparse, dense)) == len(documents)
