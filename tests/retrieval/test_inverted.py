"""InvertedIndex: bit-identical equivalence with the exact TF-IDF scan."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.retrieval.inverted import InvertedIndex
from repro.text.tfidf import CorpusStats, TfIdfIndex
from repro.utils.errors import DataError, NotFittedError

token = st.text(alphabet="abcdef", min_size=1, max_size=3)
document = st.lists(token, min_size=1, max_size=8)
corpus = st.lists(document, min_size=1, max_size=16)


def build_pair(documents, stats=None):
    keyed = [(f"C{i}", doc) for i, doc in enumerate(documents)]
    exact = TfIdfIndex().fit(keyed, stats=stats)
    fast = InvertedIndex.build(keyed, stats=stats)
    return exact, fast


class TestBitIdentity:
    @pytest.mark.property
    @settings(max_examples=60, deadline=None)
    @given(corpus, document, st.integers(min_value=1, max_value=12))
    def test_search_equals_exact_scan(self, documents, query, k):
        """Same hit set, same order, same float scores — dataclass ==."""
        exact, fast = build_pair(documents)
        assert fast.search(query, k=k) == exact.search(query, k=k)

    @pytest.mark.property
    @settings(max_examples=25, deadline=None)
    @given(corpus, document)
    def test_search_with_global_stats(self, documents, query):
        """External corpus statistics flow through build unchanged."""
        stats = CorpusStats(
            doc_count=len(documents) + 50,
            df={term: 3 for doc in documents for term in doc},
        )
        exact, fast = build_pair(documents, stats=stats)
        assert fast.search(query, k=5) == exact.search(query, k=5)

    def test_large_tie_plateau_uses_partition_path(self):
        """> _FULL_SORT_LIMIT touched docs with equal scores: the
        argpartition pre-selection must keep the exact doc-id tie order."""
        documents = [(i, ["shared"]) for i in range(4300)]
        exact = TfIdfIndex().fit(documents)
        fast = InvertedIndex.build(documents)
        assert fast.search(["shared"], k=7) == exact.search(["shared"], k=7)

    def test_no_overlap_returns_empty(self):
        _, fast = build_pair([["alpha", "beta"]])
        assert fast.search(["gamma"], k=3) == []


class TestSparseHits:
    def test_cosine_of_matches_hit_scores(self):
        documents = [["a", "b"], ["b", "c"], ["c", "d"], ["d", "e"]]
        _, fast = build_pair(documents)
        result = fast.search_scored(["b", "c"], k=4)
        recomputed = result.cosine_of(result.positions)
        for hit, cosine in zip(result.hits, recomputed):
            assert hit.score == float(cosine)

    def test_untouched_documents_score_zero(self):
        documents = [["a"], ["b"], ["c"]]
        _, fast = build_pair(documents)
        result = fast.search_scored(["a"], k=3)
        assert result.cosine_of(np.asarray([1, 2])).tolist() == [0.0, 0.0]

    def test_empty_query_scorer_is_all_zero(self):
        _, fast = build_pair([["a"], ["b"]])
        result = fast.search_scored(["zzz"], k=2)
        assert result.hits == []
        assert result.cosine_of(np.asarray([0, 1])).tolist() == [0.0, 0.0]


class TestEarlyTermination:
    def test_impact_ordered_postings(self):
        """Per-term postings are frozen weight-descending."""
        documents = [(i, ["x"] * (i + 1) + ["pad"] * 3) for i in range(6)]
        fast = InvertedIndex.build(documents)
        arrays = fast.to_arrays()
        slot = list(arrays["terms"]).index("x")
        lo, hi = arrays["offsets"][slot], arrays["offsets"][slot + 1]
        weights = arrays["weights"][lo:hi]
        assert list(weights) == sorted(weights, reverse=True)

    def test_cap_keeps_highest_impact_hits(self):
        # The "pad" token makes cosine grow with the x-count, so the
        # impact-ordered prefix is also the true top-k.
        documents = [(i, ["x"] * (i + 1) + ["pad"]) for i in range(8)]
        fast = InvertedIndex.build(documents)
        capped = fast.search(["x"], k=8, max_postings_per_term=3)
        assert len(capped) == 3
        assert capped == fast.search(["x"], k=3)

    def test_postings_examined(self):
        exact, fast = build_pair([["a", "b"], ["b"], ["c"]])
        assert fast.postings_examined(["b"]) == 2
        assert fast.postings_examined(["a", "b"]) == 3
        assert fast.postings_examined(["zzz"]) == 0


class TestRoundTrip:
    def test_arrays_round_trip_preserves_search(self):
        documents = [(f"C{i}", doc) for i, doc in enumerate(
            [["a", "b"], ["b", "c", "c"], ["d"], ["a", "d", "e"]]
        )]
        fast = InvertedIndex.build(documents)
        clone = InvertedIndex.from_arrays(
            fast.to_arrays(), keys=fast.keys, stats=fast.stats()
        )
        for query in (["a"], ["b", "c"], ["e", "a"], ["zzz"]):
            assert clone.search(query, k=4) == fast.search(query, k=4)

    def test_from_arrays_rejects_inconsistent_shapes(self):
        fast = InvertedIndex.build([("C0", ["a"]), ("C1", ["b"])])
        arrays = fast.to_arrays()
        with pytest.raises(DataError):
            InvertedIndex.from_arrays(
                arrays, keys=["C0"], stats=fast.stats()
            )
        broken = dict(arrays)
        del broken["weights"]
        with pytest.raises(DataError):
            InvertedIndex.from_arrays(
                broken, keys=fast.keys, stats=fast.stats()
            )


class TestValidation:
    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            InvertedIndex().search(["a"])
        with pytest.raises(NotFittedError):
            InvertedIndex().to_arrays()
        with pytest.raises(NotFittedError):
            InvertedIndex().stats()

    def test_invalid_k(self):
        fast = InvertedIndex.build([("C0", ["a"])])
        with pytest.raises(ValueError):
            fast.search(["a"], k=0)

    def test_len_and_keys(self):
        fast = InvertedIndex.build([("C0", ["a"]), ("C1", ["b"])])
        assert len(fast) == 2
        assert fast.keys == ["C0", "C1"]
