"""End-to-end integration tests at tiny scale.

Exercises the complete NCL lifecycle the way a deployment would:
generate data → pre-train → train → link → pool feedback → expert
review via Timon artifacts → incremental retrain → re-link.
"""

import pytest

from repro.api import (
    ComAidConfig,
    ComAidTrainer,
    FeedbackController,
    LinkerConfig,
    NeuralConceptLinker,
    TrainingConfig,
    hospital_x_like,
    pretrain_word_vectors,
)
from repro.core.timon import parse_review_csv, render_review_page
from repro.embeddings import CbowConfig
from repro.eval.metrics import top1_accuracy
from repro.nn.serialization import load_module, save_module
from repro.core.comaid import ComAid


@pytest.fixture(scope="module")
def stack():
    dataset = hospital_x_like(
        rng=21, categories_per_family=2, leaves_per_category=3, query_count=120
    )
    vectors = pretrain_word_vectors(
        dataset.corpus,
        CbowConfig(dim=12, window=4, epochs=8, negatives=5, subsample=3e-3),
        rng=2,
    )
    trainer = ComAidTrainer(
        ComAidConfig(dim=12, beta=2),
        TrainingConfig(epochs=6, batch_size=8, optimizer="adagrad",
                       learning_rate=0.15),
        rng=4,
    )
    model = trainer.fit(dataset.kb, word_vectors=vectors)
    linker = NeuralConceptLinker(
        model, dataset.ontology, LinkerConfig(k=10),
        kb=dataset.kb, word_vectors=vectors,
    )
    return dataset, vectors, trainer, model, linker


@pytest.mark.slow
class TestEndToEnd:
    def test_linking_clearly_beats_chance(self, stack):
        dataset, _, _, _, linker = stack
        queries = dataset.queries[:60]
        ranked = [
            [c.cid for c in linker.link(q.text).ranked] for q in queries
        ]
        accuracy = top1_accuracy(ranked, [q.cid for q in queries])
        chance = 1.0 / len(dataset.ontology.fine_grained())
        assert accuracy > 10 * chance
        assert accuracy > 0.3

    def test_model_roundtrips_through_disk(self, stack, tmp_path):
        dataset, vectors, _, model, linker = stack
        path = tmp_path / "model.npz"
        save_module(model, path)
        clone = ComAid(model.config, model.vocab, rng=999)
        load_module(clone, path)
        clone_linker = NeuralConceptLinker(
            clone, dataset.ontology, LinkerConfig(k=10),
            kb=dataset.kb, word_vectors=vectors,
        )
        for query in dataset.queries[:5]:
            original = linker.link(query.text)
            restored = clone_linker.link(query.text)
            assert [c.cid for c in original.ranked] == [
                c.cid for c in restored.ranked
            ]

    def test_feedback_cycle_through_timon_artifacts(self, stack, tmp_path):
        dataset, _, trainer, _, linker = stack
        controller = FeedbackController(
            dataset.kb, loss_threshold=8.0, std_threshold=0.3,
            retrain_after=10**9,
        )
        pooled = []
        for query in dataset.queries[:40]:
            result = linker.link(query.text)
            if controller.submit(result):
                pooled.append(query)
            if len(pooled) >= 3:
                break
        if not pooled:
            pytest.skip("no uncertain queries at this seed")
        # Render the Timon page, then simulate the expert's CSV export.
        page_path = tmp_path / "timon.html"
        rendered = render_review_page(controller.pool, dataset.ontology, page_path)
        assert rendered == len(controller.pool)
        csv_path = tmp_path / "decisions.csv"
        csv_path.write_text(
            "".join(f"{q.text},{q.cid}\n" for q in pooled), encoding="utf-8"
        )
        resolved, rejected = parse_review_csv(controller, csv_path)
        assert rejected == []
        assert len(resolved) == len(pooled)
        # Incremental retraining consumes the feedback.
        trainer.continue_training(resolved, epochs=2)
        linker.invalidate_cache()
        result = linker.link(pooled[0].text)
        assert result.ranked  # pipeline still healthy after retrain

    def test_deterministic_pipeline(self):
        def build_and_link():
            dataset = hospital_x_like(
                rng=33, categories_per_family=2, leaves_per_category=2,
                query_count=40,
            )
            vectors = pretrain_word_vectors(
                dataset.corpus,
                CbowConfig(dim=8, window=3, epochs=3, negatives=3),
                rng=2,
            )
            trainer = ComAidTrainer(
                ComAidConfig(dim=8, beta=1),
                TrainingConfig(epochs=2, batch_size=8),
                rng=4,
            )
            model = trainer.fit(dataset.kb, word_vectors=vectors)
            linker = NeuralConceptLinker(
                model, dataset.ontology, LinkerConfig(k=5),
                kb=dataset.kb, word_vectors=vectors,
            )
            return [
                [c.cid for c in linker.link(q.text).ranked]
                for q in dataset.queries[:10]
            ]

        assert build_and_link() == build_and_link()
