"""Tests for the experiment scale presets."""

import pytest

from repro.eval.experiments import DEFAULT, SMALL, TINY
from repro.eval.experiments.scale import PRESETS


class TestPresets:
    def test_registry_complete(self):
        assert set(PRESETS) == {"small", "default", "tiny"}

    def test_ordering(self):
        assert TINY.query_count < SMALL.query_count < DEFAULT.query_count
        assert (
            TINY.categories_per_family
            < SMALL.categories_per_family
            <= DEFAULT.categories_per_family
        )

    def test_dataset_builder(self):
        dataset = TINY.dataset("hospital-x-like", rng=1)
        assert dataset.name == "hospital-x-like"
        assert len(dataset.queries) == TINY.query_count

    def test_unknown_dataset(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            TINY.dataset("nope")

    def test_config_factories(self):
        assert SMALL.cbow_config().dim == SMALL.dim
        assert SMALL.cbow_config(dim=8).dim == 8
        assert SMALL.model_config().dim == SMALL.dim
        assert SMALL.model_config(use_text_attention=False).variant_name == (
            "COM-AID-w"
        )
        assert SMALL.training_config(epochs=3).epochs == 3
        assert SMALL.linker_config(k=7).k == 7

    def test_group_protocol_fits_query_budget(self):
        for scale in (TINY, SMALL, DEFAULT):
            assert scale.purposive_size < scale.group_size
            assert scale.group_size <= scale.query_count
            assert scale.eval_queries <= scale.query_count
