"""Tests for the experiment harness."""

import pytest

from repro.datasets.generator import LinkedQuery
from repro.datasets.splits import QueryGroup
from repro.eval.experiments import TINY
from repro.eval.harness import (
    build_pipeline,
    evaluate_groups,
    evaluate_ranker,
    linker_ranker,
)


@pytest.fixture(scope="module")
def tiny_pipeline():
    dataset = TINY.dataset("hospital-x-like", rng=3)
    return build_pipeline(
        dataset,
        model_config=TINY.model_config(),
        training_config=TINY.training_config(),
        cbow_config=TINY.cbow_config(),
        rng=1,
    )


class TestBuildPipeline:
    def test_components_wired(self, tiny_pipeline):
        assert tiny_pipeline.model is tiny_pipeline.trainer.model
        assert tiny_pipeline.word_vectors is not None
        assert tiny_pipeline.pretrain_seconds > 0

    def test_no_pretrain_variant(self):
        dataset = TINY.dataset("hospital-x-like", rng=3)
        pipeline = build_pipeline(
            dataset,
            model_config=TINY.model_config(),
            training_config=TINY.training_config(),
            rng=1,
            pretrain=False,
        )
        assert pipeline.word_vectors is None
        assert pipeline.linker.rewriter is not None  # edit-distance only

    def test_vector_reuse_skips_pretraining(self, tiny_pipeline):
        pipeline = build_pipeline(
            tiny_pipeline.dataset,
            model_config=TINY.model_config(),
            training_config=TINY.training_config(),
            word_vectors=tiny_pipeline.word_vectors,
            rng=1,
        )
        assert pipeline.word_vectors is tiny_pipeline.word_vectors
        assert pipeline.pretrain_seconds < tiny_pipeline.pretrain_seconds

    def test_ranker_interface(self, tiny_pipeline):
        ranker = tiny_pipeline.ranker()
        query = tiny_pipeline.dataset.queries[0]
        ranked = ranker(query.text)
        assert isinstance(ranked, list)


class TestEvaluate:
    def test_evaluate_ranker(self, tiny_pipeline):
        queries = tiny_pipeline.dataset.queries[:10]
        outcome = evaluate_ranker("NCL", tiny_pipeline.ranker(), queries)
        assert 0.0 <= outcome.accuracy <= 1.0
        assert outcome.accuracy <= outcome.mrr + 1e-12

    def test_evaluate_groups_averages_and_caches(self):
        calls = []

        def counting_ranker(text):
            calls.append(text)
            return ["A"] if text == "alpha" else ["B"]

        queries = [
            LinkedQuery(text="alpha", cid="A"),
            LinkedQuery(text="beta", cid="A"),
        ]
        groups = [
            QueryGroup(index=0, queries=tuple(queries), purposive_count=1),
            QueryGroup(index=1, queries=tuple(queries), purposive_count=1),
        ]
        outcome = evaluate_groups("toy", counting_ranker, groups)
        assert outcome.accuracy == pytest.approx(0.5)
        assert len(outcome.per_group) == 2
        # Each distinct text ranked exactly once despite two groups.
        assert sorted(calls) == ["alpha", "beta"]

    def test_evaluate_groups_empty_rejected(self):
        with pytest.raises(ValueError):
            evaluate_groups("toy", lambda text: [], [])

    def test_linker_ranker_k_override(self, tiny_pipeline):
        ranker = linker_ranker(tiny_pipeline.linker, k=2)
        query = tiny_pipeline.dataset.queries[0]
        assert len(ranker(query.text)) <= 2
