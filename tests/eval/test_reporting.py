"""Tests for experiment reporting helpers."""

import pytest

from repro.eval.reporting import format_series, format_table, render_markdown_table


class TestFormatTable:
    def test_alignment_and_title(self):
        table = format_table(
            ["method", "acc"],
            [["NCL", 0.75], ["pkduck", 0.34]],
            title="Fig7",
        )
        lines = table.splitlines()
        assert lines[0] == "Fig7"
        assert "method" in lines[1] and "acc" in lines[1]
        assert "NCL" in lines[3]

    def test_float_trimming(self):
        table = format_table(["x"], [[0.5000]])
        assert "0.5" in table and "0.5000" not in table

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only one"]])


class TestMarkdownTable:
    def test_structure(self):
        markdown = render_markdown_table(["a", "b"], [[1, 2]])
        lines = markdown.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"

    def test_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_markdown_table(["a"], [[1, 2]])


class TestFormatSeries:
    def test_pairs(self):
        series = format_series("Acc", [10, 20], [0.7, 0.75], "k")
        assert series == "Acc [k]: 10=0.7, 20=0.75"

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series("x", [1], [1, 2])
