"""Smoke tests: every experiment runner executes end-to-end at TINY
scale and returns structurally complete results.

These protect the benchmark harness — a benchmark that crashes after
twenty minutes of training is found here in seconds instead.
"""

import pytest

from repro.eval.experiments import TINY
from repro.eval.experiments.fig5_tuning import run_vary_beta, run_vary_k
from repro.eval.experiments.fig6_architecture import average_drop
from repro.eval.experiments.fig6_architecture import run as run_fig6
from repro.eval.experiments.fig7_overall import run as run_fig7
from repro.eval.experiments.fig8_pretraining import pretraining_gap
from repro.eval.experiments.fig8_pretraining import run as run_fig8
from repro.eval.experiments.fig10_feedback import run as run_fig10
from repro.eval.experiments.fig11_online_time import (
    run_vary_k as run_fig11_k,
    run_vary_query_length as run_fig11_q,
)
from repro.eval.experiments.fig12_training_time import (
    run_pretraining_time,
    run_refinement_time,
)
from repro.eval.experiments.fig13_robustness import (
    run_vary_concepts,
    run_vary_unlabeled,
)
from repro.eval.experiments.shard_scaling import run_shard_scaling

DATASET = ("hospital-x-like",)


@pytest.mark.slow
class TestExperimentSmoke:
    def test_fig5a(self):
        results = run_vary_k(scale=TINY, seed=1, k_grid=(5, 10), verbose=False)
        assert results["k"] == [5, 10]
        assert len(results["cov"]) == 2 and len(results["acc"]) == 2

    def test_fig5b(self):
        results = run_vary_beta(
            scale=TINY, seed=1, beta_grid=(1, 2), datasets=DATASET, verbose=False
        )
        assert results["hospital-x-like"]["beta"] == [1, 2]

    def test_fig6(self):
        results = run_fig6(
            scale=TINY, seed=1, datasets=DATASET, dim_grid=(8,), verbose=False
        )
        per_variant = results["hospital-x-like"]
        assert set(per_variant) == {
            "COM-AID", "COM-AID-c", "COM-AID-w", "COM-AID-wc",
        }
        assert isinstance(average_drop(results, "COM-AID-wc"), float)

    def test_fig7(self):
        results = run_fig7(
            scale=TINY,
            seed=1,
            datasets=DATASET,
            theta_grid=(0.3,),
            verbose=False,
        )
        methods = [row.method for row in results["hospital-x-like"]]
        assert "NCL" in methods and "NC" in methods and "LR+" in methods
        assert any(method.startswith("pkduck") for method in methods)
        assert any(method.startswith("WMD") for method in methods)
        assert any(method.startswith("Doc2Vec") for method in methods)

    def test_fig8(self):
        results = run_fig8(
            scale=TINY, seed=1, datasets=DATASET, dim_grid=(8,), verbose=False
        )
        assert isinstance(pretraining_gap(results), float)

    def test_fig10(self):
        results = run_fig10(
            scale=TINY, seed=1, n_feedbacks=1, retrain_epochs=1, verbose=False
        )
        assert len(results["steps"]) == 1

    def test_fig11(self):
        k_results = run_fig11_k(
            scale=TINY, seed=1, k_grid=(3, 6), queries_per_point=5,
            datasets=DATASET, verbose=False,
        )
        per_k = k_results["hospital-x-like"]
        assert set(per_k) == {3, 6}
        assert all("total" in values for values in per_k.values())
        q_results = run_fig11_q(
            scale=TINY, seed=1, length_grid=(1, 3), queries_per_point=5,
            datasets=DATASET, verbose=False,
        )
        assert q_results["hospital-x-like"]

    def test_fig12(self):
        pre = run_pretraining_time(
            scale=TINY, seed=1, fractions=(0.5, 1.0), datasets=DATASET,
            verbose=False,
        )
        assert len(pre["hospital-x-like"]["seconds"]) == 2
        refine = run_refinement_time(
            scale=TINY, seed=1, fractions=(0.5, 1.0), datasets=DATASET,
            verbose=False,
        )
        assert len(refine["hospital-x-like"]["seconds"]) == 2

    def test_fig13(self):
        concepts = run_vary_concepts(
            scale=TINY, seed=1, fractions=(0.5, 1.0), datasets=DATASET,
            queries_per_point=10, verbose=False,
        )
        assert len(concepts["hospital-x-like"]["acc"]) == 2
        unlabeled = run_vary_unlabeled(
            scale=TINY, seed=1, fractions=(0.5, 1.0), datasets=DATASET,
            verbose=False,
        )
        assert len(unlabeled["hospital-x-like"]["acc"]) == 2

    def test_shard_scaling(self, tmp_path):
        results = run_shard_scaling(
            scale=TINY, seed=1, k=5, queries_per_point=5, shards=2,
            artifact_dir=str(tmp_path / "artifact"), verbose=False,
        )
        assert set(results["modes"]) == {
            "runtime_cold", "engine_s1", "engine_s2",
        }
        assert results["rankings_identical"]
        assert results["max_abs_log_prob_delta"] <= 1e-9
        for mode in results["modes"].values():
            assert mode["throughput_qps"] > 0
