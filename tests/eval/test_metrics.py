"""Tests for evaluation metrics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.eval.metrics import (
    coverage,
    mean_reciprocal_rank,
    reciprocal_ranks,
    top1_accuracy,
)


class TestTop1Accuracy:
    def test_basic(self):
        ranked = [["a", "b"], ["b", "a"], []]
        gold = ["a", "a", "a"]
        assert top1_accuracy(ranked, gold) == pytest.approx(1 / 3)

    def test_perfect(self):
        assert top1_accuracy([["x"]], ["x"]) == 1.0

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            top1_accuracy([], [])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            top1_accuracy([["a"]], ["a", "b"])


class TestMrr:
    def test_paper_definition(self):
        # MRR = (1/|Q|) * sum(1/rank_i); absent gold contributes 0.
        ranked = [["a", "b", "c"], ["b", "a"], ["x", "y"]]
        gold = ["a", "a", "a"]
        assert mean_reciprocal_rank(ranked, gold) == pytest.approx(
            (1.0 + 0.5 + 0.0) / 3
        )

    def test_reciprocal_ranks_per_query(self):
        assert reciprocal_ranks([["a"], ["b", "a"]], ["a", "a"]) == [1.0, 0.5]

    @given(
        st.lists(
            st.lists(st.sampled_from("abcde"), max_size=5, unique=True),
            min_size=1,
            max_size=20,
        )
    )
    def test_mrr_bounded_by_accuracy_relation(self, ranked_lists):
        gold = ["a"] * len(ranked_lists)
        accuracy = top1_accuracy(ranked_lists, gold)
        mrr = mean_reciprocal_rank(ranked_lists, gold)
        # accuracy <= MRR <= coverage, always.
        assert accuracy - 1e-12 <= mrr
        assert mrr <= coverage(ranked_lists, gold) + 1e-12


class TestCoverage:
    def test_basic(self):
        ranked = [["a", "b"], ["c"], []]
        gold = ["b", "a", "a"]
        assert coverage(ranked, gold) == pytest.approx(1 / 3)

    def test_mismatch_rejected(self):
        with pytest.raises(ValueError):
            coverage([["a"]], [])
