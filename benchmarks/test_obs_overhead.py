"""Tracing-overhead benchmark — the <1% sampling-off guarantee.

Runs three interleaved modes (untraced floor, tracing machinery with
sampling off, full tracing) over the same query stream on one warmed
pipeline, writes ``BENCH_obs.json`` at the repo root, and asserts the
acceptance gate: with sampling off the instrumented serving path is
within 1% of the untraced p50.
"""

import json
from pathlib import Path

import pytest

from repro.eval.experiments import SMALL
from repro.eval.experiments.obs_overhead import run_obs_overhead

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_obs.json"


@pytest.fixture(scope="module")
def report():
    return run_obs_overhead(
        scale=SMALL, seed=2018, k=10, queries_per_trial=60, trials=8
    )


def test_tracing_off_overhead_within_1_percent(once, report):
    data = once(lambda: report)
    BENCH_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    assert data["overhead_off_pct"] <= 1.0, data


def test_tracing_on_actually_records(once, report):
    # Registered with pytest-benchmark so --benchmark-only keeps it.
    once(lambda: None)
    assert report["traces_recorded"] > 0, report
