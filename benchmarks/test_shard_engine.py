"""Shard-engine benchmark — precompiled scatter-gather vs runtime encoding.

Runs the three-way comparison on the hospital-x-like smoke dataset
(runtime encoding with cold caches vs the precompiled engine at S=1
and S=4), writes ``BENCH_shard.json`` at the repo root, and asserts
the acceptance gates: ≥2× link throughput for the 4-worker precompiled
engine over the 1-worker runtime-encoding baseline, a lower CR+ED p50,
and ranking equivalence with ≤1e-9 log-prob deltas.
"""

import json
from pathlib import Path

import pytest

from repro.eval.experiments import SMALL
from repro.eval.experiments.shard_scaling import run_shard_scaling

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_shard.json"


@pytest.fixture(scope="module")
def report(tmp_path_factory):
    return run_shard_scaling(
        scale=SMALL,
        seed=2018,
        k=10,
        queries_per_point=40,
        shards=4,
        artifact_dir=str(tmp_path_factory.mktemp("bench") / "artifact"),
    )


def test_sharded_engine_at_least_2x_throughput(once, report):
    data = once(lambda: report)
    BENCH_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    assert data["speedup_throughput"] >= 2.0, data


def test_precompiled_cr_ed_p50_beats_runtime_encoding(once, report):
    once(lambda: None)
    assert report["cr_ed_p50_improvement"] > 0.0, report["modes"]


def test_sharded_rankings_equivalent(once, report):
    once(lambda: None)
    assert report["rankings_identical"], report
    assert report["max_abs_log_prob_delta"] <= 1e-9, report
