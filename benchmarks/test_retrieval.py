"""Retrieval-at-scale benchmark — the 100k-concept gate.

Runs the four retrieval modes (exact scan, inverted sparse, IVF dense,
hybrid fusion) over the ``large-scale-like`` 100k fine-grained
ontology, writes ``BENCH_retrieval.json`` at the repo root, and asserts
the acceptance gates: the hybrid mode at its shipped defaults (rrf,
w=0.95, nprobe=8) must cut the exact scan's CR p50 by ≥5× while
keeping recall@64 ≥ 0.98, and the sparse mode must stay bit-identical
to the exact scan on every query.
"""

import json
from pathlib import Path

import pytest

from repro.core.config import RetrievalConfig
from repro.eval.experiments.retrieval_scale import run_retrieval_scale

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_retrieval.json"


@pytest.fixture(scope="module")
def report():
    defaults = RetrievalConfig()  # the gate measures the shipped knobs
    return run_retrieval_scale(
        scale="large",
        seed=2018,
        k=64,
        query_count=128,
        nprobe=defaults.nprobe,
        fusion_weight=defaults.fusion_weight,
        fusion_method=defaults.fusion_method,
    )


def test_hybrid_speedup_at_least_5x(once, report):
    data = once(lambda: report)
    BENCH_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    assert data["concepts"] >= 100_000, data
    assert data["speedup_p50"]["hybrid"] >= 5.0, data["modes"]


def test_hybrid_recall_at_least_098(once, report):
    once(lambda: None)
    assert report["modes"]["hybrid"]["recall_at_k"] >= 0.98, report["modes"]


def test_sparse_is_bit_identical_and_faster(once, report):
    once(lambda: None)
    assert report["sparse_identical"], report
    assert report["speedup_p50"]["sparse"] >= 5.0, report["modes"]
