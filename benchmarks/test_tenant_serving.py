"""Multi-tenant serving benchmark — isolation and routing overhead.

Drives two tenants (hospital-x-like and snomed-like pipelines) behind
one :class:`MultiTenantLinkingService` under closed-loop mixed load,
paired against dedicated per-tenant services in the same process, and
writes ``BENCH_tenant.json`` at the repo root.  Gates:

* per-tenant availability 1.0 — every request on every tenant was
  served or explicitly refused (gated unconditionally);
* p50 routing overhead ≤ 10% — the tenant layer (resolution, quota,
  LRU bookkeeping, metric partitions) must be nearly free next to the
  linking work itself.  The estimate is a median over paired passes,
  which shrugs off one-off scheduler stalls.
"""

import json
from pathlib import Path

import pytest

from repro.eval.experiments import SMALL
from repro.eval.experiments.tenant_load import run_tenant_load

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_tenant.json"

MAX_P50_OVERHEAD_PCT = 10.0


@pytest.fixture(scope="module")
def report():
    return run_tenant_load(
        scale=SMALL,
        seed=2018,
        k=10,
        clients_per_tenant=4,
        duration_s=1.5,
        passes=3,
    )


def test_per_tenant_availability_is_total(once, report):
    data = once(lambda: report)
    BENCH_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    assert data["availability"] == 1.0, data["modes"]["multi_tenant"]
    for tenant, stats in data["modes"]["multi_tenant"].items():
        assert stats["failed"] == 0, (tenant, stats)
        assert stats["issued"] > 0, (tenant, stats)


def test_routing_overhead_is_within_ten_percent(once, report):
    once(lambda: None)
    assert report["overhead_p50_pct"] <= MAX_P50_OVERHEAD_PCT, {
        "overhead_p50_pct": report["overhead_p50_pct"],
        "per_pass": report["per_pass_overhead_p50_pct"],
    }


def test_both_tenants_served_comparable_volumes(once, report):
    once(lambda: None)
    served = [
        stats["served"]
        for stats in report["modes"]["multi_tenant"].values()
    ]
    # Mixed load must not starve one tenant behind the other: both
    # closed-loop halves make progress within the same order of
    # magnitude.
    assert min(served) > 0
    assert max(served) <= 20 * min(served), report["modes"]["multi_tenant"]
