"""Figure 11 (Appendix B.1) — online linking time analysis.

Paper shapes: total time grows with k and with |q|; the encode-decode
part (ED) dominates; hospital-x is slower than MIMIC-III because its
canonical descriptions are longer.
"""

import pytest

from repro.eval.experiments import SMALL
from repro.eval.experiments.fig11_online_time import (
    run_vary_k,
    run_vary_query_length,
)


@pytest.fixture(scope="module")
def k_results():
    return run_vary_k(scale=SMALL, seed=2018, queries_per_point=40)


def test_fig11ab_time_grows_with_k(once, k_results):
    results = once(lambda: k_results)
    for name, per_k in results.items():
        ks = sorted(per_k)
        totals = [per_k[k]["total"] for k in ks]
        assert totals[-1] > totals[0], f"{name}: {totals}"


def test_fig11_ed_dominates(once, k_results):
    # Register with pytest-benchmark so --benchmark-only
    # does not skip this shape assertion.
    once(lambda: None)
    for name, per_k in k_results.items():
        for k, values in per_k.items():
            assert values["ED"] == max(
                values[phase] for phase in ("OR", "CR", "ED", "RT")
            ), f"{name} k={k}: {values}"


def test_fig11_hospital_slower_than_mimic(once, k_results):
    # Register with pytest-benchmark so --benchmark-only
    # does not skip this shape assertion.
    once(lambda: None)
    # Longer ICD-10-style descriptions cost more to encode/attend over.
    hospital = k_results["hospital-x-like"]
    mimic = k_results["mimic-iii-like"]
    shared = sorted(set(hospital) & set(mimic))
    hospital_mean = sum(hospital[k]["ED"] for k in shared) / len(shared)
    mimic_mean = sum(mimic[k]["ED"] for k in shared) / len(shared)
    assert hospital_mean > mimic_mean


@pytest.fixture(scope="module")
def sequential_k10():
    """The pre-batching reference profile at k=10 (same seed/pipeline)."""
    return run_vary_k(
        scale=SMALL,
        seed=2018,
        queries_per_point=40,
        k_grid=(10,),
        datasets=("hospital-x-like",),
        batch_phase2=False,
    )


def test_fig11_batched_ed_beats_sequential(once, k_results, sequential_k10):
    # Register with pytest-benchmark so --benchmark-only
    # does not skip this shape assertion.
    once(lambda: None)
    batched = k_results["hospital-x-like"][10]
    sequential = sequential_k10["hospital-x-like"][10]
    assert batched["ED"] + batched["RT"] < sequential["ED"] + sequential["RT"]


def test_fig11cd_time_grows_with_query_length(once):
    results = once(
        run_vary_query_length, scale=SMALL, seed=2018, queries_per_point=30
    )
    for name, per_length in results.items():
        lengths = sorted(per_length)
        if len(lengths) < 2:
            continue
        first, last = per_length[lengths[0]], per_length[lengths[-1]]
        assert last["total"] > first["total"], f"{name}"
        # ED grows with |q| (more words to decode).
        assert last["ED"] > first["ED"], f"{name}"
