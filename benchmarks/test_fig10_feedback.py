"""Figure 10 (Appendix A.2) — effect of expert feedback.

Paper shapes: after each fed feedback, (a) the learned representations
shift (concept and word PCA projections move between snapshots), and
(b) the fed pair's decode loss falls — NCL absorbs the expert's
semantic implication.
"""

from repro.eval.experiments import SMALL
from repro.eval.experiments.fig10_feedback import run


def test_fig10_feedback_shifts_representations(once):
    results = once(run, scale=SMALL, seed=2018, n_feedbacks=3)
    steps = results["steps"]
    assert len(steps) == 3
    for step in steps:
        # Representations moved in PCA space after retraining.
        assert step.concept_shift > 0.0
        assert step.word_shift > 0.0
    # The fed pair is decodable afterwards: loss drops for most steps
    # (the paper shows monotone absorption of each feedback).
    improved = sum(1 for step in steps if step.loss_after < step.loss_before)
    assert improved >= 2
