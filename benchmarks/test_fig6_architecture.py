"""Figure 6 — network architecture study (attention ablations).

Paper shapes: COM-AID beats COM-AID⁻c, COM-AID⁻w, and COM-AID⁻wc on
accuracy and MRR across datasets and hidden dimensions; the average
accuracy drops are ≈0.08 (no SC), ≈0.1 (no TC), ≳0.2 (neither).
"""

import pytest

from repro.eval.experiments import DEFAULT
from repro.eval.experiments.fig6_architecture import average_drop, run


@pytest.fixture(scope="module")
def results():
    # DEFAULT scale: the attention ablations separate on the ~360-leaf
    # ontology; at SMALL scale (~100 leaves) the task is easy enough
    # that all four variants tie within noise.  One hidden dimension
    # (the validated bench analogue of the paper's d=150) keeps the
    # run affordable; the paper's d-grid sweep is available via
    # fig6_architecture.run(dim_grid=...).
    return run(scale=DEFAULT, seed=2018, dim_grid=(24,))


def test_fig6_runs_and_reports(once, results):
    # The heavy work happens in the module fixture; re-expose through
    # pytest-benchmark for uniform reporting.
    summary = once(lambda: {"datasets": list(results)})
    assert set(summary["datasets"]) == {"hospital-x-like", "mimic-iii-like"}


def test_fig6_comaid_dominates_on_average(once, results):
    # Register with pytest-benchmark so --benchmark-only
    # does not skip this shape assertion.
    once(lambda: None)
    # No ablated variant clearly beats the full model, and the mean
    # ablation penalty across all three variants is positive.
    drops = [
        average_drop(results, variant, "acc")
        for variant in ("COM-AID-c", "COM-AID-w", "COM-AID-wc")
    ]
    assert all(drop > -0.03 for drop in drops), drops
    assert sum(drops) / len(drops) > 0.02, drops


def test_fig6_removing_both_attentions_hurts_most(once, results):
    # Register with pytest-benchmark so --benchmark-only
    # does not skip this shape assertion.
    once(lambda: None)
    drop_c = average_drop(results, "COM-AID-c", "acc")
    drop_w = average_drop(results, "COM-AID-w", "acc")
    drop_wc = average_drop(results, "COM-AID-wc", "acc")
    assert drop_wc >= max(drop_c, drop_w) - 0.04
    # The paper's magnitudes: 0.08 / 0.1 / >0.2 — same order of
    # magnitude at bench scale.
    assert drop_wc > 0.03


def test_fig6_full_model_wins_at_every_dimension_on_mrr(once, results):
    # Register with pytest-benchmark so --benchmark-only
    # does not skip this shape assertion.
    once(lambda: None)
    for name, per_variant in results.items():
        full = per_variant["COM-AID"]["mrr"]
        ablated = per_variant["COM-AID-wc"]["mrr"]
        wins = sum(1 for f, a in zip(full, ablated) if f >= a - 0.03)
        assert wins >= len(full) - 1, f"{name}: {full} vs {ablated}"
