"""Benchmark configuration.

Every benchmark regenerates one paper table/figure via the experiment
runners in :mod:`repro.eval.experiments`, printing the same rows/series
the paper reports and asserting the qualitative *shape* (who wins, the
direction of trends), not absolute numbers — our substrate is a
synthetic corpus on one CPU, not the authors' hospital data on a
40-thread server.

Run with ``pytest benchmarks/ --benchmark-only``.  Expect the full
suite to take tens of minutes: it trains dozens of COM-AID models.
"""

import pytest


def run_once(benchmark, function, *args, **kwargs):
    """Execute an experiment exactly once under pytest-benchmark.

    Experiments train neural networks for minutes; statistical
    repetition is meaningless at that cost, so rounds=iterations=1.
    """
    return benchmark.pedantic(
        function, args=args, kwargs=kwargs, rounds=1, iterations=1
    )


@pytest.fixture
def once(benchmark):
    def runner(function, *args, **kwargs):
        return run_once(benchmark, function, *args, **kwargs)

    return runner
