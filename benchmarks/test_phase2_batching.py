"""Phase-II batching benchmark — sequential vs batched candidate scoring.

Runs the head-to-head on the hospital-x-like smoke dataset at k=10 (the
configuration the acceptance gate names), writes ``BENCH_phase2.json``
at the repo root with both per-phase timing profiles, the measured
ED+RT speedup, and the equivalence audit, and asserts the two
guarantees: ≥2× faster on ED+RT and bit-identical rankings with ≤1e-9
log-prob deltas.
"""

import json
from pathlib import Path

import pytest

from repro.eval.experiments import SMALL
from repro.eval.experiments.phase2_batching import run_phase2_batching

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_phase2.json"


@pytest.fixture(scope="module")
def report():
    return run_phase2_batching(
        scale=SMALL, seed=2018, k=10, queries_per_point=40
    )


def test_phase2_batched_at_least_2x_on_ed_rt(once, report):
    data = once(lambda: report)
    BENCH_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    assert data["speedup_ed_rt"] >= 2.0, data


def test_phase2_batched_rankings_equivalent(once, report):
    # Register with pytest-benchmark so --benchmark-only
    # does not skip this shape assertion.
    once(lambda: None)
    assert report["rankings_identical"], report
    assert report["max_abs_log_prob_delta"] <= 1e-9, report


def test_phase2_ed_still_dominates_batched(once, report):
    # Batching shrinks ED but must not reorder Figure 11's hierarchy on
    # this workload: encode-decode stays the dominant phase.
    once(lambda: None)
    batched = report["batched"]
    assert batched["ED"] == max(
        batched[phase] for phase in ("OR", "CR", "ED", "RT")
    ), batched
