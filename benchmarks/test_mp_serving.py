"""Multi-process serving benchmark — forked workers under closed-loop load.

Drives the GIL-free tier (``ProcPoolLinkingService``) with concurrent
closed-loop clients at workers=1 and workers=4 over one compiled
artifact, writes ``BENCH_mp.json`` at the repo root, and asserts the
acceptance gates:

* availability 1.0 — every issued request was served or explicitly
  shed; nothing hung, nothing dropped (gated unconditionally);
* qps at workers=4 ≥ 2× workers=1 — only armed on machines with ≥4
  CPUs.  On fewer cores the forked workers time-slice one core and
  the ratio is physics, not a regression, so the number is recorded
  report-only.
"""

import json
import os
from pathlib import Path

import pytest

from repro.eval.experiments import SMALL
from repro.eval.experiments.mp_load import run_mp_load

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_mp.json"

MIN_CPUS_FOR_SPEEDUP_GATE = 4


@pytest.fixture(scope="module")
def report(tmp_path_factory):
    return run_mp_load(
        scale=SMALL,
        seed=2018,
        k=10,
        clients=8,
        duration_s=2.0,
        worker_counts=(1, 4),
        artifact_dir=str(tmp_path_factory.mktemp("bench") / "artifact"),
    )


def test_availability_is_total(once, report):
    data = once(lambda: report)
    BENCH_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    assert data["availability"] == 1.0, data["modes"]
    for name, stats in data["modes"].items():
        assert stats["failed"] == 0, (name, stats)
        assert stats["issued"] > 0, (name, stats)


def test_worker_scaling_on_multicore(once, report):
    once(lambda: None)
    cpus = os.cpu_count() or 1
    if cpus < MIN_CPUS_FOR_SPEEDUP_GATE:
        pytest.skip(
            f"speedup gate needs >= {MIN_CPUS_FOR_SPEEDUP_GATE} CPUs "
            f"(have {cpus}); speedup_qps={report['speedup_qps']:.2f} "
            "recorded report-only in BENCH_mp.json"
        )
    assert report["speedup_qps"] >= 2.0, report["modes"]


def test_accepted_requests_have_finite_tail(once, report):
    once(lambda: None)
    for name, stats in report["modes"].items():
        if stats["served"]:
            assert stats["latency_p99_s"] > 0.0, (name, stats)
            assert stats["latency_p99_s"] < 30.0, (name, stats)
