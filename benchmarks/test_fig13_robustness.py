"""Figure 13 (Appendix C) — robustness to training-data variation.

Paper shapes: 13(a) accuracy decreases only mildly as the concept count
grows (fewer concepts -> fewer interfering concepts -> higher
accuracy); 13(b) accuracy drops as the unlabeled corpus shrinks but
stays usable (paper: >0.6 at 25%).
"""

import pytest

from repro.eval.experiments import SMALL
from repro.eval.experiments.fig13_robustness import (
    run_vary_concepts,
    run_vary_unlabeled,
)


def test_fig13a_vary_concepts(once):
    results = once(run_vary_concepts, scale=SMALL, seed=2018, fractions=(0.25, 0.5, 1.0))
    for name, series in results.items():
        acc = series["acc"]
        # Fewer concepts never hurts much: the 25% point is at least as
        # good as the 100% point (within noise).
        assert acc[0] >= acc[-1] - 0.08, f"{name}: {acc}"
        # Overall the curve is not a cliff (robustness claim).
        assert max(acc) - min(acc) < 0.35, f"{name}: {acc}"


def test_fig13b_vary_unlabeled(once):
    results = once(run_vary_unlabeled, scale=SMALL, seed=2018, fractions=(0.25, 0.5, 1.0))
    for name, series in results.items():
        acc = series["acc"]
        # Full corpus is at least as good as the 25% corpus.
        assert acc[-1] >= acc[0] - 0.05, f"{name}: {acc}"
        # Accuracy stays usable even at 25% unlabeled data.
        assert acc[0] > 0.35, f"{name}: {acc}"
