"""Figure 12 (Appendix B.2) — offline training time analysis.

Paper shapes: pre-training is far cheaper than COM-AID refinement;
both grow with their data size (refinement approximately linearly);
hospital-x costs at least as much as MIMIC-III at the full fraction.
"""

import pytest

from repro.eval.experiments import SMALL
from repro.eval.experiments.fig12_training_time import (
    run_pretraining_time,
    run_refinement_time,
)


@pytest.fixture(scope="module")
def timings():
    pretraining = run_pretraining_time(scale=SMALL, seed=2018, fractions=(0.25, 0.5, 1.0))
    refinement = run_refinement_time(scale=SMALL, seed=2018, fractions=(0.25, 0.5, 1.0))
    return pretraining, refinement


def test_fig12_runs(once, timings):
    pretraining, refinement = once(lambda: timings)
    assert set(pretraining) == set(refinement)


def test_fig12a_pretraining_grows_with_corpus(once, timings):
    # Register with pytest-benchmark so --benchmark-only
    # does not skip this shape assertion.
    once(lambda: None)
    pretraining, _ = timings
    for name, series in pretraining.items():
        seconds = series["seconds"]
        assert seconds[-1] > seconds[0], f"{name}: {seconds}"


def test_fig12b_refinement_grows_roughly_linearly(once, timings):
    # Register with pytest-benchmark so --benchmark-only
    # does not skip this shape assertion.
    once(lambda: None)
    _, refinement = timings
    for name, series in refinement.items():
        seconds = series["seconds"]
        pairs = series["pairs"]
        assert seconds[-1] > seconds[0], f"{name}: {seconds}"
        # Linearity: time per pair at 100% within 3x of at 25%.
        per_pair_small = seconds[0] / pairs[0]
        per_pair_full = seconds[-1] / pairs[-1]
        ratio = per_pair_full / per_pair_small
        assert 1 / 3 < ratio < 3, f"{name}: ratio {ratio}"


def test_fig12_refinement_dwarfs_pretraining(once, timings):
    # Register with pytest-benchmark so --benchmark-only
    # does not skip this shape assertion.
    once(lambda: None)
    # The paper's absolute gap (pre-training: seconds; refinement:
    # hours) reflects its corpus/pair ratio (~10^6 snippets vs ~10^5
    # pairs over many epochs).  The transferable claim is the per-item
    # cost: one COM-AID training pair (encode + attend + decode + BPTT)
    # costs far more than one CBOW snippet.
    pretraining, refinement = timings
    for name in refinement:
        pre = pretraining[name]
        refine = refinement[name]
        per_snippet = pre["seconds"][-1] / pre["snippets"][-1]
        per_pair = refine["seconds"][-1] / refine["pairs"][-1]
        assert per_pair > 3 * per_snippet, (
            f"{name}: per-pair {per_pair:.5f}s vs per-snippet "
            f"{per_snippet:.5f}s"
        )
