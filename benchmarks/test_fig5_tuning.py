"""Figure 5 — parameter tuning (k and β).

Paper shapes: Cov grows monotonically with k; Acc stops improving (and
may slightly drop) past the default k; Acc peaks at β = 2 and declines
for β > 2 because the ontologies are shallow.
"""

from repro.eval.experiments import DEFAULT, SMALL
from repro.eval.experiments.fig5_tuning import run_vary_beta, run_vary_k


def test_fig5a_vary_k(once):
    # DEFAULT scale: with ~360 fine-grained concepts, Phase-I coverage
    # at k=10 is meaningfully below its ceiling, so the paper's
    # Cov-grows-with-k shape is visible (at SMALL scale the index
    # saturates before k=10 and the curve degenerates to flat).
    results = once(run_vary_k, scale=DEFAULT, seed=2018)
    cov = results["cov"]
    acc = results["acc"]
    # Coverage is monotonically non-decreasing in k.
    assert all(b >= a - 1e-9 for a, b in zip(cov, cov[1:]))
    # Accuracy saturates: the best k is not the largest one by a clear
    # margin (the paper's curve peaks at k=20 then drifts down).
    assert max(acc) - acc[-1] >= -0.02
    # Coverage at the default k is high (Phase I is not the bottleneck).
    assert cov[1] > 0.8


def test_fig5b_vary_beta(once):
    results = once(run_vary_beta, scale=SMALL, seed=2018, beta_grid=(1, 2, 3))
    for name, series in results.items():
        acc = series["acc"]
        betas = series["beta"]
        best = betas[acc.index(max(acc))]
        # The peak is at a small beta (paper: 2); deep padding never wins.
        assert best <= 3, f"{name}: best beta {best}"
        # beta=4 (all padding) does not beat the peak.
        assert acc[-1] <= max(acc) + 1e-9
