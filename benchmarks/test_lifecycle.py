"""Lifecycle benchmark — swap-window availability and shadow overhead.

Runs the closed-loop drill (pool → resolve → retrain → recompile →
blue/green hot swap) on the small hospital-x-like dataset with hammer
clients holding the service under load across the swap window, writes
``BENCH_lifecycle.json`` at the repo root, and asserts the acceptance
gates: the candidate promotes, not a single in-window request fails or
degrades (availability exactly 1.0), and shadow scoring costs less
than the drill's latency gate allows.
"""

import json
from pathlib import Path

import pytest

from repro.eval.experiments.lifecycle_drill import run_lifecycle_drill

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_lifecycle.json"


@pytest.fixture(scope="module")
def report(tmp_path_factory):
    return run_lifecycle_drill(
        scale="small",
        seed=2018,
        workdir=tmp_path_factory.mktemp("bench-lifecycle"),
        clients=2,
        retrain_epochs=2,
    )


def test_hot_swap_promotes_under_load(once, report):
    data = once(lambda: report)
    BENCH_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    assert data["promoted"], data["promotion"]
    assert data["fingerprint_changed"]


def test_swap_window_availability_is_total(once, report):
    once(lambda: None)
    window = report["swap_window"]
    assert window["requests"] > 0
    assert window["failures"] == 0
    assert window["degraded"] == 0
    assert window["availability"] == 1.0


def test_shadow_overhead_stays_bounded(once, report):
    once(lambda: None)
    # Shadowing re-scores mirrored queries one by one on a second
    # engine sharing one CPU; the drill's own gate allows 50×, the
    # bench asserts an order of magnitude tighter.
    assert report["shadow_overhead_ratio"] < 5.0, report
