"""Cross-process tracing-overhead benchmark — sampling off stays free.

Same paired-difference design as ``test_obs_overhead.py`` but each
timed unit is a full request through the multi-process tier
(:class:`~repro.serving.service.ProcPoolLinkingService`): admission
queue, dispatch over a worker pipe, Phase-II decode in a forked
worker.  With sampling off the dispatcher must send ``trace_ids=None``
and workers must never build a tracer, so the pipe carries no trace
payload — the gate asserts that path is within 1% of the untraced p50.

The report merges into ``BENCH_obs.json`` under the ``"mp"`` key,
preserving the single-process numbers already written there.
"""

import json
from pathlib import Path

import pytest

from repro.eval.experiments import SMALL
from repro.eval.experiments.obs_overhead import run_obs_overhead_mp

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_obs.json"


@pytest.fixture(scope="module")
def report():
    return run_obs_overhead_mp(
        scale=SMALL, seed=2018, k=10, queries_per_trial=30, trials=4,
        workers=2,
    )


def test_mp_tracing_off_overhead_within_1_percent(once, report):
    data = once(lambda: report)
    merged = {}
    if BENCH_PATH.exists():
        try:
            merged = json.loads(BENCH_PATH.read_text())
        except (ValueError, OSError):
            merged = {}
    merged["mp"] = data
    BENCH_PATH.write_text(
        json.dumps(merged, indent=2, sort_keys=True) + "\n"
    )
    assert data["overhead_off_pct"] <= 1.0, data


def test_mp_tracing_on_stitches_traces(once, report):
    # Registered with pytest-benchmark so --benchmark-only keeps it.
    once(lambda: None)
    assert report["traces_recorded"] > 0, report
