"""Table 1 — parameter settings.

Verifies the library's recorded paper defaults match Table 1's bold
entries and that the configuration objects expose the same grids the
paper sweeps.
"""

from repro.core.config import PAPER_DEFAULTS, ComAidConfig, LinkerConfig
from repro.eval.experiments import DEFAULT, SMALL
from repro.eval.reporting import format_table


def test_table1_parameter_settings(once):
    def report():
        rows = [
            ["k", "10, 20, 30, 40, 50", PAPER_DEFAULTS["k"], LinkerConfig().k],
            ["beta", "1, 2, 3, 4", PAPER_DEFAULTS["beta"], ComAidConfig().beta],
            ["d", "50, 100, 150, 200", PAPER_DEFAULTS["d"], DEFAULT.dim],
        ]
        print(
            format_table(
                ["parameter", "paper grid", "paper default", "bench default"],
                rows,
                title="Table 1: parameter settings",
            )
        )
        return rows

    rows = once(report)
    assert PAPER_DEFAULTS == {"k": 20, "beta": 2, "d": 150}
    # The bench keeps the paper's k and beta defaults verbatim; d is the
    # scaled analogue recorded in the experiment scales.
    assert LinkerConfig().k == 20
    assert ComAidConfig().beta == 2
    assert SMALL.dim_grid == DEFAULT.dim_grid
