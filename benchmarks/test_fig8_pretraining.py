"""Figure 8 — effect of pre-training.

Paper shapes: the pre-trained COM-AID beats COM-AID⁻o1 at every hidden
dimension on both datasets, with a gap consistently greater than 0.1.
"""

import pytest

from repro.eval.experiments import SMALL
from repro.eval.experiments.fig8_pretraining import pretraining_gap, run


@pytest.fixture(scope="module")
def results():
    return run(scale=SMALL, seed=2018, dim_grid=(12, 24))


def test_fig8_reports(once, results):
    names = once(lambda: sorted(results))
    assert names == ["hospital-x-like", "mimic-iii-like"]


def test_fig8_pretraining_gap_exceeds_paper_threshold(once, results):
    # Register with pytest-benchmark so --benchmark-only
    # does not skip this shape assertion.
    once(lambda: None)
    # "The accuracy gap ... is consistently greater than 0.1."
    assert pretraining_gap(results) > 0.1


def test_fig8_pretrained_wins_at_every_dimension(once, results):
    # Register with pytest-benchmark so --benchmark-only
    # does not skip this shape assertion.
    once(lambda: None)
    for name, per_series in results.items():
        full = per_series["COM-AID"]["acc"]
        ablated = per_series["COM-AID-o1"]["acc"]
        for dim, f, a in zip(per_series["COM-AID"]["d"], full, ablated):
            assert f > a, f"{name} d={dim}: {f} <= {a}"


def test_fig8_injection_itself_matters(once, results):
    """Our extra series: plain CBOW (no cid injection).

    Honest scale-dependent finding: at bench scale (10^3 snippets) the
    injection interleaves cid tokens into every tagged snippet, halving
    the effective co-occurrence window — and the plain CBOW control can
    actually *beat* the injected one.  The paper's injection benefit
    belongs to its 10^6-snippet regime.  What must hold at any scale —
    and what this test asserts — is that pre-training of either kind
    beats no pre-training at every dimension, i.e. the Figure 8 gap is
    not an artifact of the injection trick.
    """
    once(lambda: None)
    for name, per_series in results.items():
        plain = per_series["COM-AID-plain"]["acc"]
        ablated = per_series["COM-AID-o1"]["acc"]
        for dim, p, a in zip(per_series["COM-AID-plain"]["d"], plain, ablated):
            assert p > a, f"{name} d={dim}: plain {p} <= no-pretrain {a}"
