"""Design-choice ablations beyond the paper's own figures.

DESIGN.md calls out several implementation decisions; each gets a bench
that quantifies it on the hospital-x-like dataset:

* **Phase II value** — NCL vs the keyword matcher alone (Phase I as a
  linker): how much does COM-AID re-ranking add over TF-IDF retrieval?
* **Query rewriting value** — NCL with vs without OOV rewriting.
* **Recurrent unit** — LSTM (the paper's choice) vs GRU.
* **Sampled softmax** — exact vs BlackOut-style sampled training:
  quality must be comparable while per-epoch time drops for large
  vocabularies.
* **Combined annotator** — RRF fusion of NCL + pkduck vs each alone
  (the paper's "can also be combined" remark).
"""

import pytest

from repro.baselines.ensemble import EnsembleLinker
from repro.baselines.keyword import KeywordLinker
from repro.baselines.pkduck import PkduckLinker
from repro.core.config import LinkerConfig
from repro.core.linker import NeuralConceptLinker
from repro.eval.experiments import SMALL
from repro.eval.harness import build_pipeline, evaluate_ranker, linker_ranker
from repro.eval.reporting import format_table
from repro.utils.rng import derive_rng, ensure_rng


@pytest.fixture(scope="module")
def setup():
    generator = ensure_rng(2018)
    dataset = SMALL.dataset("hospital-x-like", rng=derive_rng(generator, "ds"))
    pipeline = build_pipeline(
        dataset,
        model_config=SMALL.model_config(),
        training_config=SMALL.training_config(),
        cbow_config=SMALL.cbow_config(),
        rng=derive_rng(generator, "pipeline"),
    )
    queries = dataset.queries[: SMALL.eval_queries]
    return generator, dataset, pipeline, queries


def test_ablation_phase2_and_rewriting(once, setup):
    generator, dataset, pipeline, queries = setup

    def evaluate_all():
        rows = []
        ncl = evaluate_ranker("NCL (full)", linker_ranker(pipeline.linker), queries)
        rows.append(ncl.as_row())

        keyword = KeywordLinker(
            dataset.ontology, kb=dataset.kb, word_vectors=pipeline.word_vectors
        )
        keyword_result = evaluate_ranker(
            "keyword only (Phase I)",
            lambda text: [cid for cid, _ in keyword.rank(text, 20)],
            queries,
        )
        rows.append(keyword_result.as_row())

        no_rewrite = NeuralConceptLinker(
            pipeline.model,
            dataset.ontology,
            LinkerConfig(k=20, rewrite_queries=False),
            kb=dataset.kb,
            word_vectors=pipeline.word_vectors,
        )
        no_rewrite_result = evaluate_ranker(
            "NCL w/o rewriting", linker_ranker(no_rewrite), queries
        )
        rows.append(no_rewrite_result.as_row())
        print(format_table(["variant", "accuracy", "MRR"], rows,
                           title="Ablation: phase II and rewriting"))
        return ncl, keyword_result, no_rewrite_result

    ncl, keyword_result, no_rewrite_result = once(evaluate_all)
    # Honest finding: at bench scale (~100 concepts), the alias-aware
    # keyword matcher — *using NCL's own embedding-based rewriting* —
    # is already a strong ranker, so Phase II adds little and may even
    # trail it slightly; its value grows with ontology size (the
    # paper's regime is 71k concepts).  We assert NCL stays in the same
    # band rather than strictly above.
    assert ncl.accuracy >= keyword_result.accuracy - 0.12
    # Rewriting is the OOV bridge: removing it must hurt clearly.
    assert ncl.accuracy > no_rewrite_result.accuracy


def test_ablation_recurrent_unit(once, setup):
    generator, dataset, pipeline, queries = setup

    def run_gru():
        gru_pipeline = build_pipeline(
            dataset,
            model_config=SMALL.model_config(cell="gru"),
            training_config=SMALL.training_config(),
            word_vectors=pipeline.word_vectors,
            rng=derive_rng(generator, "gru"),
        )
        gru = evaluate_ranker(
            "COM-AID (GRU)", linker_ranker(gru_pipeline.linker), queries
        )
        lstm = evaluate_ranker(
            "COM-AID (LSTM)", linker_ranker(pipeline.linker), queries
        )
        print(format_table(
            ["cell", "accuracy", "MRR"],
            [lstm.as_row(), gru.as_row()],
            title="Ablation: recurrent unit",
        ))
        return lstm, gru

    lstm, gru = once(run_gru)
    # Both units must train to a working linker; neither may collapse.
    assert gru.accuracy > 0.3
    assert abs(lstm.accuracy - gru.accuracy) < 0.25


def test_ablation_sampled_softmax(once, setup):
    generator, dataset, pipeline, queries = setup

    def run_sampled():
        sampled_pipeline = build_pipeline(
            dataset,
            model_config=SMALL.model_config(),
            training_config=SMALL.training_config(sampled_softmax=20),
            word_vectors=pipeline.word_vectors,
            rng=derive_rng(generator, "sampled"),
        )
        sampled = evaluate_ranker(
            "sampled softmax (20)",
            linker_ranker(sampled_pipeline.linker),
            queries,
        )
        exact = evaluate_ranker(
            "exact softmax", linker_ranker(pipeline.linker), queries
        )
        rows = [
            exact.as_row() + [round(pipeline.trainer.history.seconds, 1)],
            sampled.as_row()
            + [round(sampled_pipeline.trainer.history.seconds, 1)],
        ]
        print(format_table(
            ["training", "accuracy", "MRR", "seconds"],
            rows,
            title="Ablation: BlackOut-style sampled softmax",
        ))
        return exact, sampled

    exact, sampled = once(run_sampled)
    # Sampled training must stay within a modest quality margin.
    assert sampled.accuracy > exact.accuracy - 0.12


def test_ablation_combined_annotator(once, setup):
    generator, dataset, pipeline, queries = setup

    def run_ensemble():
        pkduck = PkduckLinker(dataset.ontology, theta=0.1)
        ncl_rank = linker_ranker(pipeline.linker)
        ensemble = EnsembleLinker(
            [
                ("NCL", lambda text, k: [
                    (cid, 0.0) for cid in ncl_rank(text)[:k]
                ]),
                ("pkduck", pkduck.rank),
            ],
            weights=[2.0, 1.0],
        )
        rows = []
        ncl = evaluate_ranker("NCL", ncl_rank, queries)
        rows.append(ncl.as_row())
        pk = evaluate_ranker(
            "pkduck(0.1)",
            lambda text: [cid for cid, _ in pkduck.rank(text, 20)],
            queries,
        )
        rows.append(pk.as_row())
        fused = evaluate_ranker(
            "NCL + pkduck (RRF)",
            lambda text: [cid for cid, _ in ensemble.rank(text, 20)],
            queries,
        )
        rows.append(fused.as_row())
        print(format_table(["method", "accuracy", "MRR"], rows,
                           title="Ablation: combined annotator"))
        return ncl, pk, fused

    ncl, pk, fused = once(run_ensemble)
    # Fusion must not fall below the weaker member, and should at least
    # approach the stronger one (the combined-annotator premise).
    assert fused.accuracy >= pk.accuracy - 0.02
    assert fused.accuracy >= ncl.accuracy - 0.10
