"""Figure 7 — overall linking quality comparison.

Paper shapes: NCL has the highest accuracy and MRR on both datasets by
a clear margin; pkduck improves as θ decreases and is the strongest
classical string method; NC and Doc2Vec trail badly.
"""

import pytest

from repro.eval.experiments import DEFAULT
from repro.eval.experiments.fig7_overall import run


@pytest.fixture(scope="module")
def results():
    return run(scale=DEFAULT, seed=2018, theta_grid=(0.1, 0.3, 0.5))


def by_method(rows):
    return {row.method: row for row in rows}


def test_fig7_reports_both_datasets(once, results):
    summary = once(lambda: sorted(results))
    assert summary == ["hospital-x-like", "mimic-iii-like"]


def test_fig7_ncl_wins_accuracy_and_mrr(once, results):
    # Register with pytest-benchmark so --benchmark-only
    # does not skip this shape assertion.
    once(lambda: None)
    for name, rows in results.items():
        methods = by_method(rows)
        ncl = methods["NCL"]
        for method, row in methods.items():
            if method == "NCL":
                continue
            assert ncl.accuracy >= row.accuracy - 0.02, (
                f"{name}: NCL {ncl.accuracy:.3f} vs {method} {row.accuracy:.3f}"
            )
        assert ncl.mrr == max(row.mrr for row in rows) or (
            ncl.mrr >= max(row.mrr for row in rows) - 0.02
        )


def test_fig7_pkduck_improves_as_theta_drops(once, results):
    # Register with pytest-benchmark so --benchmark-only
    # does not skip this shape assertion.
    once(lambda: None)
    for name, rows in results.items():
        thetas = sorted(
            (row for row in rows if row.method.startswith("pkduck")),
            key=lambda row: float(row.method.split("=")[1].rstrip(")")),
        )
        assert thetas[0].accuracy >= thetas[-1].accuracy, name


def test_fig7_nc_and_doc2vec_trail(once, results):
    # Register with pytest-benchmark so --benchmark-only
    # does not skip this shape assertion.
    once(lambda: None)
    for name, rows in results.items():
        methods = by_method(rows)
        ncl_accuracy = methods["NCL"].accuracy
        nc = methods["NC"].accuracy
        doc2vec = next(
            row for method, row in methods.items() if method.startswith("Doc2Vec")
        ).accuracy
        assert nc < ncl_accuracy * 0.5, f"{name}: NC {nc} vs NCL {ncl_accuracy}"
        assert doc2vec < ncl_accuracy, name
